//! Umbrella crate for the Harris–Su–Vu (PODC 2021) decomposition suite.
//!
//! Re-exports the workspace crates and the [`forest_decomp::api`] facade so a
//! single dependency is enough to drive every pipeline. See the repository
//! `README.md` for the quickstart.
//!
//! ```
//! use nash_williams::api::{Decomposer, DecompositionRequest, ProblemKind};
//! use nash_williams::forest_graph::generators;
//!
//! let g = generators::fat_path(32, 2);
//! let report = Decomposer::new(
//!     DecompositionRequest::new(ProblemKind::Forest).with_alpha(2).with_seed(1),
//! )
//! .run(&g)?;
//! assert!(report.num_colors >= 2);
//! # Ok::<(), nash_williams::forest_decomp::FdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use forest_decomp;
pub use forest_graph;
pub use local_model;

/// The unified request/report facade (re-export of [`forest_decomp::api`]).
pub use forest_decomp::api;
