//! List-forest decomposition with per-edge constraints (Theorem 4.10).
//!
//! Scenario: every link of a backbone network must be assigned to one of k
//! maintenance windows so that the links of any single window never contain a
//! cycle (keeping the network connected while that window's links are down is
//! then easy to argue per tree). Each link additionally has its own set of
//! admissible windows (its palette) coming from operator constraints.
//!
//! Run with: `cargo run --example maintenance_windows_lfd`

use forest_decomp::combine::{list_forest_decomposition, FdOptions};
use forest_graph::decomposition::{validate_list_coloring, validate_partial_forest_decomposition};
use forest_graph::{generators, matroid, ListAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    // A 2D-grid-like backbone plus random shortcut links.
    let graph = generators::planted_forest_union(300, 3, &mut rng);
    let alpha = matroid::arboricity(&graph);
    // 10 maintenance windows in total; every link may only use a random
    // subset of 2*(alpha+1) of them.
    let windows_total = 10.max(2 * (alpha + 1));
    let palette_size = 2 * (alpha + 1);
    let palettes = ListAssignment::random(graph.num_edges(), windows_total, palette_size, &mut rng);
    println!(
        "backbone: n = {}, m = {}, arboricity = {alpha}, windows = {windows_total}, palette = {palette_size}",
        graph.num_vertices(),
        graph.num_edges()
    );

    let options = FdOptions::new(0.5).with_alpha(alpha);
    let result = list_forest_decomposition(&graph, &palettes, &options, &mut rng)?;
    validate_partial_forest_decomposition(&graph, &result.coloring)?;
    validate_list_coloring(&graph, &result.coloring, &palettes)?;

    println!("windows actually used : {}", result.num_colors);
    println!("max tree diameter     : {}", result.max_diameter);
    println!("leftover links re-homed from back-up windows: {}", result.leftover_edges);
    println!("LOCAL rounds          : {}", result.ledger.total_rounds());
    Ok(())
}
