//! List-forest decomposition with per-edge constraints (Theorem 4.10) through
//! the `Decomposer` facade.
//!
//! Scenario: every link of a backbone network must be assigned to one of k
//! maintenance windows so that the links of any single window never contain a
//! cycle (keeping the network connected while that window's links are down is
//! then easy to argue per tree). Each link additionally has its own set of
//! admissible windows (its palette) coming from operator constraints.
//!
//! Run with: `cargo run --example maintenance_windows_lfd`

use forest_decomp::api::{Decomposer, DecompositionRequest, PaletteSpec, ProblemKind};
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    // A 2D-grid-like backbone plus random shortcut links.
    let graph = generators::planted_forest_union(300, 3, &mut rng);
    let alpha = matroid::arboricity(&graph);
    // 10 maintenance windows in total; every link may only use a random
    // subset of 2*(alpha+1) of them. The palettes are drawn inside the run
    // from the request seed, so the whole scenario is reproducible.
    let windows_total = 10.max(2 * (alpha + 1));
    let palette_size = 2 * (alpha + 1);
    println!(
        "backbone: n = {}, m = {}, arboricity = {alpha}, windows = {windows_total}, palette = {palette_size}",
        graph.num_vertices(),
        graph.num_edges()
    );

    let request = DecompositionRequest::new(ProblemKind::ListForest)
        .with_epsilon(0.5)
        .with_alpha(alpha)
        .with_palettes(PaletteSpec::Random {
            space: windows_total,
            size: palette_size,
        })
        .with_seed(2024);
    // Runs validate their artifact by default (report.validation records it).
    let report = Decomposer::new(request).run(&graph)?;

    println!("windows actually used : {}", report.num_colors);
    println!("max tree diameter     : {}", report.max_diameter);
    println!(
        "leftover links re-homed from back-up windows: {}",
        report.leftover_edges
    );
    println!("LOCAL rounds          : {}", report.ledger.total_rounds());
    Ok(())
}
