//! Low out-degree orientation of a social-network-like graph (Corollary 1.1)
//! through the `Decomposer` facade.
//!
//! Sparse social graphs have small arboricity even though some vertices have
//! huge degree. Orienting every edge so that each vertex "owns" only
//! (1+eps)*alpha edges is the standard trick behind adjacency-list storage
//! with O(alpha) lookups and triangle counting/listing in O(m * alpha) time.
//!
//! Run with: `cargo run --example social_network_orientation`

use forest_decomp::api::{Artifact, Decomposer, DecompositionRequest, ProblemKind};
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    // Preferential attachment: a few hubs of very high degree.
    let graph = generators::preferential_attachment(400, 4, &mut rng);
    let g = graph.graph();
    let alpha = matroid::arboricity(g);
    println!(
        "social graph: n = {}, m = {}, max degree = {}, arboricity = {alpha}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    let request = DecompositionRequest::new(ProblemKind::Orientation)
        .with_epsilon(0.5)
        .with_alpha(alpha)
        .with_seed(7);
    let report = Decomposer::new(request).run(g)?;
    let Artifact::Orientation {
        orientation,
        max_out_degree,
    } = &report.artifact
    else {
        unreachable!("orientation requests produce orientation artifacts");
    };
    println!("max out-degree     : {max_out_degree}");
    println!("forests used       : {}", report.num_colors);
    println!("LOCAL rounds       : {}", report.ledger.total_rounds());

    // Use the orientation: count triangles by only pairing each vertex's
    // out-neighbors (O(m * out-degree^2) with a tiny out-degree).
    let mut triangles = 0usize;
    for v in g.vertices() {
        let outs = orientation.out_neighbors(g, v);
        for i in 0..outs.len() {
            for j in i + 1..outs.len() {
                let (a, b) = (outs[i], outs[j]);
                if g.neighbors(a).any(|x| x == b) {
                    triangles += 1;
                }
            }
        }
    }
    println!("triangles incident to out-wedges: {triangles}");
    Ok(())
}
