//! Low out-degree orientation of a social-network-like graph (Corollary 1.1).
//!
//! Sparse social graphs have small arboricity even though some vertices have
//! huge degree. Orienting every edge so that each vertex "owns" only
//! (1+eps)*alpha edges is the standard trick behind adjacency-list storage
//! with O(alpha) lookups and triangle counting/listing in O(m * alpha) time.
//!
//! Run with: `cargo run --example social_network_orientation`

use forest_decomp::combine::FdOptions;
use forest_decomp::orientation::low_outdegree_orientation;
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    // Preferential attachment: a few hubs of very high degree.
    let graph = generators::preferential_attachment(400, 4, &mut rng);
    let g = graph.graph();
    let alpha = matroid::arboricity(g);
    println!(
        "social graph: n = {}, m = {}, max degree = {}, arboricity = {alpha}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    let result = low_outdegree_orientation(g, &FdOptions::new(0.5).with_alpha(alpha), &mut rng)?;
    println!("max out-degree     : {}", result.max_out_degree);
    println!("forests used       : {}", result.num_forests);
    println!("LOCAL rounds       : {}", result.ledger.total_rounds());

    // Use the orientation: count triangles by only pairing each vertex's
    // out-neighbors (O(m * out-degree^2) with a tiny out-degree).
    let orientation = &result.orientation;
    let mut triangles = 0usize;
    for v in g.vertices() {
        let outs = orientation.out_neighbors(g, v);
        for i in 0..outs.len() {
            for j in i + 1..outs.len() {
                let (a, b) = (outs[i], outs[j]);
                if g.neighbors(a).any(|x| x == b) {
                    triangles += 1;
                }
            }
        }
    }
    println!("triangles incident to out-wedges: {triangles}");
    Ok(())
}
