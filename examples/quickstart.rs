//! Quickstart: decompose a multigraph into (1+eps)*alpha forests in the LOCAL
//! model and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use forest_decomp::combine::{forest_decomposition, FdOptions};
use forest_graph::decomposition::validate_forest_decomposition;
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    // A multigraph with planted arboricity 4 on 200 vertices.
    let graph = generators::planted_forest_union(200, 4, &mut rng);
    let alpha = matroid::arboricity(&graph);
    println!(
        "graph: n = {}, m = {}, max degree = {}, arboricity = {alpha}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // (1 + 0.5) * alpha forest decomposition via the Theorem 4.6 pipeline.
    let options = FdOptions::new(0.5).with_alpha(alpha);
    let result = forest_decomposition(&graph, &options, &mut rng)?;
    validate_forest_decomposition(&graph, &result.decomposition, Some(result.num_colors))?;

    println!("forests used      : {}", result.num_colors);
    println!("excess over alpha : {}", result.num_colors - alpha);
    println!("max tree diameter : {}", result.max_diameter);
    println!("LOCAL rounds      : {}", result.ledger.total_rounds());
    println!();
    println!("round breakdown:");
    print!("{}", result.ledger);
    Ok(())
}
