//! Quickstart: decompose a multigraph into (1+eps)*alpha forests through the
//! unified `Decomposer` facade and inspect the report.
//!
//! Run with: `cargo run --example quickstart`

use forest_decomp::api::{Decomposer, DecompositionRequest, ProblemKind};
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    // A multigraph with planted arboricity 4 on 200 vertices.
    let graph = generators::planted_forest_union(200, 4, &mut rng);
    let alpha = matroid::arboricity(&graph);
    println!(
        "graph: n = {}, m = {}, max degree = {}, arboricity = {alpha}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // (1 + 0.5) * alpha forest decomposition via the Theorem 4.6 pipeline.
    // The request is plain data: rerunning it (same seed) reproduces the
    // report bit for bit.
    let request = DecompositionRequest::new(ProblemKind::Forest)
        .with_epsilon(0.5)
        .with_alpha(alpha)
        .with_seed(42);
    // Runs validate their artifact by default (report.validation records it).
    let report = Decomposer::new(request).run(&graph)?;

    println!("forests used      : {}", report.num_colors);
    println!("excess over alpha : {}", report.num_colors - alpha);
    println!("max tree diameter : {}", report.max_diameter);
    println!("LOCAL rounds      : {}", report.ledger.total_rounds());
    println!("wall clock        : {:?}", report.wall_clock);
    println!();
    println!("round breakdown:");
    print!("{}", report.ledger);
    Ok(())
}
