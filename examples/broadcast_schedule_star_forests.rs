//! Star-forest decomposition as a broadcast schedule (Theorem 5.4).
//!
//! Scenario: in each time slot every node may talk to at most one "hub"
//! neighbor, and hubs can serve any number of leaves simultaneously (a star).
//! Partitioning the edges into few star forests therefore gives a short
//! schedule in which every link is served exactly once.
//!
//! Run with: `cargo run --example broadcast_schedule_star_forests`

use forest_decomp::baselines::two_color_star_forests;
use forest_decomp::star_forest::{star_forest_decomposition_simple, SfdConfig};
use forest_graph::decomposition::validate_star_forest_decomposition;
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let graph = generators::planted_simple_arboricity(300, 6, &mut rng);
    let g = graph.graph();
    let alpha = matroid::arboricity(g);
    println!(
        "radio network: n = {}, m = {}, max degree = {}, arboricity = {alpha}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // Folklore schedule: 2 * alpha slots.
    let exact = matroid::exact_forest_decomposition(g);
    let naive = two_color_star_forests(g, &exact.decomposition);
    println!("folklore schedule length (<= 2 alpha): {}", naive.num_colors_used());

    // Paper's schedule: alpha + O(sqrt(log Delta) + log alpha) slots.
    let result = star_forest_decomposition_simple(&graph, &SfdConfig::new(0.25).with_alpha(alpha), &mut rng)?;
    validate_star_forest_decomposition(g, &result.decomposition, None)?;
    println!("Theorem 5.4 schedule length          : {}", result.num_colors);
    println!("unmatched links recolored            : {}", result.leftover_edges);
    println!("LOCAL rounds                          : {}", result.ledger.total_rounds());

    // Print the first few slots of the schedule.
    for slot in result.decomposition.colors_used().into_iter().take(3) {
        let links = result.decomposition.edges_with_color(slot);
        println!("slot {slot}: {} links served", links.len());
    }
    Ok(())
}
