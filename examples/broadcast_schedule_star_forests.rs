//! Star-forest decomposition as a broadcast schedule (Theorem 5.4), comparing
//! two engines through the same `Decomposer` request.
//!
//! Scenario: in each time slot every node may talk to at most one "hub"
//! neighbor, and hubs can serve any number of leaves simultaneously (a star).
//! Partitioning the edges into few star forests therefore gives a short
//! schedule in which every link is served exactly once.
//!
//! Run with: `cargo run --example broadcast_schedule_star_forests`

use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let graph = generators::planted_simple_arboricity(300, 6, &mut rng);
    let g = graph.graph();
    let alpha = matroid::arboricity(g);
    println!(
        "radio network: n = {}, m = {}, max degree = {}, arboricity = {alpha}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    let request = DecompositionRequest::new(ProblemKind::StarForest)
        .with_epsilon(0.25)
        .with_alpha(alpha)
        .with_seed(99);

    // Folklore schedule: 2 * alpha slots (exact decomposition + two-coloring).
    let naive = Decomposer::new(request.clone().with_engine(Engine::Folklore2Alpha)).run(g)?;
    println!(
        "folklore schedule length (<= 2 alpha): {}",
        naive.num_colors
    );

    // Paper's schedule: alpha + O(sqrt(log Delta) + log alpha) slots.
    let report = Decomposer::new(request.with_engine(Engine::HarrisSuVu)).run(g)?;
    println!(
        "Theorem 5.4 schedule length          : {}",
        report.num_colors
    );
    println!(
        "unmatched links recolored            : {}",
        report.leftover_edges
    );
    println!(
        "LOCAL rounds                          : {}",
        report.ledger.total_rounds()
    );

    // Print the first few slots of the schedule.
    let schedule = report.artifact.decomposition().expect("star forests");
    for slot in schedule.colors_used().into_iter().take(3) {
        let links = schedule.edges_with_color(slot);
        println!("slot {slot}: {} links served", links.len());
    }
    Ok(())
}
