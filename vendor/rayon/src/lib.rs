//! Offline stand-in for `rayon`, built on `std::thread::scope`.
//!
//! The sandbox cannot fetch crates.io, so the workspace vendors the tiny
//! slice-parallelism subset the `Decomposer::run_batch` fan-out and its bench
//! need: `slice.par_iter().map(f).collect::<Vec<_>>()` plus
//! [`current_num_threads`]. Work is split into one contiguous chunk per
//! available core and joined in order, so `collect` preserves input order
//! exactly like upstream rayon's indexed parallel iterators.

#![forbid(unsafe_code)]

use std::thread;

/// Number of worker threads a parallel iterator will use.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Borrowing parallel iterator over a slice; see [`IntoParallelRefIterator`].
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Applies `f` to every element in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the mapped computation across all cores and gathers the results
    /// in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        if self.items.is_empty() {
            return Vec::new().into();
        }
        let threads = current_num_threads().min(self.items.len());
        let chunk_len = self.items.len().div_ceil(threads);
        let f = &self.f;
        let gathered: Vec<R> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });
        gathered.into()
    }
}

/// Types that offer a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// The glob-import surface mirrored from upstream.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_slice_is_fine() {
        let input: Vec<usize> = Vec::new();
        let out: Vec<usize> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn at_least_one_thread() {
        assert!(super::current_num_threads() >= 1);
    }
}
