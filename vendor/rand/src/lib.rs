//! Offline, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small subset of the `rand 0.8` API surface the algorithms actually use:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open integer and float
//!   ranges) and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`] and the [`rngs::StdRng`] /
//!   [`rngs::SmallRng`] generators (both xoshiro256++ seeded via SplitMix64),
//! * [`seq::SliceRandom`] with `choose`, `choose_multiple` and `shuffle`,
//! * [`thread_rng`] (deterministic per call site — there is no OS entropy in
//!   the sandbox, and reproducibility is a feature of this workspace).
//!
//! Streams are *not* value-compatible with the upstream crate, but they are
//! stable across platforms and releases, which is what the seeded tests and
//! the `Decomposer` reproducibility guarantee rely on.

#![forbid(unsafe_code)]

use std::ops::Range;

/// SplitMix64 step, used for seeding and seed derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The low-level generator interface: a source of `u64` words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero words from any seed, but keep the guard for clarity.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (deterministic xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`; the owned, cheap-to-derive
    /// generator the `Decomposer` facade threads through every run.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// Stand-in for `rand::rngs::ThreadRng` (deterministic; see
    /// [`thread_rng`](super::thread_rng)).
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) Xoshiro256);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

/// Returns a generator seeded from a process-global counter.
///
/// There is no OS entropy in the offline sandbox; successive calls still
/// produce distinct streams, and whole-process runs are reproducible.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(Xoshiro256::from_u64(
        0x5EED_CAFE ^ n.wrapping_mul(0xA076_1D64_78BD_642F),
    ))
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements in random order (all of them if
        /// the slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        use super::RngCore;
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 8);
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..8usize);
            assert!((5..8).contains(&x));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<usize> = (0..10).collect();
        let mut picked: Vec<usize> = items.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut items: Vec<usize> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
