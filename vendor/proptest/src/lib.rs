//! Offline stand-in for the `proptest` crate.
//!
//! Vendored because the sandbox cannot reach crates.io. Implements the subset
//! the workspace's property tests use: the [`Strategy`] trait with `prop_map`
//! / `prop_flat_map`, range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (reproducible CI), and failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Error produced by a failing property (via [`prop_assert!`]).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy for vectors of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (without
/// panicking mid-generation) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[doc(hidden)]
pub fn __run_cases<S: Strategy, F>(test_name: &str, config: &ProptestConfig, strategy: S, body: F)
where
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    // Deterministic per-test stream: hash the test name into the seed.
    let mut seed = 0xC0FF_EE00u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        if let Err(err) = body(value) {
            panic!("proptest '{test_name}' failed on case {case}: {err}");
        }
    }
}

/// Declares property tests, mirroring proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($arg:pat in $strat:expr) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(
                    stringify!($name),
                    &config,
                    $strat,
                    |$arg| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// The glob-import surface mirrored from upstream.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..9usize) {
            prop_assert!((3..9).contains(&x));
        }

        #[test]
        fn flat_map_threads_dependencies(v in (1..5usize).prop_flat_map(|n| collection::vec(0..n, n))) {
            prop_assert!(!v.is_empty());
            let n = v.len();
            for x in v {
                prop_assert!(x < n, "element {x} out of range {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        super::__run_cases(
            "always_fails",
            &ProptestConfig::with_cases(1),
            0..1usize,
            |_| Err(TestCaseError::fail("nope")),
        );
    }
}
