//! Offline stand-in for the `memmap2` crate (workspace-local vendored
//! subset, matching the offline-deps pattern of `vendor/rand` & co).
//!
//! The real `memmap2` maps a file into the address space with `mmap(2)`, so
//! pages are loaded lazily by the kernel and shared between processes. This
//! sandbox has no crates.io access and the workspace forbids `unsafe`, so the
//! stand-in provides the same *API shape* — [`Mmap::map`] on an open
//! [`File`], `Deref<Target = [u8]>` — over a private heap buffer read once at
//! map time. Swapping in the real crate is a one-line `Cargo.toml` change
//! (plus the `unsafe { ... }` block its `map` requires); no caller code
//! changes.
//!
//! Only the read-only subset used by `forest-graph::csr` is provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

/// A read-only "mapping" of an entire file.
///
/// ```no_run
/// let file = std::fs::File::open("graph.csr")?;
/// let map = memmap2::Mmap::map(&file)?;
/// let bytes: &[u8] = &map;
/// # let _ = bytes;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Mmap {
    data: Vec<u8>,
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// The real `memmap2::Mmap::map` is `unsafe` (the mapping's validity
    /// depends on no other process truncating the file); the stand-in reads
    /// the contents eagerly instead, so it is safe — and callers migrating to
    /// the real crate must wrap this call in `unsafe`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from reading the file.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let mut data = Vec::new();
        let mut reader = file;
        reader.read_to_end(&mut data)?;
        Ok(Mmap { data })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.data.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_whole_file() {
        let path = std::env::temp_dir().join(format!("memmap2-standin-{}.bin", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"hello mapping").unwrap();
        }
        let f = File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert_eq!(&map[..], b"hello mapping");
        assert_eq!(map.len(), 13);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path =
            std::env::temp_dir().join(format!("memmap2-standin-e-{}.bin", std::process::id()));
        File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
