//! Offline stand-in for the `memmap2` crate (workspace-local vendored
//! subset, matching the offline-deps pattern of `vendor/rand` & co) — now
//! backed by a **real `mmap(2)`** on 64-bit unix hosts.
//!
//! [`Mmap::map`] maps the file read-only and `MAP_PRIVATE` into the address
//! space, so pages are faulted in lazily by the kernel: mapping a file far
//! larger than physical memory costs O(1) and only the bytes a caller
//! actually touches ever become resident. On targets without the syscall
//! (non-unix, 32-bit) the old portable fallback — read the whole file into a
//! heap buffer once at map time — is kept, with the identical API.
//!
//! This crate is the **only** place in the workspace allowed to use `unsafe`
//! (every other crate carries `#![forbid(unsafe_code)]`); the unsafety is
//! confined to the two raw syscalls, the `Deref` reconstruction of the
//! mapped slice, and the alignment-checked [`as_u32s_le`] reinterpret
//! helper, each with its invariant documented inline.
//!
//! # Safety model
//!
//! The real `memmap2::Mmap::map` is `unsafe` because the mapping's validity
//! depends on no other process truncating the file while it is mapped
//! (access past the new end raises `SIGBUS`). This vendored subset keeps
//! `map` a *safe* function — callers are single-process pipelines that own
//! their CSR files — and documents the truncation caveat here instead, like
//! the stand-in always did. Only the read-only subset used by
//! `forest-graph::csr` is provided.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

/// The raw `mmap(2)` / `munmap(2)` bindings, declared here so the workspace
/// needs no `libc` crate: Rust already links the platform C runtime on the
/// unix targets this path is gated to, and the three constants below are
/// identical on Linux and the BSD/mac family.
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::{c_int, c_void};

    /// `PROT_READ`: pages may be read.
    pub const PROT_READ: c_int = 1;
    /// `MAP_PRIVATE`: copy-on-write, changes invisible to other processes
    /// (we never write, so this is just "not MAP_SHARED").
    pub const MAP_PRIVATE: c_int = 2;
    /// The error sentinel `mmap` returns (`(void *)-1`).
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// How the bytes are held: a live kernel mapping (demand-paged) or an owned
/// heap buffer (the portable fallback and the zero-length case, which
/// `mmap(2)` rejects with `EINVAL`).
enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped {
        /// Page-aligned base address returned by `mmap`.
        ptr: *const u8,
        /// Mapping length in bytes (nonzero).
        len: usize,
    },
    Owned(Vec<u8>),
}

/// A read-only mapping of an entire file.
///
/// ```no_run
/// let file = std::fs::File::open("graph.csr")?;
/// let map = memmap2::Mmap::map(&file)?;
/// let bytes: &[u8] = &map;
/// # let _ = bytes;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the mapped region is read-only (`PROT_READ`) and private for the
// whole lifetime of the value — no interior mutability, no aliasing writes —
// so moving the handle to another thread is as safe as moving a `Vec<u8>`.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for Mmap {}
#[cfg(all(unix, target_pointer_width = "64"))]
// SAFETY: same invariant as `Send` above — the mapping is immutable
// (`PROT_READ`, `MAP_PRIVATE`) until it is unmapped in `Drop`, which needs
// `&mut self`, so concurrent `&Mmap` readers see a frozen byte range exactly
// like shared `&[u8]`.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// On 64-bit unix this issues a real `mmap(2)`: the call is O(1) in the
    /// file size and pages become resident only when touched. Elsewhere the
    /// file is read eagerly into a heap buffer. Empty files always use the
    /// (empty) heap buffer, since `mmap` rejects zero-length mappings.
    ///
    /// The mapping stays valid after `file` is closed — the kernel holds its
    /// own reference — but truncating the file from another process while
    /// mapped raises `SIGBUS` on access (see the crate-level safety model).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `stat`/`mmap` (or, on the fallback
    /// path, from reading the file).
    pub fn map(file: &File) -> io::Result<Mmap> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(Mmap {
                    backing: Backing::Owned(Vec::new()),
                });
            }
            let len = len as usize;
            // SAFETY: fd is a valid open descriptor for the duration of the
            // call, len is nonzero, and we request a fresh read-only private
            // mapping at a kernel-chosen address.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                backing: Backing::Mapped {
                    ptr: ptr as *const u8,
                    len,
                },
            })
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            let mut data = Vec::new();
            let mut reader = file;
            reader.read_to_end(&mut data)?;
            Ok(Mmap {
                backing: Backing::Owned(data),
            })
        }
    }

    /// Reads `file` eagerly into a heap buffer regardless of platform — the
    /// portable path, exposed so callers can opt out of demand paging (e.g.
    /// when they will touch every byte anyway and want the read-ahead).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from reading the file.
    pub fn map_eager(file: &File) -> io::Result<Mmap> {
        let mut data = Vec::new();
        let mut reader = file;
        reader.read_to_end(&mut data)?;
        Ok(Mmap {
            backing: Backing::Owned(data),
        })
    }

    /// `true` when the bytes are backed by a live kernel mapping (lazily
    /// paged), `false` when they live in an owned heap buffer.
    pub fn is_demand_paged(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Returns `true` if the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: ptr/len describe a live PROT_READ mapping created
                // in `map` and not unmapped until Drop; u8 has no alignment
                // or validity requirements; the lifetime is tied to &self.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Owned(data) => data,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly the region returned by the successful `mmap`
            // in `map`; after this the pointer is never read again (we are
            // in Drop). munmap only fails on invalid arguments, which this
            // pairing rules out.
            let rc = unsafe { sys::munmap(ptr as *mut std::ffi::c_void, len) };
            debug_assert_eq!(rc, 0, "munmap failed on a region mmap returned");
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("demand_paged", &self.is_demand_paged())
            .finish()
    }
}

/// Reinterprets `bytes` as a slice of native `u32` words **when the host
/// representation matches the little-endian on-disk encoding**: requires a
/// little-endian target, a length that is a multiple of 4, and a 4-byte
/// aligned base pointer. Returns `None` otherwise, and callers fall back to
/// an owned per-word decode.
///
/// This is the zero-copy bridge that keeps demand paging intact: a caller
/// that decodes the mapping into a `Vec<u32>` touches every page up front,
/// while this view touches none.
pub fn as_u32s_le(bytes: &[u8]) -> Option<&[u32]> {
    if !cfg!(target_endian = "little") {
        return None;
    }
    if !bytes.len().is_multiple_of(4)
        || bytes.as_ptr().align_offset(std::mem::align_of::<u32>()) != 0
    {
        return None;
    }
    // SAFETY: length and alignment checked above; on a little-endian host a
    // 4-byte LE group is exactly the in-memory u32; u32 tolerates every bit
    // pattern; the returned lifetime is the input lifetime.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_whole_file() {
        let path = std::env::temp_dir().join(format!("memmap2-standin-{}.bin", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"hello mapping").unwrap();
        }
        let f = File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert_eq!(&map[..], b"hello mapping");
        assert_eq!(map.len(), 13);
        assert!(!map.is_empty());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(map.is_demand_paged());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path =
            std::env::temp_dir().join(format!("memmap2-standin-e-{}.bin", std::process::id()));
        File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_demand_paged());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_survives_closing_the_file_handle() {
        let path =
            std::env::temp_dir().join(format!("memmap2-standin-c-{}.bin", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&[7u8; 9000]).unwrap(); // > one page
        }
        let map = {
            let f = File::open(&path).unwrap();
            Mmap::map(&f).unwrap()
            // f dropped here; the kernel keeps the mapping alive.
        };
        assert!(map.iter().all(|&b| b == 7));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn eager_map_matches_lazy_map() {
        let path =
            std::env::temp_dir().join(format!("memmap2-standin-g-{}.bin", std::process::id()));
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"same bytes either way").unwrap();
        }
        let f = File::open(&path).unwrap();
        let lazy = Mmap::map(&f).unwrap();
        let eager = Mmap::map_eager(&f).unwrap();
        assert_eq!(&lazy[..], &eager[..]);
        assert!(!eager.is_demand_paged());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn u32_view_round_trips_le_words() {
        let words: Vec<u32> = (0..257u64)
            .map(|i| (i * 2654435761 % 99991) as u32)
            .collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        // A mmap-returned base is page-aligned; a Vec<u8> is not guaranteed
        // 4-aligned, so probe at an aligned offset of the buffer.
        let off = bytes.as_ptr().align_offset(4);
        let aligned = &bytes[off..bytes.len() - (bytes.len() - off) % 4];
        if let Some(view) = as_u32s_le(aligned) {
            let expect: Vec<u32> = aligned
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            assert_eq!(view, &expect[..]);
        }
        // Misaligned or ragged inputs are refused, never mis-read.
        assert!(
            as_u32s_le(&bytes[1..5]).is_none() || (bytes[1..].as_ptr() as usize).is_multiple_of(4)
        );
        assert!(as_u32s_le(&bytes[..6]).is_none());
    }
}
