//! Offline stand-in for the `criterion` bench harness.
//!
//! The sandbox has no access to crates.io, so the workspace vendors the small
//! subset of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function` / `bench_with_input`, [`BenchmarkId`]
//! and [`black_box`]. Measurements are real wall-clock timings (median over
//! the sample count), printed as one line per benchmark; there is no HTML
//! report, outlier analysis or statistical regression testing.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-ish identity function that prevents the optimizer from deleting a
/// benchmarked computation (best-effort without `asm!`; reads the value
/// through a volatile-style trick using `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id carrying only a parameter label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing loop handed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Runs the routine `samples` times (after warm-up) and records the
    /// median wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is exhausted (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

fn print_result(group: &str, name: &str, result: Option<Duration>) {
    match result {
        Some(t) => println!("{group}/{name}: median {t:?} per iteration"),
        None => println!("{group}/{name}: no measurement recorded"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the vendored harness always runs
    /// exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark that closes over its input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            last: None,
        };
        f(&mut b);
        print_result(&self.name, &id.name, b.last);
    }

    /// Runs a benchmark parameterized by an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            last: None,
        };
        f(&mut b, input);
        print_result(&self.name, &id.name, b.last);
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The bench context passed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        self
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran >= 4, "warm-up plus three samples");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("algo", "n64");
        assert_eq!(id.name, "algo/n64");
    }
}
