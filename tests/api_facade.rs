//! Facade-level tests: the reproducibility contract (same seed ⇒
//! byte-identical report), the full `(problem, engine)` support matrix
//! (every combination runs or returns a typed error — never panics), and the
//! `run_batch` fan-out semantics.

use forest_decomp::api::{
    derive_seed, Decomposer, DecompositionRequest, Engine, ProblemKind, Validate, ValidationStatus,
};
use forest_decomp::FdError;
use forest_graph::{generators, MultiGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A simple graph every problem kind can run on (star problems require
/// simplicity).
fn simple_workload() -> MultiGraph {
    let mut rng = StdRng::seed_from_u64(1);
    generators::planted_simple_arboricity(40, 3, &mut rng)
        .graph()
        .clone()
}

fn request_for(problem: ProblemKind, engine: Engine, seed: u64) -> DecompositionRequest {
    DecompositionRequest::new(problem)
        .with_engine(engine)
        .with_epsilon(0.5)
        .with_alpha(3)
        .with_seed(seed)
}

#[test]
fn every_problem_engine_combination_runs_or_fails_typed() {
    let g = simple_workload();
    for problem in ProblemKind::ALL {
        for engine in Engine::ALL {
            let result = Decomposer::new(request_for(problem, engine, 7)).run(&g);
            let supported = match engine {
                Engine::HarrisSuVu => true,
                Engine::BarenboimElkin | Engine::ExactMatroid => {
                    matches!(problem, ProblemKind::Forest | ProblemKind::Orientation)
                }
                Engine::Folklore2Alpha => matches!(problem, ProblemKind::StarForest),
            };
            match result {
                Ok(report) => {
                    assert!(supported, "{engine} claimed to run {problem}");
                    assert_eq!(report.problem, problem);
                    assert_eq!(report.engine, engine);
                    assert_eq!(report.validation, ValidationStatus::Validated);
                    report.validate(&g).unwrap_or_else(|e| {
                        panic!("({problem}, {engine}): report fails validation: {e}")
                    });
                }
                Err(FdError::UnsupportedCombination {
                    problem: p,
                    engine: e,
                }) => {
                    assert!(!supported, "({problem}, {engine}) should be supported");
                    assert_eq!(p, problem);
                    assert_eq!(e, engine);
                }
                Err(other) => {
                    panic!("({problem}, {engine}): unexpected error {other}")
                }
            }
        }
    }
}

#[test]
fn all_supported_combinations_are_reproducible() {
    let g = simple_workload();
    let combos = [
        (ProblemKind::Forest, Engine::HarrisSuVu),
        (ProblemKind::Forest, Engine::BarenboimElkin),
        (ProblemKind::Forest, Engine::ExactMatroid),
        (ProblemKind::ListForest, Engine::HarrisSuVu),
        (ProblemKind::StarForest, Engine::HarrisSuVu),
        (ProblemKind::StarForest, Engine::Folklore2Alpha),
        (ProblemKind::ListStarForest, Engine::HarrisSuVu),
        (ProblemKind::Orientation, Engine::HarrisSuVu),
        (ProblemKind::Orientation, Engine::BarenboimElkin),
        (ProblemKind::Orientation, Engine::ExactMatroid),
    ];
    for (problem, engine) in combos {
        let decomposer = Decomposer::new(request_for(problem, engine, 1234));
        let a = decomposer.run(&g).unwrap();
        let b = decomposer.run(&g).unwrap();
        assert_eq!(
            a.canonical_bytes(),
            b.canonical_bytes(),
            "({problem}, {engine}): same seed must give byte-identical reports"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_yields_byte_identical_reports(seed in 0..u64::MAX) {
        let g = simple_workload();
        let decomposer = Decomposer::new(request_for(ProblemKind::Forest, Engine::HarrisSuVu, seed));
        let a = decomposer.run(&g).unwrap();
        let b = decomposer.run(&g).unwrap();
        prop_assert!(a.canonical_bytes() == b.canonical_bytes(), "seed {seed} not reproducible");
        prop_assert!(a.seed == seed);
    }
}

#[test]
fn run_batch_matches_per_graph_derived_seeds() {
    let mut rng = StdRng::seed_from_u64(2);
    let graphs: Vec<MultiGraph> = (0..8)
        .map(|i| generators::planted_forest_union(30 + 4 * i, 3, &mut rng))
        .collect();
    let request = DecompositionRequest::new(ProblemKind::Forest)
        .with_epsilon(0.5)
        .with_alpha(3)
        .with_seed(99);
    let decomposer = Decomposer::new(request.clone());
    let batch = decomposer.run_batch(&graphs);
    assert_eq!(batch.len(), graphs.len());
    for (i, (g, result)) in graphs.iter().zip(&batch).enumerate() {
        let report = result.as_ref().expect("batch member failed");
        let expected_seed = derive_seed(99, i as u64);
        assert_eq!(report.seed, expected_seed);
        let single = Decomposer::new(request.clone().with_seed(expected_seed))
            .run(g)
            .unwrap();
        assert_eq!(
            report.canonical_bytes(),
            single.canonical_bytes(),
            "graph {i}: batch result differs from single run"
        );
    }
}

#[test]
fn batch_failures_do_not_abort_the_batch() {
    // Graph 1 has parallel edges, so the star-forest problem fails on it with
    // the typed NotSimple error while the others still succeed.
    let mut rng = StdRng::seed_from_u64(3);
    let simple = generators::planted_simple_arboricity(24, 2, &mut rng)
        .graph()
        .clone();
    let multi = generators::fat_path(10, 3);
    let graphs = vec![simple.clone(), multi, simple];
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::StarForest)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(4),
    );
    let batch = decomposer.run_batch(&graphs);
    assert!(batch[0].is_ok());
    assert!(matches!(batch[1], Err(FdError::NotSimple)));
    assert!(batch[2].is_ok());
}
