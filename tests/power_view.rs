//! The virtual power graph: equivalence and byte-stability.
//!
//! Two contracts are pinned here:
//!
//! 1. **Adjacency equivalence** (proptest): the lazy [`PowerView`] answers
//!    exactly the adjacency of the materialized `power_graph(g, r)` on
//!    arbitrary multigraphs, across radii including `0` and values beyond
//!    the diameter.
//! 2. **Byte identity** (golden hashes): the engines' decomposition reports
//!    are byte-for-byte identical to the pre-virtual-power-graph
//!    implementation for fixed seeds. The FNV-1a hashes below were captured
//!    from the materializing implementation; any drift in clusters, CUT RNG
//!    consumption, coloring or ledger charges shows up here.

use forest_decomp::api::{
    Decomposer, DecompositionRequest, Engine, FrozenGraph, ProblemKind, ReorderKind,
};
use forest_graph::{generators, GraphView, MultiGraph, VertexId};
use local_model::{power_graph, PowerView};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Sorted neighbor multiset of `v` (power graphs are simple per center, so
/// this is a set — but sorting keeps the comparison representation-free).
fn sorted_neighbors<G: GraphView>(g: &G, v: VertexId) -> Vec<VertexId> {
    let mut ns: Vec<VertexId> = g.neighbors(v).collect();
    ns.sort_unstable();
    ns.dedup();
    ns
}

fn assert_view_matches_materialized(g: &MultiGraph, r: usize) {
    let pv = PowerView::new(g, r);
    let pg = power_graph(g, r);
    for v in g.vertices() {
        let lazy = sorted_neighbors(&pv, v);
        let dense = sorted_neighbors(&pg, v);
        assert_eq!(lazy, dense, "neighbors of {v} differ at radius {r}");
        assert_eq!(pv.degree(v), lazy.len(), "degree of {v} at radius {r}");
    }
    // The lazy edge iterator enumerates each ball edge once.
    assert_eq!(
        pv.edges().count(),
        pg.num_edges(),
        "edge count at radius {r}"
    );
    for (e, u, w) in pv.edges() {
        let (eu, ew) = pv.endpoints(e);
        assert_eq!((eu, ew), (u, w), "edge-id round trip at radius {r}");
    }
}

fn arb_multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = MultiGraph> {
    (2..max_n, 0..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            let mut g = MultiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(VertexId::new(u), VertexId::new(v)).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn power_view_equals_materialized_power_graph(
        case in (arb_multigraph(18, 40), 0usize..6)
    ) {
        let (g, r) = case;
        assert_view_matches_materialized(&g, r);
    }

    #[test]
    fn power_view_equals_materialized_beyond_diameter(g in arb_multigraph(12, 30)) {
        // Radius >= n exceeds any diameter: every ball saturates its
        // connected component.
        let n = g.num_vertices();
        assert_view_matches_materialized(&g, n);
        assert_view_matches_materialized(&g, 2 * n + 5);
    }
}

#[test]
fn power_view_radius_zero_is_edgeless() {
    let g = generators::grid(5, 4);
    assert_view_matches_materialized(&g, 0);
    let pv = PowerView::new(&g, 0);
    assert_eq!(pv.edges().count(), 0);
}

// --- Golden canonical-bytes regressions (pre-PowerView captures) ---------

#[test]
fn golden_hsv_trivial_power_path() {
    let mut rng = StdRng::seed_from_u64(8);
    let g = generators::planted_forest_union(200, 3, &mut rng);
    let d = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(9),
    );
    let report = d.run(&g).unwrap();
    assert_eq!(fnv(&report.canonical_bytes()), 0x2b4e13de34bc341b);
}

#[test]
fn golden_hsv_forced_radii_engages_power_machinery() {
    let g = generators::fat_path(300, 2);
    let d = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_epsilon(0.5)
            .with_alpha(2)
            .with_radii(8, 4)
            .with_seed(9),
    );
    let report = d.run(&g).unwrap();
    assert_eq!(fnv(&report.canonical_bytes()), 0x7aad3faaa1352771);
}

#[test]
fn golden_hsv_sharded_rcm() {
    let mut rng = StdRng::seed_from_u64(33);
    let g = generators::planted_forest_union(2_000, 3, &mut rng);
    let frozen = FrozenGraph::freeze(g);
    let d = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(17)
            .with_shard_reorder(ReorderKind::Rcm),
    );
    let report = d.run_sharded(&frozen, 4).unwrap();
    assert_eq!(fnv(&report.canonical_bytes()), 0x6c1767c7a3fd97a3);
}

#[test]
fn golden_hsv_grid_forced_radii() {
    let g = generators::grid(40, 12);
    let d = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_epsilon(0.5)
            .with_alpha(2)
            .with_radii(6, 3)
            .with_seed(21),
    );
    let report = d.run(&g).unwrap();
    assert_eq!(fnv(&report.canonical_bytes()), 0x024de31e7c1565d4);
}

#[test]
fn golden_barenboim_elkin_frontier_h_partition() {
    let mut rng = StdRng::seed_from_u64(8);
    let g = generators::planted_forest_union(200, 3, &mut rng);
    let d = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::BarenboimElkin)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(3),
    );
    let report = d.run(&g).unwrap();
    assert_eq!(fnv(&report.canonical_bytes()), 0x13a122e4ac9192be);
}

/// Adversarial sharded HSV through the virtual power-graph path: many
/// fragmented shard components, forced sharding of a graph whose derived
/// radii exceed most shard diameters. Sharded and unsharded runs must agree
/// on validity; this is the CI smoke for the ball-local pipeline.
#[test]
fn sharded_hsv_virtual_path_smoke() {
    let mut rng = StdRng::seed_from_u64(33);
    let g = generators::planted_forest_union(1_200, 3, &mut rng);
    let frozen = FrozenGraph::freeze(g);
    let d = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(17),
    );
    let unsharded = d.run_frozen(&frozen).unwrap();
    assert!(unsharded.num_colors > 0);
    for k in [2usize, 4] {
        let sharded = d.run_sharded(&frozen, k).unwrap();
        // Both runs validated (the request default); the stitch may open a
        // few extra colors but must stay in the same quality regime.
        assert!(
            sharded.num_colors <= 2 * unsharded.num_colors + 2,
            "sharded k={k} used {} colors vs {} unsharded",
            sharded.num_colors,
            unsharded.num_colors
        );
    }
}
