//! Locality-reordered sharding contract tests: BFS/RCM orders are valid
//! permutations, a permuted run is equivalent to the unpermuted run modulo
//! relabeling (edge ids round-trip untouched), sharded color counts stay
//! within the Theorem 4.6-style budget and are non-increasing in locality,
//! and the pre-split [`ShardedGraph`] path is byte-identical to the one-call
//! `run_sharded` path.

use forest_decomp::api::{
    Decomposer, DecompositionRequest, Engine, FrozenGraph, ProblemKind, ReorderKind, ShardedGraph,
    ShardingSpec, StitchPolicy, Validate,
};
use forest_decomp::FdError;
use forest_graph::reorder::{bfs_order, permute, rcm_order};
use forest_graph::{generators, CsrGraph, GraphView, MultiGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a random multigraph with up to `max_n` vertices and `max_m`
/// edges (self-loops excluded by construction).
fn arb_multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = MultiGraph> {
    (2..max_n, 0..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            let mut g = MultiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(VertexId::new(u), VertexId::new(v)).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BFS and RCM orders are valid permutations: every vertex appears at
    /// exactly one position, and the two directions invert each other.
    #[test]
    fn bfs_and_rcm_orders_are_valid_permutations(g in arb_multigraph(40, 120)) {
        let csr = CsrGraph::from_multigraph(&g);
        for perm in [bfs_order(&csr), rcm_order(&csr)] {
            prop_assert_eq!(perm.len(), g.num_vertices());
            let mut hit = vec![false; g.num_vertices()];
            for v in g.vertices() {
                let new = perm.new_id(v);
                prop_assert!(!hit[new.index()], "two vertices mapped to {new}");
                hit[new.index()] = true;
                prop_assert_eq!(perm.old_id(new), v);
            }
            prop_assert!(hit.iter().all(|&h| h));
        }
    }

    /// A reordered run is the unreordered run modulo relabeling: `permute`
    /// keeps edge ids fixed while relabeling endpoints, so the exact-matroid
    /// run on the permuted graph produces the *same per-edge colors*, the
    /// same color count, and a decomposition that validates — and the edge
    /// multiset maps back through the permutation.
    #[test]
    fn permuted_run_is_equivalent_modulo_relabeling(g in arb_multigraph(28, 90)) {
        let csr = CsrGraph::from_multigraph(&g);
        let perm = rcm_order(&csr);
        let permuted_csr = permute(&csr, &perm);
        let permuted = permuted_csr.to_multigraph();
        // Edge multiset preserved: edge e's endpoints map exactly through
        // the permutation (edge ids round-trip as the identity).
        for (e, u, v) in csr.edges() {
            let (pu, pv) = permuted.endpoints(e);
            prop_assert_eq!((pu, pv), (perm.new_id(u), perm.new_id(v)));
        }
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(3),
        );
        let original = decomposer.run(&g).unwrap();
        let relabeled = decomposer.run(&permuted).unwrap();
        original.validate(&g).unwrap();
        relabeled.validate(&permuted).unwrap();
        prop_assert_eq!(original.num_colors, relabeled.num_colors);
        let a = original.artifact.decomposition().unwrap();
        let b = relabeled.artifact.decomposition().unwrap();
        prop_assert_eq!(a.colors(), b.colors());
    }

    /// `run_sharded` with a BFS/RCM `ShardingSpec` still produces a valid,
    /// deterministic stitched decomposition on arbitrary graphs.
    #[test]
    fn reordered_sharded_runs_validate(
        (g, k) in (arb_multigraph(32, 100), 2usize..5)
    ) {
        for reorder in [ReorderKind::Bfs, ReorderKind::Rcm] {
            let decomposer = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_engine(Engine::ExactMatroid)
                    .with_seed(11)
                    .with_shard_reorder(reorder),
            );
            let report = decomposer.run_sharded(&g, k).unwrap();
            report.validate(&g).unwrap();
            let again = decomposer.run_sharded(&g, k).unwrap();
            prop_assert_eq!(report.canonical_bytes(), again.canonical_bytes());
        }
    }
}

/// Sharded color counts stay within the Theorem 4.6-style budget
/// (`2α + 2` for `ε = 0.5`) and are non-increasing in locality: the RCM
/// split never needs more colors than the identity split, and its boundary
/// fraction is strictly smaller on a randomly-labeled workload.
#[test]
fn sharded_colors_bounded_and_non_increasing_in_locality() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(33);
    let alpha = 3usize;
    let g = generators::planted_forest_union(2_000, alpha, &mut rng);
    let frozen = FrozenGraph::freeze(g);
    let base = DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::HarrisSuVu)
        .with_epsilon(0.5)
        .with_alpha(alpha)
        .with_seed(17);
    for k in [2usize, 4] {
        let identity = ShardedGraph::split(
            &frozen,
            k,
            ShardingSpec::with_reorder(ReorderKind::Identity),
        )
        .unwrap();
        let rcm =
            ShardedGraph::split(&frozen, k, ShardingSpec::with_reorder(ReorderKind::Rcm)).unwrap();
        assert!(
            rcm.partition().boundary_fraction() < identity.partition().boundary_fraction(),
            "k = {k}: rcm boundary fraction {} must beat identity {}",
            rcm.partition().boundary_fraction(),
            identity.partition().boundary_fraction()
        );
        let decomposer = Decomposer::new(base.clone());
        let identity_report = decomposer.run_sharded_prepared(&identity).unwrap();
        let rcm_report = decomposer.run_sharded_prepared(&rcm).unwrap();
        identity_report.validate(frozen.graph()).unwrap();
        rcm_report.validate(frozen.graph()).unwrap();
        assert!(
            identity_report.num_colors <= 2 * alpha + 2,
            "k = {k}: identity colors {} beyond the Theorem 4.6-style budget",
            identity_report.num_colors
        );
        assert!(
            rcm_report.num_colors <= identity_report.num_colors,
            "k = {k}: colors must be non-increasing in locality ({} vs {})",
            rcm_report.num_colors,
            identity_report.num_colors
        );
    }
}

/// The pre-split path is the one-call path: `run_sharded_prepared` over a
/// `ShardedGraph` built with the request's spec produces byte-identical
/// reports to `run_sharded`.
#[test]
fn prepared_sharded_runs_match_one_call_runs() {
    let g = generators::grid(20, 14);
    let frozen = FrozenGraph::freeze(g);
    for reorder in [ReorderKind::Identity, ReorderKind::Rcm] {
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(9)
                .with_shard_reorder(reorder),
        );
        let sharded = ShardedGraph::split(&frozen, 3, ShardingSpec::with_reorder(reorder)).unwrap();
        assert_eq!(sharded.reorder(), reorder);
        let prepared = decomposer.run_sharded_prepared(&sharded).unwrap();
        let one_call = decomposer.run_sharded(&frozen, 3).unwrap();
        assert_eq!(prepared.canonical_bytes(), one_call.canonical_bytes());
    }
}

/// The exact-α stitch closes the α + 1 gap on the capacity-tight grid
/// workload: the greedy default settles above α, the
/// [`StitchPolicy::ExactAlpha`] pass exchanges the overflow back inside
/// the budget, and both reports validate.
#[test]
fn exact_alpha_stitch_closes_the_grid_gap() {
    let g = generators::grid(48, 48); // m ≈ 2n: arboricity exactly 2
    let frozen = FrozenGraph::freeze(g);
    let alpha = forest_graph::matroid::arboricity(frozen.csr());
    assert_eq!(alpha, 2, "the grid is the capacity-tight workload");
    for k in [2usize, 4] {
        let base = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(13);
        let greedy = Decomposer::new(base.clone())
            .run_sharded(&frozen, k)
            .unwrap();
        let exact = Decomposer::new(base.with_stitch_policy(StitchPolicy::ExactAlpha))
            .run_sharded(&frozen, k)
            .unwrap();
        greedy.validate(frozen.graph()).unwrap();
        exact.validate(frozen.graph()).unwrap();
        assert_eq!(
            exact.num_colors, alpha,
            "k = {k}: exact-α stitch must reach exactly α"
        );
        assert!(
            greedy.num_colors >= exact.num_colors,
            "k = {k}: the exchange pass never costs colors"
        );
        // The pass announces itself in the ledger.
        assert!(exact
            .ledger
            .charges()
            .iter()
            .any(|c| c.label.starts_with("exact-alpha stitch")));
        assert!(greedy
            .ledger
            .charges()
            .iter()
            .all(|c| !c.label.starts_with("exact-alpha stitch")));
        // Deterministic like every other facade path.
        let again = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(13)
                .with_stitch_policy(StitchPolicy::ExactAlpha),
        )
        .run_sharded(&frozen, k)
        .unwrap();
        assert_eq!(exact.canonical_bytes(), again.canonical_bytes());
    }
}

/// The exact-α pass composes with locality reordering and stays within the
/// caller's α bound on non-grid workloads too (it may not always reach α,
/// but it never exceeds the greedy result and never invalidates).
#[test]
fn exact_alpha_stitch_composes_with_reordering() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(29);
    let alpha = 3usize;
    let g = generators::planted_forest_union(800, alpha, &mut rng);
    let frozen = FrozenGraph::freeze(g);
    let base = DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::ExactMatroid)
        .with_alpha(alpha)
        .with_seed(21)
        .with_shard_reorder(ReorderKind::Rcm);
    let greedy = Decomposer::new(base.clone())
        .run_sharded(&frozen, 4)
        .unwrap();
    let exact = Decomposer::new(base.with_stitch_policy(StitchPolicy::ExactAlpha))
        .run_sharded(&frozen, 4)
        .unwrap();
    exact.validate(frozen.graph()).unwrap();
    assert!(exact.num_colors <= greedy.num_colors);
    assert_eq!(exact.num_colors, alpha, "planted α is reachable");
}

/// Zero shards is a typed facade error on both front doors, while the
/// low-level splitter keeps its documented clamp (covered in
/// `forest_graph`'s partition tests).
#[test]
fn zero_shards_is_a_typed_error() {
    let g = generators::path(8);
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest).with_engine(Engine::ExactMatroid),
    );
    assert!(matches!(
        decomposer.run_sharded(&g, 0),
        Err(FdError::InvalidShardCount { requested: 0 })
    ));
    assert!(matches!(
        ShardedGraph::split(&g, 0, ShardingSpec::default()),
        Err(FdError::InvalidShardCount { requested: 0 })
    ));
}
