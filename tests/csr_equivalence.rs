//! Frozen-topology contract tests: CSR round-trips exactly, every engine
//! produces byte-identical reports on `MultiGraph` vs frozen-CSR inputs, and
//! same-seed runs are byte-identical across repetitions (the regression
//! guard for the old hash-map-ordered RNG consumption in CUT and the
//! vertex-color splitting).

use forest_decomp::api::{
    Decomposer, DecompositionRequest, Engine, FrozenGraph, PaletteSpec, ProblemKind,
};
use forest_decomp::CutStrategyKind;
use forest_graph::{generators, CsrGraph, GraphView, MultiGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a random multigraph with up to `max_n` vertices and `max_m`
/// edges (self-loops excluded by construction).
fn arb_multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = MultiGraph> {
    (2..max_n, 0..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            let mut g = MultiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(VertexId::new(u), VertexId::new(v)).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `CsrGraph::from_multigraph` round-trips exactly and preserves every
    /// topology accessor, including per-vertex incidence order.
    #[test]
    fn csr_roundtrips_and_preserves_topology(g in arb_multigraph(24, 80)) {
        let csr = CsrGraph::from_multigraph(&g);
        prop_assert_eq!(csr.num_vertices(), g.num_vertices());
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        prop_assert_eq!(csr.to_multigraph(), g.clone());
        prop_assert_eq!(CsrGraph::from_multigraph(&csr.to_multigraph()), csr.clone());
        for v in g.vertices() {
            prop_assert_eq!(csr.degree(v), g.degree(v));
            let mg: Vec<_> = g.incidences(v).collect();
            let cs: Vec<_> = csr.incidences(v).collect();
            prop_assert_eq!(mg, cs);
        }
        for e in g.edge_ids() {
            prop_assert_eq!(csr.endpoints(e), g.endpoints(e));
        }
        // The mirror permutation is a fixed-point-free involution that maps
        // each incidence slot to the same edge's slot at the other endpoint.
        let mirror = csr.mirror_slots();
        for slot in 0..csr.num_incidences() {
            let other = mirror[slot] as usize;
            prop_assert!(slot != other);
            prop_assert_eq!(mirror[other] as usize, slot);
            prop_assert_eq!(csr.slot_edge(slot), csr.slot_edge(other));
        }
    }

    /// Running a request through `run` (freezes internally) and through an
    /// explicitly pre-frozen graph yields byte-identical reports for every
    /// supported (problem, engine) combination.
    #[test]
    fn frozen_runs_match_multigraph_runs((g, seed) in (arb_multigraph(16, 40), 0..u64::MAX)) {
        let frozen = FrozenGraph::freeze(g.clone());
        for &problem in &ProblemKind::ALL {
            for &engine in &Engine::ALL {
                let decomposer = Decomposer::new(
                    DecompositionRequest::new(problem)
                        .with_engine(engine)
                        .with_epsilon(0.5)
                        .with_seed(seed),
                );
                let direct = decomposer.run(&g);
                let via_frozen = decomposer.run_frozen(&frozen);
                match (direct, via_frozen) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(
                            a.canonical_bytes() == b.canonical_bytes(),
                            "{}/{} diverged between representations",
                            problem,
                            engine
                        );
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => {
                        return Err(TestCaseError::fail(format!(
                            "{problem}/{engine}: one representation failed: \
                             direct ok = {}, frozen ok = {}",
                            a.is_ok(),
                            b.is_ok()
                        )));
                    }
                }
            }
        }
    }
}

/// Requests that exercise every RNG-consuming phase: the depth-modulo and
/// conditioned-sampling CUT rules with forced small radii (CUT actually
/// fires), plus the list pipeline (vertex-color splitting + palettes).
fn rng_heavy_requests() -> Vec<(&'static str, DecompositionRequest, MultiGraph)> {
    vec![
        (
            "forest/depth-modulo cut",
            DecompositionRequest::new(ProblemKind::Forest)
                .with_alpha(2)
                .with_epsilon(0.5)
                .with_radii(8, 4)
                .with_seed(1234),
            generators::fat_path(120, 2),
        ),
        (
            "forest/conditioned-sampling cut",
            DecompositionRequest::new(ProblemKind::Forest)
                .with_alpha(2)
                .with_epsilon(0.5)
                .with_cut(CutStrategyKind::ConditionedSampling)
                .with_radii(10, 5)
                .with_seed(99),
            generators::fat_path(80, 2),
        ),
        (
            "list-forest/random palettes",
            DecompositionRequest::new(ProblemKind::ListForest)
                .with_alpha(3)
                .with_epsilon(0.5)
                .with_palettes(PaletteSpec::Random { space: 24, size: 8 })
                .with_seed(7),
            generators::fat_path(60, 3),
        ),
    ]
}

/// Regression test for nondeterministic tie-breaking: historical versions
/// consumed the RNG in `HashMap` iteration order inside CUT and the
/// vertex-color splitting, so the same seed could produce different
/// removals across runs. Two runs of the same request must now be
/// byte-identical.
#[test]
fn same_seed_is_byte_identical_across_repeated_runs() {
    for (name, request, g) in rng_heavy_requests() {
        let decomposer = Decomposer::new(request);
        let first = decomposer.run(&g).unwrap_or_else(|e| {
            panic!("{name}: run failed: {e}");
        });
        for attempt in 0..3 {
            let again = decomposer.run(&g).unwrap();
            assert_eq!(
                first.canonical_bytes(),
                again.canonical_bytes(),
                "{name}: attempt {attempt} diverged from the first run"
            );
        }
    }
}

#[test]
fn shared_topology_batch_matches_individual_runs() {
    let g = generators::planted_forest_union(
        64,
        3,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3),
    );
    let frozen = FrozenGraph::freeze(g);
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_alpha(3)
            .with_seed(42),
    );
    let batch = decomposer.run_batch_shared(&frozen, 4);
    assert_eq!(batch.len(), 4);
    // Index 0 uses the request seed itself, so it equals a plain run.
    let single = decomposer.run_frozen(&frozen).unwrap();
    assert_eq!(
        batch[0].as_ref().unwrap().canonical_bytes(),
        single.canonical_bytes()
    );
    // Different derived seeds are actually different runs (seeds recorded).
    let seeds: Vec<u64> = batch.iter().map(|r| r.as_ref().unwrap().seed).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "derived seeds must be distinct");
}

#[test]
fn frozen_graph_accessors_are_consistent() {
    let g = generators::grid(5, 5);
    let frozen = FrozenGraph::freeze(g.clone());
    assert_eq!(frozen.graph(), &g);
    assert_eq!(frozen.csr(), &CsrGraph::from_multigraph(&g));
    let input = frozen.input();
    assert_eq!(
        input.multigraph().map(forest_graph::MultiGraph::num_edges),
        Some(input.csr.num_edges())
    );
}
