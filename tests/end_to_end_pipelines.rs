//! End-to-end pipeline tests across epsilon values, list palettes, diameter
//! targets, CUT strategies and the star-forest algorithms — the configurations
//! reported in Table 1 and Theorem 5.4 — all driven through the `Decomposer`
//! facade.

use forest_decomp::api::{Decomposer, DecompositionRequest, PaletteSpec, ProblemKind, Validate};
use forest_decomp::{CutStrategyKind, DiameterTarget, FdError};
use forest_graph::decomposition::{
    validate_forest_decomposition, validate_list_coloring, validate_star_forest_decomposition,
};
use forest_graph::{generators, matroid, ListAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn forest_decomposition_across_epsilons() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::planted_forest_union(100, 5, &mut rng);
    let alpha = matroid::arboricity(&g);
    for (i, epsilon) in [0.6, 0.4, 0.2].into_iter().enumerate() {
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_epsilon(epsilon)
                .with_alpha(alpha)
                .with_seed(i as u64),
        )
        .run(&g)
        .unwrap();
        report.validate(&g).unwrap();
        let budget = ((1.0 + epsilon) * alpha as f64).ceil() as usize;
        assert!(
            report.num_colors <= budget + ((epsilon * alpha as f64).ceil() as usize).max(2) + 3,
            "eps {epsilon}: {} colors vs budget {budget}",
            report.num_colors
        );
    }
}

#[test]
fn diameter_targets_are_respected() {
    let g = generators::fat_path(150, 4);
    for (target, bound_fn) in [
        (
            DiameterTarget::OneOverEpsilon,
            (|eps: f64| (2.0 * (2.0 / eps).ceil()) as usize) as fn(f64) -> usize,
        ),
        (DiameterTarget::LogOverEpsilon, |eps: f64| {
            (2.0 * ((150f64).ln().ceil() / eps).ceil()) as usize + 2
        }),
    ] {
        for epsilon in [0.5, 0.25] {
            let report = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_epsilon(epsilon)
                    .with_alpha(4)
                    .with_diameter_target(target)
                    .with_seed(2),
            )
            .run(&g)
            .unwrap();
            report.validate(&g).unwrap();
            assert!(
                report.max_diameter <= bound_fn(epsilon),
                "target {target:?}, eps {epsilon}: diameter {} above bound {}",
                report.max_diameter,
                bound_fn(epsilon)
            );
        }
    }
}

#[test]
fn conditioned_sampling_cut_pipeline() {
    let g = generators::fat_path(80, 3);
    let report = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_cut(CutStrategyKind::ConditionedSampling)
            .with_radii(10, 5)
            .with_seed(3),
    )
    .run(&g)
    .unwrap();
    report.validate(&g).unwrap();
}

#[test]
fn list_forest_decomposition_with_tight_and_loose_palettes() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = generators::planted_forest_union(70, 3, &mut rng);
    let alpha = matroid::arboricity(&g);
    for palette in [2 * (alpha + 1), 3 * (alpha + 1)] {
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest)
                .with_epsilon(0.5)
                .with_alpha(alpha)
                .with_palettes(PaletteSpec::Random {
                    space: 2 * palette,
                    size: palette,
                })
                .with_seed(palette as u64),
        )
        .run(&g)
        .unwrap();
        let fd = report.artifact.decomposition().unwrap();
        validate_forest_decomposition(&g, fd, Some(report.num_colors)).unwrap();
        let lists = report
            .lists
            .as_ref()
            .expect("list runs keep their palettes");
        validate_list_coloring(&g, &fd.to_partial(), lists).unwrap();
    }
}

#[test]
fn star_forest_pipelines_on_simple_graphs() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::planted_simple_arboricity(120, 6, &mut rng);
    let alpha = matroid::arboricity(g.graph());
    let sfd = Decomposer::new(
        DecompositionRequest::new(ProblemKind::StarForest)
            .with_epsilon(0.3)
            .with_alpha(alpha)
            .with_seed(5),
    )
    .run(g.graph())
    .unwrap();
    sfd.validate(g.graph()).unwrap();
    // alpha + O(sqrt(log Delta) + log alpha) primary colors plus the O(eps alpha)
    // leftover recoloring: allow a generous constant-factor envelope here (the
    // precise comparison against Corollary 1.2 is produced by the benchmark
    // binaries).
    assert!(
        sfd.num_colors <= 3 * alpha + 4,
        "colors = {}",
        sfd.num_colors
    );

    let delta = g.graph().max_degree() as f64;
    let palette = alpha + 2 * (delta.log2().ceil() as usize) + 4;
    let lsfd = Decomposer::new(
        DecompositionRequest::new(ProblemKind::ListStarForest)
            .with_epsilon(0.3)
            .with_alpha(alpha)
            .with_palettes(PaletteSpec::Random {
                space: 2 * palette,
                size: palette,
            })
            .with_seed(6),
    )
    .run(g.graph())
    .unwrap();
    let stars = lsfd.artifact.decomposition().unwrap();
    validate_star_forest_decomposition(g.graph(), stars, None).unwrap();
    let lists = lsfd.lists.as_ref().expect("list runs keep their palettes");
    validate_list_coloring(g.graph(), &stars.to_partial(), lists).unwrap();
}

#[test]
fn disconnected_graphs_are_handled() {
    // Two components with different densities.
    let mut g = generators::complete_graph(8);
    let offset = g.num_vertices();
    for _ in 0..20 {
        g.add_vertex();
    }
    for i in 0..19usize {
        g.add_edge(
            forest_graph::VertexId::new(offset + i),
            forest_graph::VertexId::new(offset + i + 1),
        )
        .unwrap();
    }
    let alpha = matroid::arboricity(&g);
    let report = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_epsilon(0.5)
            .with_alpha(alpha)
            .with_seed(6),
    )
    .run(&g)
    .unwrap();
    report.validate(&g).unwrap();
}

#[test]
fn errors_are_reported_not_panicked() {
    let g = generators::fat_path(10, 3);
    // Epsilon out of range.
    assert!(matches!(
        Decomposer::new(DecompositionRequest::new(ProblemKind::Forest).with_epsilon(0.0)).run(&g),
        Err(FdError::InvalidEpsilon { .. })
    ));
    // Palettes below (1+eps) alpha.
    assert!(matches!(
        Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest)
                .with_epsilon(0.5)
                .with_alpha(3)
                .with_palettes(PaletteSpec::Explicit(ListAssignment::uniform(
                    g.num_edges(),
                    2
                )))
        )
        .run(&g),
        Err(FdError::PaletteTooSmall { .. })
    ));
}
