//! End-to-end pipeline tests across epsilon values, list palettes, diameter
//! targets, CUT strategies and the star-forest algorithms — the configurations
//! reported in Table 1 and Theorem 5.4.

use forest_decomp::combine::{forest_decomposition, list_forest_decomposition, FdOptions};
use forest_decomp::star_forest::{
    list_star_forest_decomposition_simple, star_forest_decomposition_simple, SfdConfig,
};
use forest_decomp::DiameterTarget;
use forest_graph::decomposition::{
    validate_forest_decomposition, validate_list_coloring, validate_partial_forest_decomposition,
    validate_star_forest_decomposition,
};
use forest_graph::{generators, matroid, ListAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn forest_decomposition_across_epsilons() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::planted_forest_union(100, 5, &mut rng);
    let alpha = matroid::arboricity(&g);
    for epsilon in [0.6, 0.4, 0.2] {
        let result =
            forest_decomposition(&g, &FdOptions::new(epsilon).with_alpha(alpha), &mut rng)
                .unwrap();
        validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors)).unwrap();
        let budget = ((1.0 + epsilon) * alpha as f64).ceil() as usize;
        assert!(
            result.num_colors <= budget + ((epsilon * alpha as f64).ceil() as usize).max(2) + 3,
            "eps {epsilon}: {} colors vs budget {budget}",
            result.num_colors
        );
    }
}

#[test]
fn diameter_targets_are_respected() {
    let g = generators::fat_path(150, 4);
    let mut rng = StdRng::seed_from_u64(2);
    for (target, bound_fn) in [
        (DiameterTarget::OneOverEpsilon, (|eps: f64| (2.0 * (2.0 / eps).ceil()) as usize)
            as fn(f64) -> usize),
        (DiameterTarget::LogOverEpsilon, |eps: f64| {
            (2.0 * ((150f64).ln().ceil() / eps).ceil()) as usize + 2
        }),
    ] {
        for epsilon in [0.5, 0.25] {
            let options = FdOptions::new(epsilon)
                .with_alpha(4)
                .with_diameter_target(target);
            let result = forest_decomposition(&g, &options, &mut rng).unwrap();
            validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors))
                .unwrap();
            assert!(
                result.max_diameter <= bound_fn(epsilon),
                "target {target:?}, eps {epsilon}: diameter {} above bound {}",
                result.max_diameter,
                bound_fn(epsilon)
            );
        }
    }
}

#[test]
fn conditioned_sampling_cut_pipeline() {
    let g = generators::fat_path(80, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let options = FdOptions::new(0.5)
        .with_alpha(3)
        .with_conditioned_sampling()
        .with_radii(10, 5);
    let result = forest_decomposition(&g, &options, &mut rng).unwrap();
    validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors)).unwrap();
}

#[test]
fn list_forest_decomposition_with_tight_and_loose_palettes() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = generators::planted_forest_union(70, 3, &mut rng);
    let alpha = matroid::arboricity(&g);
    for palette in [2 * (alpha + 1), 3 * (alpha + 1)] {
        let lists = ListAssignment::random(g.num_edges(), 2 * palette, palette, &mut rng);
        let result =
            list_forest_decomposition(&g, &lists, &FdOptions::new(0.5).with_alpha(alpha), &mut rng)
                .unwrap();
        assert!(result.coloring.is_complete());
        validate_partial_forest_decomposition(&g, &result.coloring).unwrap();
        validate_list_coloring(&g, &result.coloring, &lists).unwrap();
    }
}

#[test]
fn star_forest_pipelines_on_simple_graphs() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::planted_simple_arboricity(120, 6, &mut rng);
    let alpha = matroid::arboricity(g.graph());
    let config = SfdConfig::new(0.3).with_alpha(alpha);
    let sfd = star_forest_decomposition_simple(&g, &config, &mut rng).unwrap();
    validate_star_forest_decomposition(g.graph(), &sfd.decomposition, None).unwrap();
    // alpha + O(sqrt(log Delta) + log alpha) primary colors plus the O(eps alpha)
    // leftover recoloring: allow a generous constant-factor envelope here (the
    // precise comparison against Corollary 1.2 is produced by the benchmark
    // binaries).
    assert!(sfd.num_colors <= 3 * alpha + 4, "colors = {}", sfd.num_colors);

    let delta = g.graph().max_degree() as f64;
    let palette = alpha + 2 * (delta.log2().ceil() as usize) + 4;
    let lists = ListAssignment::random(g.graph().num_edges(), 2 * palette, palette, &mut rng);
    let lsfd = list_star_forest_decomposition_simple(&g, &lists, &config, &mut rng).unwrap();
    validate_star_forest_decomposition(g.graph(), &lsfd.decomposition, None).unwrap();
    validate_list_coloring(g.graph(), &lsfd.decomposition.to_partial(), &lists).unwrap();
}

#[test]
fn disconnected_graphs_are_handled() {
    // Two components with different densities.
    let mut g = generators::complete_graph(8);
    let offset = g.num_vertices();
    for _ in 0..20 {
        g.add_vertex();
    }
    for i in 0..19usize {
        g.add_edge(
            forest_graph::VertexId::new(offset + i),
            forest_graph::VertexId::new(offset + i + 1),
        )
        .unwrap();
    }
    let alpha = matroid::arboricity(&g);
    let mut rng = StdRng::seed_from_u64(6);
    let result =
        forest_decomposition(&g, &FdOptions::new(0.5).with_alpha(alpha), &mut rng).unwrap();
    validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors)).unwrap();
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::fat_path(10, 3);
    // Epsilon out of range.
    assert!(forest_decomposition(&g, &FdOptions::new(0.0), &mut rng).is_err());
    // Palettes below (1+eps) alpha.
    let lists = ListAssignment::uniform(g.num_edges(), 2);
    assert!(
        list_forest_decomposition(&g, &lists, &FdOptions::new(0.5).with_alpha(3), &mut rng)
            .is_err()
    );
}
