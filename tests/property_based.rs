//! Property-based tests (proptest) over random multigraphs: every algorithm
//! output must validate as the kind of decomposition it claims to be, across
//! arbitrary edge sets and palette shapes.

use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_decomp::augmenting::{apply_augmentation, AugmentationContext};
use forest_decomp::hpartition::{acyclic_orientation, h_partition, star_forest_decomposition};
use forest_graph::decomposition::{
    validate_forest_decomposition, validate_partial_forest_decomposition,
    validate_star_forest_decomposition, PartialEdgeColoring,
};
use forest_graph::{matroid, orientation, ListAssignment, MultiGraph, VertexId};
use local_model::RoundLedger;
use proptest::prelude::*;

/// Strategy: a random multigraph with up to `max_n` vertices and `max_m`
/// edges (self-loops excluded by construction).
fn arb_multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = MultiGraph> {
    (2..max_n, 0..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            let mut g = MultiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(VertexId::new(u), VertexId::new(v)).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_decomposition_is_always_valid(g in arb_multigraph(20, 60)) {
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest).with_engine(Engine::ExactMatroid),
        )
        .run(&g)
        .unwrap();
        let fd = report.artifact.decomposition().unwrap();
        prop_assert!(validate_forest_decomposition(&g, fd, Some(report.arboricity)).is_ok());
        // Nash-Williams sandwich: alpha* <= alpha <= 2 alpha*.
        let ps = orientation::pseudoarboricity(&g);
        prop_assert!(ps <= report.arboricity);
        prop_assert!(report.arboricity <= (2 * ps).max(1));
    }

    #[test]
    fn hpartition_star_forest_is_always_valid(g in arb_multigraph(18, 50)) {
        let ps = orientation::pseudoarboricity(&g).max(1);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, ps, &mut ledger).unwrap();
        prop_assert!(hp.satisfies_degree_property(&g));
        let o = acyclic_orientation(&g, &hp);
        prop_assert!(o.is_acyclic(&g));
        prop_assert!(o.max_out_degree(&g) <= hp.degree_threshold);
        let sfd = star_forest_decomposition(&g, &o, &mut ledger);
        prop_assert!(validate_star_forest_decomposition(&g, &sfd, Some(3 * hp.degree_threshold)).is_ok());
    }

    #[test]
    fn augmentation_preserves_forest_invariant(g in arb_multigraph(14, 35)) {
        let alpha = matroid::arboricity(&g).max(1);
        let lists = ListAssignment::uniform(g.num_edges(), alpha + 1);
        let ctx = AugmentationContext::new(&g, &lists);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for e in g.edge_ids() {
            if coloring.color(e).is_some() {
                continue;
            }
            let seq = ctx.find_augmenting_sequence(&coloring, e, 300);
            prop_assert!(seq.is_some(), "sequence must exist with alpha+1 colors");
            let seq = seq.unwrap();
            prop_assert!(ctx.is_valid_augmenting_sequence(&coloring, &seq));
            apply_augmentation(&mut coloring, &seq);
            prop_assert!(validate_partial_forest_decomposition(&g, &coloring).is_ok());
        }
        prop_assert!(coloring.is_complete());
    }

    #[test]
    fn pipeline_output_is_always_a_forest_decomposition(g in arb_multigraph(16, 40)) {
        let alpha = matroid::arboricity(&g).max(1);
        let result = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_epsilon(0.5)
                .with_alpha(alpha)
                .with_seed(11),
        )
        .run(&g);
        prop_assert!(result.is_ok());
        let report = result.unwrap();
        let fd = report.artifact.decomposition().unwrap();
        prop_assert!(validate_forest_decomposition(&g, fd, Some(report.num_colors)).is_ok());
        prop_assert!(report.num_colors >= matroid::arboricity(&g));
    }

    #[test]
    fn two_coloring_always_yields_star_forests(g in arb_multigraph(16, 40)) {
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::StarForest)
                .with_engine(Engine::Folklore2Alpha),
        )
        .run(&g)
        .unwrap();
        let stars = report.artifact.decomposition().unwrap();
        prop_assert!(
            validate_star_forest_decomposition(&g, stars, Some((2 * report.arboricity).max(1)))
                .is_ok()
        );
    }

    #[test]
    fn densest_subgraph_density_is_consistent(g in arb_multigraph(14, 40)) {
        let ds = forest_graph::density::densest_subgraph(&g);
        // Density is an upper bound for the whole-graph average density and a
        // lower bound for pseudo-arboricity.
        if g.num_vertices() > 0 {
            let avg = g.num_edges() as f64 / g.num_vertices() as f64;
            prop_assert!(ds.density >= avg - 1e-9);
        }
        let ps = orientation::pseudoarboricity(&g);
        prop_assert!(ps as f64 + 1e-9 >= ds.density);
        prop_assert!((ps as f64) - ds.density < 1.0 + 1e-9);
    }
}
