//! The observability non-interference contract: recorder state is
//! invisible to every decomposition. `canonical_bytes` must be identical
//! whether the span recorder is disabled (the default), enabled, or
//! enabled with a sink already holding thousands of buffered events —
//! across the full `(problem, engine)` support matrix. The instrumentation
//! sweep only ever *reads* the clock and *writes* metrics/spans; the
//! moment it consumed randomness or reordered work, these tests would
//! catch the drift.
//!
//! The recorder is process-global, so every case serializes on a lock and
//! restores the disabled/empty state before releasing it.

use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_graph::{generators, MultiGraph};
use forest_obs::{event, recorder, Span};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes recorder toggling across the binary's test threads.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// A simple graph every problem kind can run on (star problems require
/// simplicity).
fn workload(n: usize, graph_seed: u64) -> MultiGraph {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    generators::planted_simple_arboricity(n.max(8), 3, &mut rng)
        .graph()
        .clone()
}

fn supported(problem: ProblemKind, engine: Engine) -> bool {
    match engine {
        Engine::HarrisSuVu => true,
        Engine::BarenboimElkin | Engine::ExactMatroid => {
            matches!(problem, ProblemKind::Forest | ProblemKind::Orientation)
        }
        Engine::Folklore2Alpha => matches!(problem, ProblemKind::StarForest),
    }
}

/// One run of the facade under the recorder state the caller arranged.
fn canonical_run(problem: ProblemKind, engine: Engine, seed: u64, g: &MultiGraph) -> Vec<u8> {
    Decomposer::new(
        DecompositionRequest::new(problem)
            .with_engine(engine)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(seed),
    )
    .run(g)
    .expect("supported combination")
    .canonical_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Disabled vs enabled vs full-sink recorder: three byte-identical
    /// runs for every supported `(problem, engine)` the case draws.
    #[test]
    fn recorder_state_never_changes_canonical_bytes(
        (combo, seed, n, graph_seed) in (0..16usize, 0..10_000u64, 8..48usize, 0..64u64)
    ) {
        let problem = ProblemKind::ALL[combo / Engine::ALL.len()];
        let engine = Engine::ALL[combo % Engine::ALL.len()];
        if !supported(problem, engine) {
            return Ok(());
        }
        let g = workload(n, graph_seed);

        let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        recorder().disable();
        recorder().clear();
        let disabled = canonical_run(problem, engine, seed, &g);

        recorder().enable();
        let enabled = canonical_run(problem, engine, seed, &g);

        // A sink already loaded with thousands of buffered events: the
        // slow path keeps pushing chunks, the decomposition must not care.
        for i in 0..4_096u32 {
            if i % 2 == 0 {
                let _span = Span::enter("obs.filler");
                event("obs.filler_event");
            } else {
                event("obs.filler_event");
            }
        }
        let full_sink = canonical_run(problem, engine, seed, &g);

        recorder().disable();
        recorder().clear();
        drop(_guard);

        prop_assert_eq!(&disabled, &enabled);
        prop_assert_eq!(&disabled, &full_sink);
    }

    /// Toggling the recorder *between* runs of the same request is also
    /// invisible: a disabled run after an instrumented one reproduces the
    /// first disabled run exactly (no state leaks through the sink drain).
    #[test]
    fn drain_between_runs_is_invisible(
        (combo, seed) in (0..16usize, 0..10_000u64)
    ) {
        let problem = ProblemKind::ALL[combo / Engine::ALL.len()];
        let engine = Engine::ALL[combo % Engine::ALL.len()];
        if !supported(problem, engine) {
            return Ok(());
        }
        let g = workload(24, 5);

        let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        recorder().disable();
        recorder().clear();
        let before = canonical_run(problem, engine, seed, &g);
        recorder().enable();
        canonical_run(problem, engine, seed, &g);
        let drained = recorder().drain();
        recorder().disable();
        let after = canonical_run(problem, engine, seed, &g);
        recorder().clear();
        drop(_guard);

        // The facade span recorded during the enabled run made it out.
        prop_assert!(
            drained.iter().any(|e| e.name == "decomp.run"),
            "instrumented run produced no facade span"
        );
        prop_assert_eq!(&before, &after);
    }
}
