//! Contract tests for the dynamic subsystem: the HDT connectivity structure
//! agrees with a from-scratch union-find under arbitrary insert/delete
//! interleavings, the streaming [`DynamicDecomposer`] keeps a valid forest
//! coloring alive through churn, and its `snapshot()` is byte-identical to
//! a cold [`Decomposer::run`] on the same final graph — including after the
//! acceptance-criteria 10k-update stream.

use forest_decomp::api::{
    Decomposer, DecompositionRequest, DynamicDecomposer, EdgeUpdate, Engine, ProblemKind,
    UpdatePath, Validate,
};
use forest_decomp::FdError;
use forest_graph::dynamic::{DynamicConnectivity, EdgeKey};
use forest_graph::{generators, EdgeId, MultiGraph, UnionFind, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted update: endpoints plus a delete bias; deletes resolve
/// against the currently-live edge list, so every script is applicable to
/// every state.
type Script = Vec<(usize, usize, bool)>;

fn arb_script(n: usize, len: usize) -> impl Strategy<Value = (usize, Script)> {
    (2..n, 1..len).prop_flat_map(move |(verts, m)| {
        proptest::collection::vec((0..verts, 0..verts, 0..100usize), m).prop_map(move |ops| {
            (
                verts,
                ops.into_iter().map(|(u, v, d)| (u, v, d < 45)).collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random interleaving of inserts and deletes through
    /// `DynamicConnectivity` agrees with a from-scratch `UnionFind` on
    /// `connected` at every step (and on the component count).
    #[test]
    fn dynamic_connectivity_agrees_with_union_find((n, script) in arb_script(24, 120)) {
        let mut dc = DynamicConnectivity::new(n);
        let mut live: Vec<(usize, usize, EdgeKey)> = Vec::new();
        for (u, v, delete) in script {
            if delete && !live.is_empty() {
                let slot = u % live.len();
                let (_, _, key) = live.swap_remove(slot);
                dc.delete_edge(key);
            } else if u != v {
                let key = dc.insert_edge(VertexId::new(u), VertexId::new(v));
                live.push((u, v, key));
            }
            let mut uf = UnionFind::from_edges(n, live.iter().map(|&(a, b, _)| (a, b)));
            prop_assert_eq!(dc.num_components(), uf.num_components());
            prop_assert_eq!(dc.num_edges(), live.len());
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(
                        dc.connected(VertexId::new(a), VertexId::new(b)),
                        uf.connected(a, b)
                    );
                }
            }
        }
    }

    /// The decomposer's live coloring stays a valid forest partition under
    /// the same scripted churn, and the final snapshot is byte-identical to
    /// the cold run on the independently reconstructed final graph.
    #[test]
    fn dynamic_decomposer_stays_valid_and_snapshots_cold((n, script) in arb_script(18, 80)) {
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(5);
        let mut dyn_dec = DynamicDecomposer::new(request.clone(), n).unwrap();
        let mut live: Vec<(EdgeId, usize, usize)> = Vec::new();
        for (u, v, delete) in script {
            if delete && !live.is_empty() {
                let slot = u % live.len();
                let (e, _, _) = live.swap_remove(slot);
                dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
            } else if u != v {
                let e = dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap().edge;
                live.push((e, u, v));
            }
            dyn_dec.validate_live().unwrap();
        }
        live.sort_by_key(|&(e, _, _)| e);
        let mut expected = MultiGraph::new(n);
        for &(_, u, v) in &live {
            expected.add_edge(VertexId::new(u), VertexId::new(v)).unwrap();
        }
        let cold = Decomposer::new(request).run(&expected).unwrap();
        let snap = dyn_dec.snapshot().unwrap();
        prop_assert_eq!(cold.canonical_bytes(), snap.canonical_bytes());
    }
}

/// `snapshot()` equals the cold run's `canonical_bytes` for every engine
/// that can maintain forests; the rest of the problem × engine matrix fails
/// with the typed errors instead of panicking.
#[test]
fn snapshot_matches_cold_run_across_the_matrix() {
    let mut rng = StdRng::seed_from_u64(41);
    let n = 32;
    // One shared churn script so every engine sees the same final graph.
    let mut inserts: Vec<(usize, usize)> = Vec::new();
    for _ in 0..160 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            inserts.push((u, v));
        }
    }
    let delete_slots: Vec<usize> = (0..40).map(|_| rng.gen_range(0..inserts.len())).collect();
    for engine in [
        Engine::HarrisSuVu,
        Engine::BarenboimElkin,
        Engine::ExactMatroid,
    ] {
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(engine)
            .with_epsilon(0.5)
            .with_seed(23);
        let mut dyn_dec = DynamicDecomposer::new(request.clone(), n).unwrap();
        let mut ids = Vec::new();
        for &(u, v) in &inserts {
            ids.push(dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap().edge);
        }
        let mut deleted = vec![false; ids.len()];
        for &slot in &delete_slots {
            if !deleted[slot] {
                dyn_dec.apply(EdgeUpdate::delete(ids[slot])).unwrap();
                deleted[slot] = true;
            }
        }
        dyn_dec.validate_live().unwrap();
        let mut expected = MultiGraph::new(n);
        for (slot, &(u, v)) in inserts.iter().enumerate() {
            if !deleted[slot] {
                expected
                    .add_edge(VertexId::new(u), VertexId::new(v))
                    .unwrap();
            }
        }
        let cold = Decomposer::new(request).run(&expected).unwrap();
        let snap = dyn_dec.snapshot().unwrap();
        assert_eq!(
            cold.canonical_bytes(),
            snap.canonical_bytes(),
            "snapshot != cold for {engine:?}"
        );
        snap.validate(&expected).unwrap();
    }
    // The unsupported rest of the matrix is typed, not a panic.
    for problem in [
        ProblemKind::ListForest,
        ProblemKind::StarForest,
        ProblemKind::ListStarForest,
        ProblemKind::Orientation,
    ] {
        assert!(matches!(
            DynamicDecomposer::new(DecompositionRequest::new(problem), 4),
            Err(FdError::DynamicUnsupported { .. })
        ));
    }
}

/// The acceptance-criteria stream: ≥ 10k random inserts/deletes, live
/// coloring valid throughout (spot-checked), snapshot byte-identical to the
/// cold run on the final graph.
#[test]
fn ten_thousand_update_stream_snapshots_byte_identical() {
    let n = 256;
    let mut rng = StdRng::seed_from_u64(77);
    let request = DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::ExactMatroid)
        .with_seed(9);
    let mut dyn_dec = DynamicDecomposer::new(request.clone(), n).unwrap();
    let mut live: Vec<(EdgeId, usize, usize)> = Vec::new();
    let mut applied = 0usize;
    while applied < 10_000 {
        let delete = !live.is_empty() && rng.gen_bool(0.45);
        if delete {
            let slot = rng.gen_range(0..live.len());
            let (e, _, _) = live.swap_remove(slot);
            dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
        } else {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let e = dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap().edge;
            live.push((e, u, v));
        }
        applied += 1;
        if applied.is_multiple_of(1000) {
            dyn_dec.validate_live().unwrap();
        }
    }
    assert_eq!(dyn_dec.stats().updates, 10_000);
    dyn_dec.validate_live().unwrap();
    live.sort_by_key(|&(e, _, _)| e);
    let mut expected = MultiGraph::new(n);
    for &(_, u, v) in &live {
        expected
            .add_edge(VertexId::new(u), VertexId::new(v))
            .unwrap();
    }
    let cold = Decomposer::new(request).run(&expected).unwrap();
    let snap = dyn_dec.snapshot().unwrap();
    assert_eq!(cold.canonical_bytes(), snap.canonical_bytes());
    // The stream overwhelmingly rides the fast paths; fallbacks are the
    // exception, not the norm.
    assert!(
        dyn_dec.stats().fallback_rate() < 0.5,
        "fallback rate {}",
        dyn_dec.stats().fallback_rate()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `compact_ids` is invisible to the decomposition: after arbitrary
    /// churn, compacting renumbers the live edges densely (in insertion
    /// order) without changing `snapshot()` bytes, endpoints, colors or
    /// the validity of the live coloring.
    #[test]
    fn compact_ids_is_invisible_to_the_snapshot((n, script) in arb_script(16, 60)) {
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(11);
        let mut dyn_dec = DynamicDecomposer::new(request, n).unwrap();
        let mut live: Vec<(EdgeId, usize, usize)> = Vec::new();
        for (u, v, delete) in script {
            if delete && !live.is_empty() {
                let slot = u % live.len();
                let (e, _, _) = live.swap_remove(slot);
                dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
            } else if u != v {
                let e = dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap().edge;
                live.push((e, u, v));
            }
        }
        let before = dyn_dec.snapshot().unwrap().canonical_bytes();
        let old_endpoints: Vec<(EdgeId, VertexId, VertexId)> =
            dyn_dec.live_graph().live_edges().collect();

        let remap = dyn_dec.compact_ids();

        // Dense renumbering in ascending-old-id (= insertion) order.
        prop_assert_eq!(remap.new_span(), old_endpoints.len());
        prop_assert_eq!(dyn_dec.live_graph().edge_id_span(), old_endpoints.len());
        let olds: Vec<EdgeId> = remap.iter().map(|(_, old)| old).collect();
        prop_assert!(olds.windows(2).all(|w| w[0] < w[1]), "old ids not ascending");
        // Endpoints ride along with the remap.
        let new_endpoints: Vec<(EdgeId, VertexId, VertexId)> =
            dyn_dec.live_graph().live_edges().collect();
        for &(old, u, v) in &old_endpoints {
            let new = remap.new_id(old).expect("live edge lost by compaction");
            prop_assert_eq!(remap.old_id(new), Some(old));
            let (ne, nu, nv) = new_endpoints[new.index()];
            prop_assert_eq!(ne, new);
            prop_assert_eq!((nu, nv), (u, v));
        }
        // The decomposition itself is untouched.
        dyn_dec.validate_live().unwrap();
        let after = dyn_dec.snapshot().unwrap().canonical_bytes();
        prop_assert_eq!(before, after);
    }
}

/// Deleting into a sparse regime drains and retires colors (the downward
/// half of budget tracking), and every delta report stays coherent.
#[test]
fn deletions_shrink_the_budget_on_a_thinning_graph() {
    let g = generators::fat_path(24, 3); // arboricity 3
    let request = DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::ExactMatroid)
        .with_seed(3);
    let mut dyn_dec = DynamicDecomposer::from_graph(request, &g).unwrap();
    assert_eq!(dyn_dec.color_budget(), 3);
    // Delete two of every three parallel edges: the survivor is a path,
    // arboricity 1.
    let mut deletes = Vec::new();
    for (e, _, _) in dyn_dec.live_graph().live_edges() {
        if e.index() % 3 != 0 {
            deletes.push(e);
        }
    }
    for e in deletes {
        let delta = dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
        assert!(matches!(
            delta.path,
            UpdatePath::FastDelete | UpdatePath::Compact
        ));
        assert_eq!(delta.live_edges, dyn_dec.num_live_edges());
        dyn_dec.validate_live().unwrap();
    }
    assert_eq!(dyn_dec.num_live_edges(), g.num_edges() / 3);
    assert_eq!(dyn_dec.color_budget(), 1, "budget followed arboricity down");
    assert!(dyn_dec.stats().compactions > 0 || dyn_dec.stats().fast_deletes > 0);
}
