//! Storage-generic input contract tests: `CsrPartition::split` preserves
//! every edge exactly once, the on-disk CSR format round-trips
//! byte-identically through `save` → `load_mmap`, an mmap-loaded graph
//! decomposes to a byte-identical report for every `(problem, engine)`
//! combination, and `run_sharded` produces validated, deterministic
//! stitched decompositions.

use forest_decomp::api::{
    Decomposer, DecompositionRequest, Engine, FrozenGraph, GraphInput, ProblemKind, Validate,
    ValidationStatus,
};
use forest_decomp::FdError;
use forest_graph::{
    generators, CsrGraph, CsrPartition, GraphView, MmapCsr, MultiGraph, OwnedCsr, VertexId,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// Strategy: a random multigraph with up to `max_n` vertices and `max_m`
/// edges (self-loops excluded by construction).
fn arb_multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = MultiGraph> {
    (2..max_n, 0..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            let mut g = MultiGraph::new(n);
            for (u, v) in pairs {
                if u != v {
                    g.add_edge(VertexId::new(u), VertexId::new(v)).unwrap();
                }
            }
            g
        })
    })
}

/// A unique temp-file path for on-disk round-trip tests.
fn temp_csr_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nash-williams-{tag}-{}-{:?}.csr",
        std::process::id(),
        std::thread::current().id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every edge of the input appears exactly once in a split: in exactly
    /// one shard's internal edge list (with consistently mapped endpoints)
    /// or in the boundary list (with endpoints in different shards).
    #[test]
    fn split_preserves_every_edge_exactly_once(
        (g, k) in (arb_multigraph(24, 80), 1usize..7)
    ) {
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, k);
        let mut seen = vec![0usize; g.num_edges()];
        for s in 0..part.num_shards() {
            let shard = part.shard(s);
            for (local, lu, lv) in shard.edges() {
                let e = part.global_edge(s, local);
                seen[e.index()] += 1;
                let (gu, gv) = g.endpoints(e);
                prop_assert_eq!(part.global_vertex(s, lu), gu);
                prop_assert_eq!(part.global_vertex(s, lv), gv);
                prop_assert_eq!(part.shard_of(gu), s);
                prop_assert_eq!(part.shard_of(gv), s);
            }
        }
        for &e in part.boundary_edges() {
            seen[e.index()] += 1;
            let (u, v) = g.endpoints(e);
            prop_assert!(part.shard_of(u) != part.shard_of(v));
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "shard-local U boundary must cover each edge once");
    }

    /// The on-disk format round-trips byte-identically: the saved file is
    /// exactly `to_bytes()`, and re-saving the mmap-loaded graph reproduces
    /// it bit for bit.
    #[test]
    fn save_load_mmap_roundtrips_byte_identically(g in arb_multigraph(20, 60)) {
        let csr = CsrGraph::from_multigraph(&g);
        let path = temp_csr_path("prop-roundtrip");
        csr.save(&path).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        prop_assert_eq!(&on_disk, &csr.to_bytes());
        let mapped = MmapCsr::load_mmap(&path).unwrap();
        prop_assert_eq!(&mapped.to_bytes(), &on_disk);
        prop_assert_eq!(mapped.to_multigraph(), g.clone());
        prop_assert_eq!(OwnedCsr::from_bytes(&on_disk).unwrap(), csr);
        std::fs::remove_file(&path).unwrap();
    }
}

/// save → `load_mmap` → decompose is byte-identical (`canonical_bytes`) to
/// the owned-storage report for every problem × engine combination: storage
/// is a representation choice, never an algorithmic one.
#[test]
fn mmap_runs_match_owned_runs_for_every_problem_and_engine() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let g = generators::planted_forest_union(36, 3, &mut rng);
    let csr = CsrGraph::from_multigraph(&g);
    let path = temp_csr_path("matrix");
    csr.save(&path).unwrap();
    for &problem in &ProblemKind::ALL {
        for &engine in &Engine::ALL {
            let decomposer = Decomposer::new(
                DecompositionRequest::new(problem)
                    .with_engine(engine)
                    .with_epsilon(0.5)
                    .with_seed(914),
            );
            let owned = decomposer.run(&g);
            let mapped_input = GraphInput::from_mmap(&path).unwrap();
            let mapped = decomposer.run(mapped_input);
            match (owned, mapped) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.canonical_bytes(),
                        b.canonical_bytes(),
                        "{problem}/{engine}: mmap run diverged from owned run"
                    );
                    b.validate(&g).unwrap();
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "{problem}/{engine}: storages disagree on failure: owned ok = {}, mmap ok = {}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// `run_sharded` validates its stitched decomposition against the full
/// graph, is deterministic for a fixed shard count, and reports as
/// `leftover_edges` only the edges that actually went through a
/// leftover/recoloring phase (never more than the boundary plus per-shard
/// leftovers; boundary edges placed by the phase-1 fast path don't count).
#[test]
fn run_sharded_validates_and_is_deterministic() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
    let g = generators::planted_forest_union(160, 3, &mut rng);
    let csr = CsrGraph::from_multigraph(&g);
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_alpha(3)
            .with_seed(77),
    );
    let unsharded = decomposer.run(&g).unwrap();
    for k in [2usize, 4, 8] {
        let part = CsrPartition::split(&csr, k);
        let report = decomposer.run_sharded(&g, k).unwrap();
        assert_eq!(report.validation, ValidationStatus::Validated);
        report.validate(&g).unwrap();
        // The phase-1 fast path places at least the first boundary edges it
        // sees (fresh shard forests are disconnected), so the stitch residue
        // is a strict subset of the boundary — and `leftover_edges` counts
        // only that residue plus per-shard leftovers (zero here), never the
        // whole boundary as the pre-PR-4 accounting did.
        assert!(
            report.leftover_edges < part.boundary_edges().len().max(1),
            "phase-1 stitching must place some boundary edges directly \
             (leftover {} vs boundary {})",
            report.leftover_edges,
            part.boundary_edges().len()
        );
        assert!(report.num_colors >= unsharded.arboricity);
        let again = decomposer.run_sharded(&g, k).unwrap();
        assert_eq!(
            report.canonical_bytes(),
            again.canonical_bytes(),
            "sharded runs must be deterministic (k = {k})"
        );
    }
}

/// Regression for the leftover accounting bug: on a cleanly stitched grid
/// every boundary edge lands in an existing shard forest through the phase-1
/// fast path, so `leftover_edges` must be exactly 0 (it used to report the
/// whole boundary count plus per-shard leftovers).
#[test]
fn run_sharded_grid_reports_zero_leftover() {
    let g = generators::grid(40, 25);
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(17),
    );
    for k in [2usize, 4] {
        let report = decomposer.run_sharded(&g, k).unwrap();
        report.validate(&g).unwrap();
        assert_eq!(
            report.leftover_edges, 0,
            "cleanly stitched grid must report zero leftover edges (k = {k})"
        );
    }
}

/// Regression for the color-span stitch bug: Harris–Su–Vu shard colorings
/// can leave color *index gaps* (leftover star colors skip indices), and the
/// stitcher must budget by max color index + 1, not by the distinct-color
/// count — otherwise gap-colored shard trees are invisible to the
/// connectivity cache and the stitch closes monochromatic cycles.
#[test]
fn run_sharded_handles_gap_colored_shard_decompositions() {
    use forest_graph::VertexId;
    // Two fat-path blocks joined by random bridges: each shard's HSV run
    // needs the leftover star-forest recoloring (which allocates
    // non-contiguous color ids), and the bridges force a real stitch.
    let block = generators::fat_path(50, 3);
    let n = block.num_vertices();
    let mut g = MultiGraph::new(2 * n);
    for (_, u, v) in block.edges() {
        g.add_edge(u, v).unwrap();
        g.add_edge(VertexId::new(u.index() + n), VertexId::new(v.index() + n))
            .unwrap();
    }
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    for _ in 0..400 {
        let u = rand::Rng::gen_range(&mut rng, 0..n);
        let v = rand::Rng::gen_range(&mut rng, 0..n);
        g.add_edge(VertexId::new(u), VertexId::new(v + n)).unwrap();
    }
    for seed in [0u64, 1, 2, 3] {
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::HarrisSuVu)
                .with_epsilon(0.5)
                .with_seed(seed),
        );
        let report = decomposer.run_sharded(&g, 2).unwrap();
        assert_eq!(report.validation, ValidationStatus::Validated);
        report.validate(&g).unwrap();
    }
}

/// An mmap input drives the sharded path end to end: load from disk, split,
/// decompose per shard, stitch, validate — no owned CSR anywhere upstream.
#[test]
fn run_sharded_works_from_an_mmap_input() {
    let g = generators::grid(12, 9);
    let path = temp_csr_path("sharded-mmap");
    CsrGraph::from_multigraph(&g).save(&path).unwrap();
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(13),
    );
    let input = GraphInput::from_mmap(&path).unwrap();
    let sharded = decomposer.run_sharded(input, 3).unwrap();
    sharded.validate(&g).unwrap();
    let direct = decomposer.run_sharded(&g, 3).unwrap();
    assert_eq!(sharded.canonical_bytes(), direct.canonical_bytes());
    std::fs::remove_file(&path).unwrap();
}

/// `GraphInput::from_shard` yields a standalone, runnable input whose
/// report validates against the thawed shard graph.
#[test]
fn from_shard_inputs_decompose_standalone() {
    let g = generators::fat_path(60, 2);
    let csr = CsrGraph::from_multigraph(&g);
    let part = CsrPartition::split(&csr, 3);
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(4),
    );
    for s in 0..part.num_shards() {
        let shard_graph = part.shard(s).to_multigraph();
        let input = GraphInput::from_shard(&part, s).unwrap();
        let report = decomposer.run(input).unwrap();
        report.validate(&shard_graph).unwrap();
        // The shard input is byte-identical to freezing the thawed shard.
        let via_frozen = decomposer
            .run(FrozenGraph::freeze(shard_graph.clone()))
            .unwrap();
        assert_eq!(report.canonical_bytes(), via_frozen.canonical_bytes());
    }
}

/// Typed failures: non-forest sharding and malformed mmap files.
#[test]
fn sharded_and_mmap_failures_are_typed() {
    let g = generators::path(6);
    let decomposer = Decomposer::new(DecompositionRequest::new(ProblemKind::Orientation));
    assert!(matches!(
        decomposer.run_sharded(&g, 2),
        Err(FdError::ShardingUnsupported {
            problem: ProblemKind::Orientation
        })
    ));
    let path = temp_csr_path("bad");
    std::fs::write(&path, b"definitely not a CSR file").unwrap();
    assert!(matches!(
        GraphInput::from_mmap(&path),
        Err(FdError::Io { .. })
    ));
    std::fs::remove_file(&path).unwrap();
}
