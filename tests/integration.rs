//! Cross-crate integration tests: the substrate crates (`forest-graph`,
//! `local-model`) and the algorithm crate (`forest-decomp`) working together
//! on several graph families, cross-validated against the exact centralized
//! baselines — all pipeline-level calls go through the `Decomposer` facade.

use forest_decomp::api::{
    Artifact, Decomposer, DecompositionRequest, Engine, ProblemKind, Validate,
};
use forest_decomp::hpartition::{acyclic_orientation, h_partition, star_forest_decomposition};
use forest_graph::decomposition::{
    validate_forest_decomposition, validate_star_forest_decomposition,
};
use forest_graph::{generators, matroid, orientation, ForestDecomposition};
use local_model::RoundLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families(seed: u64) -> Vec<(String, forest_graph::MultiGraph, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "planted-3".into(),
            generators::planted_forest_union(80, 3, &mut rng),
            3,
        ),
        ("fat-path-4".into(), generators::fat_path(60, 4), 4),
        ("grid-10x10".into(), generators::grid(10, 10), 2),
        ("hypercube-6".into(), generators::hypercube(6), 4),
        ("clique-14".into(), generators::complete_graph(14), 7),
    ]
}

/// Exact centralized decomposition through the facade.
fn exact_fd(g: &forest_graph::MultiGraph) -> (ForestDecomposition, usize) {
    let report = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest).with_engine(Engine::ExactMatroid),
    )
    .run(g)
    .expect("exact matroid engine never fails");
    let fd = report
        .artifact
        .decomposition()
        .expect("forest requests produce decompositions")
        .clone();
    (fd, report.arboricity)
}

#[test]
fn exact_baseline_matches_nash_williams_lower_bound() {
    for (name, g, bound) in families(1) {
        let (fd, alpha) = exact_fd(&g);
        assert!(
            alpha <= bound,
            "{name}: alpha {alpha} above planted bound {bound}"
        );
        assert!(
            alpha >= matroid::arboricity_lower_bound(&g),
            "{name}: below whole-graph density bound"
        );
        assert!(
            alpha >= orientation::pseudoarboricity(&g),
            "{name}: alpha < alpha*"
        );
        validate_forest_decomposition(&g, &fd, Some(alpha)).unwrap();
    }
}

#[test]
fn pipeline_beats_barenboim_elkin_on_colors() {
    // The whole point of the paper: fewer forests than the (2+eps) baseline
    // whenever alpha is not tiny.
    for (name, g, bound) in families(2) {
        let alpha = matroid::arboricity(&g);
        let alpha_star = orientation::pseudoarboricity(&g);
        let result = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_epsilon(0.5)
                .with_alpha(bound)
                .with_seed(3),
        )
        .run(&g)
        .unwrap();
        result.validate(&g).unwrap();
        let baseline = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::BarenboimElkin)
                .with_epsilon(0.5)
                .with_alpha(alpha_star)
                .with_seed(3),
        )
        .run(&g)
        .unwrap();
        // The BE color budget is floor((2+eps) alpha*).
        let budget = (2.5 * alpha_star as f64).floor() as usize;
        assert!(
            baseline.num_colors <= budget,
            "{name}: baseline used {} colors vs budget {budget}",
            baseline.num_colors
        );
        assert!(
            result.num_colors <= budget.max(alpha + 2),
            "{name}: pipeline used {} colors vs baseline budget {}",
            result.num_colors,
            budget
        );
        if alpha >= 4 {
            assert!(
                result.num_colors < 2 * alpha,
                "{name}: expected fewer than 2*alpha = {} forests, got {}",
                2 * alpha,
                result.num_colors
            );
        }
    }
}

#[test]
fn corollary_1_1_orientation_from_every_family() {
    for (name, g, _) in families(3) {
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Orientation).with_engine(Engine::ExactMatroid),
        )
        .run(&g)
        .unwrap();
        let Artifact::Orientation { max_out_degree, .. } = &report.artifact else {
            panic!("{name}: orientation request must produce an orientation");
        };
        assert!(
            *max_out_degree <= report.arboricity,
            "{name}: out-degree above alpha"
        );
    }
}

#[test]
fn theorem_2_1_star_forests_on_every_family() {
    for (name, g, _) in families(4) {
        let alpha_star = orientation::pseudoarboricity(&g).max(1);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, 0.5, alpha_star, &mut ledger).unwrap();
        assert!(hp.satisfies_degree_property(&g), "{name}");
        let o = acyclic_orientation(&g, &hp);
        assert!(o.is_acyclic(&g), "{name}");
        let sfd = star_forest_decomposition(&g, &o, &mut ledger);
        validate_star_forest_decomposition(&g, &sfd, Some(3 * hp.degree_threshold))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn folklore_two_alpha_star_bound_holds_everywhere() {
    for (name, g, _) in families(5) {
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::StarForest).with_engine(Engine::Folklore2Alpha),
        )
        .run(&g)
        .unwrap();
        let stars = report.artifact.decomposition().unwrap();
        validate_star_forest_decomposition(&g, stars, Some(2 * report.arboricity))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn network_decomposition_feeds_algorithm2_clusters() {
    // The local-model network decomposition must satisfy the properties
    // Algorithm 2 relies on, on the same workloads the pipeline uses.
    for (name, g, _) in families(6) {
        let mut ledger = RoundLedger::new();
        let nd = local_model::network_decomposition(&g, &mut ledger);
        assert!(nd.classes_separate_clusters(&g), "{name}");
        let n = g.num_vertices();
        let log2n = (usize::BITS - (n - 1).leading_zeros()) as usize;
        assert!(
            nd.num_classes <= log2n + 1,
            "{name}: {} classes",
            nd.num_classes
        );
        assert!(nd.max_weak_diameter(&g) <= 2 * log2n + 2, "{name}");
    }
}

#[test]
fn deterministic_under_fixed_seed() {
    let g = generators::planted_forest_union(60, 3, &mut StdRng::seed_from_u64(1));
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(77),
    );
    let a = decomposer.run(&g).unwrap();
    let b = decomposer.run(&g).unwrap();
    assert_eq!(a.num_colors, b.num_colors);
    assert_eq!(a.max_diameter, b.max_diameter);
    assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    let (fd_a, fd_b) = (
        a.artifact.decomposition().unwrap(),
        b.artifact.decomposition().unwrap(),
    );
    for e in g.edge_ids() {
        assert_eq!(fd_a.color(e), fd_b.color(e));
    }
}
