//! Concurrency contract of the versioned layer, loom-free: K reader
//! threads hammer [`SnapshotReader::current`] while the single writer
//! churns edges and publishes epochs. Every answer a reader gets must be
//! internally consistent with exactly **one** published epoch — the
//! snapshot's fingerprint verifies, its watermark, coloring, roots and
//! orientation all describe the same state, and epochs only move
//! forward. Readers never block on the writer (the run makes thousands
//! of reads while the writer holds no lock a reader touches).

use forest_decomp::api::{
    DecompositionRequest, EdgeUpdate, Engine, ProblemKind, SnapshotReader, VersionedDecomposer,
};
use forest_graph::EdgeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const N: usize = 48;
const READERS: usize = 4;
const ROUNDS: usize = 200;

/// One reader's hammer loop: returns how many snapshots it checked.
fn hammer(reader: SnapshotReader, stop: Arc<AtomicBool>) -> usize {
    let mut reads = 0usize;
    let mut last_epoch = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let snap = reader.current();
        // No torn reads: the fingerprint stamped at publish time still
        // covers every queryable field.
        assert!(snap.verify(), "torn snapshot at epoch {}", snap.epoch());
        // Epochs only move forward for any single reader.
        assert!(
            snap.epoch() >= last_epoch,
            "epoch went backwards: {} after {}",
            snap.epoch(),
            last_epoch
        );
        last_epoch = snap.epoch();
        // Every field describes the *same* epoch.
        let wm = snap.watermark();
        assert_eq!(wm.epoch, snap.epoch());
        assert_eq!(wm.live_edges, snap.live_edges());
        assert_eq!(wm.color_budget, snap.color_budget());
        assert_eq!(wm.num_vertices, snap.num_vertices());
        assert!(wm.lower_bound <= wm.color_budget.max(1));
        // The stable-id list and the coloring agree on what is alive.
        let (compact, stable_ids) = snap.compact_graph();
        assert_eq!(stable_ids.len(), snap.live_edges());
        assert_eq!(compact.num_edges(), snap.live_edges());
        for &e in stable_ids {
            let c = snap
                .color_of_edge(e)
                .unwrap_or_else(|| panic!("live edge {e:?} uncolored at epoch {}", snap.epoch()));
            assert!(c.index() < snap.color_budget().max(1));
        }
        // The orientation honors the epoch's budget (Corollary 1.1 shape).
        assert!(snap.max_out_degree() <= snap.color_budget());
        reads += 1;
    }
    reads
}

#[test]
fn concurrent_readers_never_observe_torn_state() {
    let request = DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::ExactMatroid)
        .with_seed(13);
    let mut writer = VersionedDecomposer::new(request, N).expect("writer");
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let reader = writer.reader();
            let stop = Arc::clone(&stop);
            thread::spawn(move || hammer(reader, stop))
        })
        .collect();

    // The writer churns and publishes while the readers hammer.
    let mut rng = StdRng::seed_from_u64(99);
    let mut live: Vec<EdgeId> = Vec::new();
    for _ in 0..ROUNDS {
        let mut batch = Vec::new();
        let mut dropped = Vec::new();
        for (slot, &e) in live.iter().enumerate() {
            if batch.len() < 4 && rng.gen_bool(0.3) {
                batch.push(EdgeUpdate::delete(e));
                dropped.push(slot);
            }
        }
        while batch.len() < 10 {
            let u = rng.gen_range(0..N);
            let v = rng.gen_range(0..N);
            if u != v {
                batch.push(EdgeUpdate::insert(u, v));
            }
        }
        let report = writer.apply_batch(&batch).expect("batch");
        for slot in dropped.into_iter().rev() {
            live.swap_remove(slot);
        }
        live.extend(report.inserted_edges.iter().copied());
        let snap = writer.publish();
        assert_eq!(snap.live_edges(), live.len());
    }

    stop.store(true, Ordering::SeqCst);
    let reads: Vec<usize> = readers
        .into_iter()
        .map(|h| h.join().expect("reader panicked"))
        .collect();
    // Readers genuinely ran concurrently with the writer (they never
    // block, so even a slow machine gets plenty of reads per thread).
    for (i, &r) in reads.iter().enumerate() {
        assert!(r > 0, "reader {i} never completed a read");
    }
    assert_eq!(writer.published_epoch(), ROUNDS as u64);
    // After the writer quiesces, readers converge on the final epoch.
    let final_snap = writer.reader().current();
    assert_eq!(final_snap.epoch(), ROUNDS as u64);
    assert_eq!(final_snap.live_edges(), live.len());
    assert!(final_snap.verify());
}

/// The epoch-lag probe the benchmark uses: `current_epoch()` tracks
/// `publish()` immediately on the writer's own thread (zero lag when
/// sequenced), and a detached reader observes each epoch at most once
/// published, never early.
#[test]
fn epoch_hint_tracks_publishes() {
    let request = DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::ExactMatroid)
        .with_seed(5);
    let mut writer = VersionedDecomposer::new(request, 8).expect("writer");
    let reader = writer.reader();
    assert_eq!(reader.current_epoch(), 0);
    for round in 1..=5u64 {
        writer
            .apply(EdgeUpdate::insert(0, round as usize))
            .expect("insert");
        // Not yet published: readers still see the previous epoch.
        assert_eq!(reader.current_epoch(), round - 1);
        assert_eq!(reader.current().epoch(), round - 1);
        writer.publish();
        assert_eq!(reader.current_epoch(), round);
        assert_eq!(reader.current().epoch(), round);
    }
}
