//! Property-based coverage of the out-of-core pipeline: the external-sort
//! CSR builder must be byte-identical to freezing through a `MultiGraph`,
//! and `run_out_of_core` must reproduce the in-memory sharded run's
//! canonical report bytes, across arbitrary edge sets, shard counts and
//! memory budgets.

use forest_decomp::api::oocore::OocConfig;
use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_graph::extsort::{
    build_csr_from_edge_file, write_binary_edge_file, EdgeListFormat, ExtsortConfig,
};
use forest_graph::{matroid, CsrGraph, MultiGraph, VertexId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nw-ooc-prop-{tag}-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Strategy: an arbitrary self-loop-free edge list over up to `max_n`
/// vertices — the file order is the edge-id order, so shuffled input order
/// is covered by construction.
fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n, 0..max_m).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            (
                n,
                pairs
                    .into_iter()
                    .filter(|(u, v)| u != v)
                    .collect::<Vec<_>>(),
            )
        })
    })
}

fn multigraph_of(n: u32, edges: &[(u32, u32)]) -> MultiGraph {
    let mut g = MultiGraph::new(n as usize);
    for &(u, v) in edges {
        g.add_edge(VertexId::new(u as usize), VertexId::new(v as usize))
            .unwrap();
    }
    g
}

/// The full out-of-core pipeline end to end — raw edge file, external-sort
/// CSR build, bounded-memory sharded decomposition — on a graph 8× larger
/// than the memory ceiling, with the ceiling asserted via the driver's own
/// resident-bytes accounting. CI runs this as the out-of-core smoke step.
#[test]
fn edge_file_to_csr_to_out_of_core_smoke() {
    use forest_graph::generators;

    // A banded graph: contiguous-id shards cut only O(k) edges, the
    // locality regime the out-of-core walk is designed for.
    let g = generators::fat_path(2000, 4);
    let edge_file = temp_path("smoke.edges");
    let csr_file = temp_path("smoke.csr");
    write_binary_edge_file(
        &edge_file,
        g.edges()
            .map(|(_, u, v)| (u.index() as u32, v.index() as u32)),
    )
    .unwrap();
    // The sort buffer gets a fraction of the output size, forcing spills.
    let build = build_csr_from_edge_file(
        &edge_file,
        EdgeListFormat::BinaryU32,
        &csr_file,
        &ExtsortConfig::with_budget(16 << 10),
    )
    .unwrap();
    assert!(build.spilled_runs >= 2, "budget must force spilled runs");
    let file_bytes = std::fs::metadata(&csr_file).unwrap().len() as usize;
    let budget = file_bytes / 8;
    let decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_alpha(4)
            .with_seed(9),
    );
    let ooc = decomposer
        .run_out_of_core(&csr_file, &OocConfig::with_budget(budget))
        .unwrap();
    assert!(ooc.stats.num_shards > 1, "budget must force sharding");
    assert!(
        ooc.stats.peak_resident_bytes <= budget,
        "peak resident {} exceeds budget {budget}",
        ooc.stats.peak_resident_bytes
    );
    // Same decomposition as the in-memory sharded run at the derived k.
    let sharded = decomposer.run_sharded(&g, ooc.stats.num_shards).unwrap();
    assert_eq!(ooc.report.canonical_bytes(), sharded.canonical_bytes());
    for p in [&edge_file, &csr_file] {
        let _ = std::fs::remove_file(p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// External-sorting a shuffled edge file yields the exact bytes of
    /// `CsrGraph::from_multigraph(...).save(...)`, for any input and any
    /// memory budget (tiny budgets force multi-run spills).
    #[test]
    fn extsort_build_is_byte_identical_to_multigraph_save(
        input in (arb_edges(24, 70), 0usize..3)
    ) {
        let ((n, edges), budget_pick) = input;
        // Tiny budgets force multi-run spills; the large one stays in memory.
        let budget = [1usize, 256, 1 << 20][budget_pick];
        let edge_file = temp_path("edges");
        let sorted_csr = temp_path("sorted.csr");
        let frozen_csr = temp_path("frozen.csr");
        write_binary_edge_file(&edge_file, edges.iter().copied()).unwrap();
        let config = ExtsortConfig::with_budget(budget).num_vertices(n as usize);
        let stats = build_csr_from_edge_file(
            &edge_file,
            EdgeListFormat::BinaryU32,
            &sorted_csr,
            &config,
        )
        .unwrap();
        let g = multigraph_of(n, &edges);
        CsrGraph::from_multigraph(&g).save(&frozen_csr).unwrap();
        let sorted_bytes = std::fs::read(&sorted_csr).unwrap();
        let frozen_bytes = std::fs::read(&frozen_csr).unwrap();
        for p in [&edge_file, &sorted_csr, &frozen_csr] {
            let _ = std::fs::remove_file(p);
        }
        prop_assert_eq!(sorted_bytes, frozen_bytes);
        prop_assert_eq!(stats.num_vertices, n as usize);
        prop_assert_eq!(stats.num_edges, edges.len());
        // The one-pass watermark is the Nash-Williams density floor.
        prop_assert_eq!(stats.nash_williams_watermark, matroid::arboricity_lower_bound(&g));
    }

    /// An out-of-core run over the saved CSR reproduces the in-memory
    /// sharded run byte-for-byte, for any graph and shard count.
    #[test]
    fn out_of_core_canonical_bytes_match_run_sharded(
        input in (arb_edges(20, 50), 1usize..6, 0u64..500)
    ) {
        let ((n, edges), num_shards, seed) = input;
        let g = multigraph_of(n, &edges);
        let alpha = matroid::arboricity(&g).max(1);
        let csr_file = temp_path("parity.csr");
        CsrGraph::from_multigraph(&g).save(&csr_file).unwrap();
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::HarrisSuVu)
                .with_alpha(alpha)
                .with_seed(seed),
        );
        let sharded = decomposer.run_sharded(&g, num_shards).unwrap();
        let ooc = decomposer
            .run_out_of_core(
                &csr_file,
                &OocConfig::with_budget(1 << 22).num_shards(num_shards),
            )
            .unwrap();
        let _ = std::fs::remove_file(&csr_file);
        prop_assert_eq!(ooc.report.canonical_bytes(), sharded.canonical_bytes());
        // The plan clamps k to the vertex count, mirroring `CsrPartition`.
        prop_assert!(ooc.stats.num_shards >= 1 && ooc.stats.num_shards <= num_shards);
    }
}
