#!/usr/bin/env bash
# Regenerates BENCH_pr10.json: the performance snapshot of the Decomposer
# facade (graph sizes x engines x wall-clock, the 64-graph decomposer_batch
# workload with its BENCH_pr2 baseline, the thaw-free sharded-vs-unsharded
# large-graph run under identity and RCM split orders — prepared and cold,
# with boundary fractions — the on-disk CSR save -> load_mmap -> decompose
# round-trip, the DynamicDecomposer update-stream workloads — build/churn
# per-update cost vs a per-update cold rerun, rebuild-fallback rate,
# snapshot-vs-cold byte-identity — the exact-alpha stitch comparison, the
# PR 6 decomposition-service rows: in-process SnapshotReader and TCP
# client throughput under a live publishing writer plus the
# publish-to-read epoch lag, and the PR 7 hsv_power_graph rows: adversarial
# sharded-HSV wall-clock before/after the lazy PowerView + ball-local
# cluster pipeline, the forced-radii workload that previously materialized
# the power graph, and the PipelineStats counters of a direct
# algorithm2_frozen run (now with per-class power_layer_deltas), and the
# PR 8 out_of_core rows: external-sort CSR build from a raw edge file
# (spilled runs, one-pass Nash-Williams watermark) and run_out_of_core
# under a memory ceiling 8x smaller than the CSR file, with the driver's
# peak-resident accounting vs. the budget and byte-identity to the
# in-memory sharded run asserted inline, and the PR 10 observability rows:
# the process-wide forest-obs metric registry read back after every
# workload above has fed it, interleaved instrumented-vs-disabled
# wall-clock on the decomposer_batch and dynamic-churn workloads, and the
# measured disabled-path bound asserted under the 3% criterion — with host
# core/thread counts recorded in the environment block).
#
# Snapshots are appended as new BENCH_pr<N>.json files per PR, never
# overwritten — the history of numbers lives in git alongside the code.
#
# Usage: scripts/bench_snapshot.sh [output-file]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"

cargo build --release -p bench --bin bench_snapshot
./target/release/bench_snapshot > "$out"
echo "wrote $out" >&2
