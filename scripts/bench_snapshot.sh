#!/usr/bin/env bash
# Regenerates BENCH_pr2.json: the performance snapshot of the Decomposer
# facade (graph sizes x engines x wall-clock, plus the 64-graph
# decomposer_batch workload with its pre-refactor baseline).
#
# Usage: scripts/bench_snapshot.sh [output-file]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr2.json}"

cargo build --release -p bench --bin bench_snapshot
./target/release/bench_snapshot > "$out"
echo "wrote $out" >&2
