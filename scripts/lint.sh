#!/usr/bin/env bash
# Runs forest-lint over the whole workspace — the same invocation as the CI
# `lint` job. Exits nonzero if any finding survives suppression (inline
# allow directives or lint.toml entries, both of which require a written
# justification; see the "Static analysis" section of README.md).
#
# Usage: scripts/lint.sh [extra forest-lint args]
#   scripts/lint.sh                 # lint the workspace
#   scripts/lint.sh --list-rules    # print the rule catalogue
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ $# -gt 0 ]]; then
    exec cargo run -q -p forest-lint -- "$@"
fi
exec cargo run -q -p forest-lint -- --workspace
