#!/usr/bin/env python3
"""Schema checker for the chrome-trace JSON that obs_smoke emits.

Independent of the Rust exporter on purpose: forest-obs's own
`validate_trace` checks the event *stream* before export; this script
checks the exported *document* the way a consumer (Perfetto,
chrome://tracing) would read it — valid JSON, the traceEvents array
shape, required keys per event, phase-specific constraints, per-thread
timestamp monotonicity and B/E balance.

Usage: scripts/check_trace.py <trace.json>
Exits non-zero with a message on the first violation.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    with open(sys.argv[1], "r", encoding="utf-8") as fh:
        doc = json.load(fh)

    if not isinstance(doc, dict):
        fail("top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents must be an array")
    if not events:
        fail("traceEvents is empty — the instrumented run recorded nothing")

    last_ts = {}  # tid -> ts
    stacks = {}  # tid -> [name]
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"event {i} missing {key!r}: {e}")
        if e["ph"] not in ("B", "E", "i"):
            fail(f"event {i} has unknown phase {e['ph']!r}")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            fail(f"event {i} has bad ts {e['ts']!r}")
        if not isinstance(e["name"], str) or not e["name"]:
            fail(f"event {i} has bad name {e['name']!r}")
        tid = e["tid"]
        if e["ts"] < last_ts.get(tid, 0.0):
            fail(f"event {i}: ts went backwards on tid {tid}")
        last_ts[tid] = e["ts"]
        if e["ph"] == "B":
            stacks.setdefault(tid, []).append(e["name"])
        elif e["ph"] == "E":
            stack = stacks.get(tid, [])
            if not stack:
                fail(f"event {i}: E with no open span on tid {tid}")
            stack.pop()
        elif e["ph"] == "i":
            if e.get("s") not in ("t", "p", "g"):
                fail(f"event {i}: instant missing scope 's'")
    for tid, stack in stacks.items():
        if stack:
            fail(f"tid {tid} left spans open at end of trace: {stack}")

    begins = sum(1 for e in events if e["ph"] == "B")
    print(
        f"check_trace: ok — {len(events)} events, {begins} spans, "
        f"{len(last_ts)} thread(s)"
    )


if __name__ == "__main__":
    main()
