//! The `forest-lint` CLI.
//!
//! ```text
//! forest-lint --workspace            # lint the whole workspace (CI entry point)
//! forest-lint --root /path --workspace
//! forest-lint --list-rules           # print the rule catalogue
//! forest-lint path/to/file.rs …      # lint specific files (paths relative to root)
//! ```
//!
//! Diagnostics are rustc-style `path:line:col: error[FLxxx]: message` lines
//! on stdout; the process exits 1 if any finding survives suppression and
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: forest-lint [--root DIR] [--config FILE] (--workspace | --list-rules | FILE...)\n\
     \n\
     --workspace    lint every first-party .rs file under the workspace root\n\
     --root DIR     workspace root (default: nearest ancestor with lint.toml, else cwd)\n\
     --config FILE  allowlist to use instead of <root>/lint.toml\n\
     --list-rules   print the rule catalogue and exit"
}

fn find_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("lint.toml").is_file() || dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut workspace = false;
    let mut list_rules = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--root needs a value\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--config needs a value\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
            other => files.push(other.to_string()),
        }
    }

    if list_rules {
        for r in forest_lint::RULES {
            println!("{}  {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(find_root);

    let config = match config_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match forest_lint::Config::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{}: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("{}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => match forest_lint::load_config(&root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
    };

    let (findings, files_scanned) = if workspace {
        if !files.is_empty() {
            eprintln!(
                "--workspace and explicit files are mutually exclusive\n{}",
                usage()
            );
            return ExitCode::from(2);
        }
        match forest_lint::run_workspace(&root) {
            Ok(report) => (report.findings, report.files_scanned),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    } else {
        if files.is_empty() {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
        let mut findings = Vec::new();
        for rel in &files {
            let abs = root.join(rel);
            match std::fs::read_to_string(&abs) {
                Ok(src) => {
                    let rel_fwd = rel.replace('\\', "/");
                    findings.extend(forest_lint::lint_source(&rel_fwd, &src, &config));
                }
                Err(e) => {
                    eprintln!("{}: {e}", abs.display());
                    return ExitCode::from(2);
                }
            }
        }
        let n = files.len();
        (findings, n)
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("forest-lint: {files_scanned} file(s) clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "forest-lint: {} finding(s) in {files_scanned} file(s)",
            findings.len()
        );
        ExitCode::FAILURE
    }
}
