//! `forest-lint`: workspace static analysis enforcing the determinism and
//! unsafe-hygiene contracts of the Harris–Su–Vu decomposition suite.
//!
//! The whole pipeline is byte-deterministic by contract — `canonical_bytes`
//! of a decomposition must be identical across the in-memory, virtual-view
//! and out-of-core paths, across runs, and across machines. That contract
//! is easy to break silently: one `for _ in &hash_map` in a
//! determinism-bearing crate, one `u64 as u32` in the server decoder, one
//! `Instant::now()` leaking into an artifact. This crate is a token-level
//! scanner (hand-rolled lexer, **no external parser deps** — the workspace
//! vendors all dependencies and builds offline) that walks the workspace
//! and rejects exactly those shapes.
//!
//! See [`rules`] for the rule catalogue (FL001–FL005), [`config`] for the
//! checked-in `lint.toml` allowlist and [`lexer`] for the tokenizer.
//!
//! Suppression is explicit and always justified:
//!
//! - inline, for a single site:
//!   `// forest-lint: allow(FL004) bounded by the MAX_FRAME_LEN check above`
//!   (covers the comment's own line and the next line);
//! - checked-in, for a file or subtree: an `[[allow]]` entry in
//!   `lint.toml` at the workspace root, with a mandatory `reason`.
//!
//! Run it with `cargo run -p forest-lint -- --workspace` (or
//! `scripts/lint.sh`); the binary exits nonzero if any finding survives
//! suppression, and CI runs it on every push.

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::{AllowEntry, Config};
pub use rules::{Finding, RULES};

/// Lints one file's source text against every rule, applying inline
/// suppressions and the `config` allowlist.
///
/// `rel_path` is the workspace-relative path with forward slashes; rules
/// use it to decide applicability (e.g. FL003 only fires under
/// `crates/server/src/protocol*`).
pub fn lint_source(rel_path: &str, src: &str, config: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mut findings = rules::check_file(rel_path, &lexed);
    findings.retain(|f| !config.allows(f.rule, rel_path));
    findings
}

/// As [`lint_source`], but without the `lint.toml` allowlist — the raw
/// diagnostic surface. The allowlist-liveness test uses this to assert
/// every checked-in entry still suppresses at least one real finding.
pub fn lint_source_unfiltered(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    rules::check_file(rel_path, &lexed)
}

/// Directories at the workspace root that are scanned.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples", "vendor"];

/// Collects every `.rs` file under the workspace root, as sorted
/// workspace-relative forward-slash paths. `target/` and hidden
/// directories are never entered, and under `vendor/` only `memmap2`
/// (first-party unsafe surface) is scanned.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            if let Some(rel) = rel_of(&path, root) {
                // Under vendor/, only memmap2 is first-party surface.
                if let Some(sub) = rel.strip_prefix("vendor/") {
                    let top = sub.split('/').next().unwrap_or(sub);
                    if top != "memmap2" {
                        continue;
                    }
                }
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Some(rel) = rel_of(&path, root) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn rel_of(path: &Path, root: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    Some(s)
}

/// Loads `lint.toml` from the workspace root; a missing file is an empty
/// config, a malformed file is an error.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::empty()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// The outcome of a workspace run.
pub struct RunReport {
    /// All surviving findings, in (path, line, col) order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints the whole workspace rooted at `root` with its `lint.toml`.
pub fn run_workspace(root: &Path) -> Result<RunReport, String> {
    let config = load_config(root)?;
    let files = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = Vec::new();
    for rel in &files {
        let abs: PathBuf = root.join(rel);
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        findings.extend(lint_source(rel, &src, &config));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(RunReport {
        findings,
        files_scanned: files.len(),
    })
}
