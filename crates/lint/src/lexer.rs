//! A hand-rolled token-level lexer for Rust source.
//!
//! The rules in this crate only need a *token-accurate* view of a file —
//! enough to know that `unsafe` inside a string literal is data, that
//! `HashMap` inside a comment is prose, and where each real token starts —
//! not a parse tree. So the lexer handles exactly the lexical structure
//! that would otherwise cause false positives:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char literals vs. lifetimes (`'a'` is a literal, `'a` is a lifetime),
//! * numeric literals with underscores, radix prefixes and type suffixes
//!   (without swallowing the `..` of a range expression).
//!
//! Everything else is an identifier or a single-character punctuation
//! token. Comments are kept in a side list (with their spans) because two
//! rules read them: FL002 looks for `// SAFETY:` and the suppression layer
//! looks for inline `forest-lint` allow directives.
//!
//! No external parser dependencies, consistent with the workspace's
//! offline vendored-deps policy.

/// The coarse kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `for`, …).
    Ident,
    /// A single punctuation character (`.`, `[`, `:`, …).
    Punct,
    /// A string literal of any flavor (plain, byte, raw).
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal, including any type suffix.
    Num,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Punct`], the single character).
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column (in characters) of the first character.
    pub col: usize,
}

impl Tok {
    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block) with its span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text, including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub col: usize,
    /// 1-based line of the last character (equals `line` for line
    /// comments; block comments may span several lines).
    pub end_line: usize,
}

/// The result of lexing one file: real tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unterminated literals simply run to end of file), which is the right
/// failure mode for a linter — it must never panic on the code it checks.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while !cur.eof() {
        let line = cur.line;
        let col = cur.col;
        let c = match cur.peek(0) {
            Some(c) => c,
            None => break,
        };

        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                end_line: line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            text.push(cur.bump().unwrap_or('/'));
            text.push(cur.bump().unwrap_or('*'));
            let mut depth = 1usize;
            while depth > 0 && !cur.eof() {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push(cur.bump().unwrap_or('/'));
                    text.push(cur.bump().unwrap_or('*'));
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push(cur.bump().unwrap_or('*'));
                    text.push(cur.bump().unwrap_or('/'));
                } else if let Some(n) = cur.bump() {
                    text.push(n);
                }
            }
            out.comments.push(Comment {
                text,
                line,
                col,
                end_line: cur.line,
            });
            continue;
        }

        // Identifiers, keywords, and the literal prefixes r / b / br.
        if is_ident_start(c) {
            let mut ident = String::new();
            while let Some(n) = cur.peek(0) {
                if is_ident_continue(n) {
                    ident.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            let raw_capable = ident == "r" || ident == "br";
            let byte_capable = ident == "b" || ident == "br";
            match cur.peek(0) {
                Some('"') if raw_capable || byte_capable => {
                    // r"…" / b"…" / br"…" (zero raw guards).
                    let text = if ident == "b" {
                        scan_plain_string(&mut cur, &ident)
                    } else {
                        scan_raw_string(&mut cur, &ident, 0)
                    };
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line,
                        col,
                    });
                }
                Some('#') if raw_capable => {
                    let mut guards = 0usize;
                    while cur.peek(guards) == Some('#') {
                        guards += 1;
                    }
                    if cur.peek(guards) == Some('"') {
                        let text = scan_raw_string(&mut cur, &ident, guards);
                        out.tokens.push(Tok {
                            kind: TokKind::Str,
                            text,
                            line,
                            col,
                        });
                    } else {
                        out.tokens.push(Tok {
                            kind: TokKind::Ident,
                            text: ident,
                            line,
                            col,
                        });
                    }
                }
                Some('\'') if ident == "b" => {
                    // A byte-char literal b'x'.
                    let text = scan_char_literal(&mut cur, &ident);
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line,
                        col,
                    });
                }
                _ => out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: ident,
                    line,
                    col,
                }),
            }
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let text = scan_plain_string(&mut cur, "");
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by another quote.
            if cur
                .peek(1)
                .map(|n| is_ident_start(n) || n == '_')
                .unwrap_or(false)
            {
                let mut run = 2;
                while cur.peek(run).map(is_ident_continue).unwrap_or(false) {
                    run += 1;
                }
                if cur.peek(run) != Some('\'') {
                    let mut text = String::new();
                    for _ in 0..run {
                        if let Some(n) = cur.bump() {
                            text.push(n);
                        }
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
            }
            let text = scan_char_literal(&mut cur, "");
            out.tokens.push(Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            });
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let mut text = String::new();
            if c == '0'
                && matches!(cur.peek(1), Some('x') | Some('o') | Some('b') | Some('X'))
                && cur.peek(2).map(is_ident_continue).unwrap_or(false)
            {
                // Radix prefix: consume 0x / 0o / 0b and the digit run.
                text.push(cur.bump().unwrap_or('0'));
                if let Some(n) = cur.bump() {
                    text.push(n);
                }
                while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                    if let Some(n) = cur.bump() {
                        text.push(n);
                    }
                }
            } else {
                while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                    if let Some(n) = cur.bump() {
                        text.push(n);
                    }
                }
                // A fractional part — only if the dot is followed by a digit,
                // so `0..n` keeps its range dots.
                if cur.peek(0) == Some('.')
                    && cur.peek(1).map(|n| n.is_ascii_digit()).unwrap_or(false)
                {
                    text.push(cur.bump().unwrap_or('.'));
                    while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                        if let Some(n) = cur.bump() {
                            text.push(n);
                        }
                    }
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text,
                line,
                col,
            });
            continue;
        }

        // Everything else: one punctuation character.
        if let Some(p) = cur.bump() {
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: p.to_string(),
                line,
                col,
            });
        }
    }

    out
}

/// Scans a `"…"` literal with escapes; the opening quote is at the cursor.
fn scan_plain_string(cur: &mut Cursor, prefix: &str) -> String {
    let mut text = String::from(prefix);
    text.push(cur.bump().unwrap_or('"')); // opening quote
    while let Some(n) = cur.peek(0) {
        if n == '\\' {
            text.push(cur.bump().unwrap_or('\\'));
            if let Some(e) = cur.bump() {
                text.push(e);
            }
            continue;
        }
        text.push(cur.bump().unwrap_or('"'));
        if n == '"' {
            break;
        }
    }
    text
}

/// Scans `r"…"` / `br#"…"#` with `guards` `#` characters; the cursor sits
/// on the first `#` (or the quote when `guards == 0`).
fn scan_raw_string(cur: &mut Cursor, prefix: &str, guards: usize) -> String {
    let mut text = String::from(prefix);
    for _ in 0..guards {
        text.push(cur.bump().unwrap_or('#'));
    }
    text.push(cur.bump().unwrap_or('"')); // opening quote
    while !cur.eof() {
        if cur.peek(0) == Some('"') {
            let closed = (0..guards).all(|g| cur.peek(1 + g) == Some('#'));
            if closed {
                text.push(cur.bump().unwrap_or('"'));
                for _ in 0..guards {
                    text.push(cur.bump().unwrap_or('#'));
                }
                break;
            }
        }
        if let Some(n) = cur.bump() {
            text.push(n);
        }
    }
    text
}

/// Scans a `'…'` char (or byte-char) literal; the opening quote is at the
/// cursor.
fn scan_char_literal(cur: &mut Cursor, prefix: &str) -> String {
    let mut text = String::from(prefix);
    text.push(cur.bump().unwrap_or('\'')); // opening quote
    while let Some(n) = cur.peek(0) {
        if n == '\\' {
            text.push(cur.bump().unwrap_or('\\'));
            if let Some(e) = cur.bump() {
                text.push(e);
            }
            continue;
        }
        text.push(cur.bump().unwrap_or('\''));
        if n == '\'' {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_keywords() {
        let src = r#"let s = "unsafe { HashMap }"; let t = 1;"#;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn raw_strings_hide_keywords_and_quotes() {
        let src = "let s = r#\"a \"quoted\" unsafe HashMap\"#; unsafe_marker();";
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"unsafe_marker".to_string()));
    }

    #[test]
    fn byte_and_guarded_raw_strings() {
        let src = "f(b\"unsafe\", br##\"HashMap \"# still\"##, b'x', 'y');";
        let ids = idents(src);
        assert_eq!(ids, vec!["f".to_string()]);
        let chars: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn comments_hide_keywords_but_are_kept() {
        let src = "// unsafe HashMap\n/* for x in map.iter() */\ncode();";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ real();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("real")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("still")));
    }

    #[test]
    fn block_comment_spans_lines() {
        let src = "/* a\nb\nc */ x();";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..n { let x = 1_000u64; let f = 2.5f32; }";
        let lexed = lex(src);
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "range dots survive");
        assert!(lexed.tokens.iter().any(|t| t.text == "1_000u64"));
        assert!(lexed.tokens.iter().any(|t| t.text == "2.5f32"));
    }

    #[test]
    fn positions_are_one_based() {
        let src = "ab\n  cd";
        let lexed = lex(src);
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["let s = \"abc", "let s = r#\"abc", "let c = 'x", "/* abc"] {
            let _ = lex(src);
        }
    }
}
