//! The rule engine and the five repo-specific rules.
//!
//! Every rule is a pure function over a [`FileCtx`] — the lexed token
//! stream plus derived structure (attribute spans, `#[cfg(test)]` regions,
//! per-line classification). Rules are scoped by workspace-relative path:
//! a determinism rule only fires in the determinism-bearing crates, the
//! protocol-totality rule only in the server's decode path, and so on.
//!
//! | rule  | contract it defends |
//! |-------|---------------------|
//! | FL001 | no `HashMap`/`HashSet` iteration in determinism-bearing crates |
//! | FL002 | every `unsafe` is immediately preceded by a `// SAFETY:` comment |
//! | FL003 | the server protocol decode path stays total (no panics) |
//! | FL004 | no bare narrowing `as` casts between integer types |
//! | FL005 | no wall-clock / environment reads outside allowed modules |
//! | FL000 | suppression comments themselves are well-formed and justified |
//!
//! Scoping decisions, shared by FL003/FL004/FL005: code under a `tests/`,
//! `benches/` or `examples/` directory and code inside `#[cfg(test)]` /
//! `#[test]` items is exempt (tests legitimately panic, cast literals and
//! measure time); vendored stand-ins under `vendor/` are exempt except
//! `vendor/memmap2`, which is first-party unsafe surface. FL002 applies
//! everywhere, tests included — a SAFETY obligation does not disappear in
//! test code.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`"FL001"` … `"FL005"`, or `"FL000"` for a malformed
    /// suppression).
    pub rule: &'static str,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Static description of one rule, for `--list-rules` and the docs.
pub struct RuleInfo {
    /// The rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// All rules this binary knows, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "FL000",
        summary: "a `forest-lint: allow(...)` comment is malformed, names an unknown rule, \
                  or lacks a justification",
    },
    RuleInfo {
        id: "FL001",
        summary: "HashMap/HashSet iteration in a determinism-bearing crate \
                  (forest-graph, forest-decomp, local-model)",
    },
    RuleInfo {
        id: "FL002",
        summary: "`unsafe` not immediately preceded by a `// SAFETY:` comment",
    },
    RuleInfo {
        id: "FL003",
        summary: "panicking construct (unwrap/expect/panic!/indexing) in the server \
                  protocol decode path",
    },
    RuleInfo {
        id: "FL004",
        summary: "bare narrowing `as` cast between integer types (use try_into or an \
                  audited helper)",
    },
    RuleInfo {
        id: "FL005",
        summary: "wall-clock or environment nondeterminism (SystemTime/Instant::now, \
                  env::var, RandomState::new) outside allowed modules",
    },
];

/// `true` if `id` names a rule this binary knows.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// A lexed file plus the derived structure the rules need.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel_path: &'a str,
    /// The lexed tokens and comments.
    pub lexed: &'a Lexed,
    /// Per-token: inside an attribute (`#[...]` / `#![...]`).
    in_attr: Vec<bool>,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` item.
    in_test: Vec<bool>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context for one file.
    pub fn new(rel_path: &'a str, lexed: &'a Lexed) -> Self {
        let in_attr = attribute_spans(&lexed.tokens);
        let in_test = test_regions(&lexed.tokens, &in_attr);
        FileCtx {
            rel_path,
            lexed,
            in_attr,
            in_test,
        }
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.tokens
    }

    /// `true` if token `i` is plain code: not attribute content, not inside
    /// a test region.
    fn is_live(&self, i: usize) -> bool {
        !self.in_attr.get(i).copied().unwrap_or(false)
            && !self.in_test.get(i).copied().unwrap_or(false)
    }

    /// `true` if token `i` is inside a test region.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    fn finding(&self, rule: &'static str, tok: &Tok, message: String) -> Finding {
        Finding {
            rule,
            path: self.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        }
    }
}

/// Marks tokens belonging to attributes: `#` (optionally `!`) then a
/// bracket-balanced `[...]`.
fn attribute_spans(toks: &[Tok]) -> Vec<bool> {
    let mut in_attr = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.is_punct('!')).unwrap_or(false) {
                j += 1;
            }
            if toks.get(j).map(|t| t.is_punct('[')).unwrap_or(false) {
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let end = k.min(toks.len().saturating_sub(1));
                for flag in in_attr.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    in_attr
}

/// Marks tokens inside items gated by `#[cfg(test)]` / `#[test]` (and any
/// `cfg` attribute mentioning `test` without a `not(...)`): the attribute
/// itself, any stacked attributes after it, and the item body up to its
/// matching close brace (or terminating semicolon).
fn test_regions(toks: &[Tok], in_attr: &[bool]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && in_attr.get(i).copied().unwrap_or(false)) {
            i += 1;
            continue;
        }
        // Slice out this attribute.
        let mut end = i;
        while end + 1 < toks.len() && in_attr[end + 1] {
            // Attribute spans are contiguous per attribute, but stacked
            // attributes are also contiguous; stop at the close bracket
            // that balances this attribute.
            end += 1;
            if toks[end].is_punct(']') {
                let depth = toks[i..=end]
                    .iter()
                    .filter(|t| t.is_punct('['))
                    .count()
                    .saturating_sub(toks[i..=end].iter().filter(|t| t.is_punct(']')).count());
                if depth == 0 {
                    break;
                }
            }
        }
        let idents: Vec<&str> = toks[i..=end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let gates_test = idents.contains(&"test")
            && !idents.contains(&"not")
            && (idents.first() == Some(&"cfg") || idents.first() == Some(&"test"));
        if !gates_test {
            i = end + 1;
            continue;
        }
        // Skip any further stacked attributes.
        let mut j = end + 1;
        while j < toks.len() && in_attr[j] {
            j += 1;
        }
        // Find the item body: the first `{` at zero paren/bracket depth, or
        // a `;` for body-less items (`#[cfg(test)] use …;`).
        let mut depth = 0isize;
        let mut body = None;
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                body = Some(k);
                break;
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            k += 1;
        }
        let region_end = match body {
            Some(open) => {
                let mut braces = 0isize;
                let mut m = open;
                while m < toks.len() {
                    if toks[m].is_punct('{') {
                        braces += 1;
                    } else if toks[m].is_punct('}') {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                m
            }
            None => k,
        };
        for flag in in_test.iter_mut().take(region_end + 1).skip(i) {
            *flag = true;
        }
        i = region_end + 1;
    }
    in_test
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

/// The determinism-bearing crates FL001 watches.
const FL001_SCOPE: &[&str] = &[
    "crates/graph/src/",
    "crates/forest-decomp/src/",
    "crates/local-model/src/",
];

/// The total-decode surface FL003 watches.
const FL003_SCOPE_PREFIX: &str = "crates/server/src/protocol";

fn in_test_dir(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

fn in_exempt_vendor(rel: &str) -> bool {
    rel.starts_with("vendor/") && !rel.starts_with("vendor/memmap2/")
}

fn fl001_applies(rel: &str) -> bool {
    FL001_SCOPE.iter().any(|p| rel.starts_with(p))
}

fn fl003_applies(rel: &str) -> bool {
    rel.starts_with(FL003_SCOPE_PREFIX)
}

fn fl004_applies(rel: &str) -> bool {
    !in_test_dir(rel) && !in_exempt_vendor(rel)
}

fn fl005_applies(rel: &str) -> bool {
    !in_test_dir(rel) && !in_exempt_vendor(rel)
}

// ---------------------------------------------------------------------------
// FL001: hash iteration in determinism-bearing crates
// ---------------------------------------------------------------------------

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Collects identifiers bound to `HashMap`/`HashSet` values in this file:
/// `let` bindings, struct fields and parameters whose declared type (or
/// initializer) mentions a hash type — including nested positions like
/// `Vec<HashSet<Color>>`.
fn hash_bound_names(ctx: &FileCtx) -> Vec<String> {
    let toks = ctx.toks();
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        if ctx.in_attr.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Walk backwards through type-ish tokens to the introducer: a `let`
        // (take the bound name), a `:` (field/param: name precedes it) or an
        // `=` (initializer: name precedes it, past any type annotation).
        let mut j = i;
        let mut name: Option<String> = None;
        while j > 0 {
            j -= 1;
            let p = &toks[j];
            let type_ish = match p.kind {
                TokKind::Ident => !p.is_ident("let"),
                TokKind::Lifetime => true,
                TokKind::Punct => matches!(
                    p.text.as_str(),
                    "<" | ">" | "," | "&" | "(" | ")" | "[" | "]"
                ),
                _ => false,
            };
            if p.is_ident("let") {
                // `let [mut] name … = HashMap::new()` — name follows.
                let mut k = j + 1;
                if toks.get(k).map(|t| t.is_ident("mut")).unwrap_or(false) {
                    k += 1;
                }
                if let Some(n) = toks.get(k).filter(|t| t.kind == TokKind::Ident) {
                    name = Some(n.text.clone());
                }
                break;
            }
            if p.is_punct(':') || p.is_punct('=') {
                // Skip a `::` path separator.
                if p.is_punct(':') && j > 0 && toks[j - 1].is_punct(':') {
                    j -= 1;
                    continue;
                }
                if p.is_punct(':') && toks.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false) {
                    continue;
                }
                // The bound name sits just before the `:` / `=`, past `mut`.
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    let c = &toks[k];
                    if c.is_ident("mut") || c.is_punct(':') {
                        continue;
                    }
                    if c.kind == TokKind::Ident {
                        name = Some(c.text.clone());
                    }
                    break;
                }
                break;
            }
            if !type_ish {
                break;
            }
        }
        if let Some(n) = name {
            if n != "mut" && !names.contains(&n) {
                names.push(n);
            }
        }
    }
    names
}

fn fl001(ctx: &FileCtx) -> Vec<Finding> {
    if !fl001_applies(ctx.rel_path) {
        return Vec::new();
    }
    let names = hash_bound_names(ctx);
    if names.is_empty() {
        return Vec::new();
    }
    let toks = ctx.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !ctx.is_live(i) {
            continue;
        }
        let t = &toks[i];
        // `name.iter()` and friends.
        if t.kind == TokKind::Ident && names.contains(&t.text) {
            if toks.get(i + 1).map(|n| n.is_punct('.')).unwrap_or(false) {
                if let Some(m) = toks.get(i + 2) {
                    if m.kind == TokKind::Ident
                        && ITER_METHODS.contains(&m.text.as_str())
                        && toks.get(i + 3).map(|n| n.is_punct('(')).unwrap_or(false)
                    {
                        out.push(ctx.finding(
                            "FL001",
                            m,
                            format!(
                                "`.{}()` iterates hash-ordered `{}`; iteration order is \
                                 nondeterministic — use BTreeMap/BTreeSet or a sorted Vec",
                                m.text, t.text
                            ),
                        ));
                    }
                }
            }
            // `for _ in &name {` / `for _ in name {`.
            if i >= 1 {
                let mut j = i;
                // Step over `&` / `mut` before the name.
                while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
                    j -= 1;
                }
                let preceded_by_in = j > 0 && toks[j - 1].is_ident("in");
                let followed_by_body = toks.get(i + 1).map(|n| n.is_punct('{')).unwrap_or(false);
                if preceded_by_in && followed_by_body {
                    out.push(ctx.finding(
                        "FL001",
                        t,
                        format!(
                            "`for _ in` over hash-ordered `{}`; iteration order is \
                             nondeterministic — use BTreeMap/BTreeSet or a sorted Vec",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// FL002: unsafe hygiene
// ---------------------------------------------------------------------------

/// Classification of one source line, for the upward walk from an
/// `unsafe` token: what may sit between the SAFETY comment and the unsafe
/// code (attributes, other comments) and what breaks the association
/// (blank lines, real code).
fn fl002(ctx: &FileCtx) -> Vec<Finding> {
    let toks = ctx.toks();
    // Lines that carry at least one non-attribute code token.
    let mut code_lines = std::collections::BTreeSet::new();
    // Lines fully covered by attribute tokens (and nothing else).
    let mut attr_lines = std::collections::BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_attr.get(i).copied().unwrap_or(false) {
            attr_lines.insert(t.line);
        } else {
            code_lines.insert(t.line);
        }
    }
    let comment_on = |line: usize| -> Option<&Comment> {
        ctx.lexed
            .comments
            .iter()
            .find(|c| c.line <= line && line <= c.end_line)
    };

    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") || ctx.in_attr.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Same-line block comment before the keyword counts.
        let same_line_ok = ctx
            .lexed
            .comments
            .iter()
            .any(|c| c.end_line == t.line && c.col < t.col && c.text.contains("SAFETY:"));
        let mut ok = same_line_ok;
        let mut l = t.line;
        while !ok && l > 1 {
            l -= 1;
            if let Some(c) = comment_on(l) {
                if c.text.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                // A non-SAFETY comment line: keep walking (doc comments may
                // sit between), unless the line also carries code.
                if code_lines.contains(&l) {
                    break;
                }
                continue;
            }
            if code_lines.contains(&l) {
                break;
            }
            if attr_lines.contains(&l) {
                continue;
            }
            // Blank line: the association is broken.
            break;
        }
        if !ok {
            out.push(
                ctx.finding(
                    "FL002",
                    t,
                    "`unsafe` without an immediately preceding `// SAFETY:` comment — state \
                 the invariant that makes this sound"
                        .to_string(),
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// FL003: totality of the protocol decode path
// ---------------------------------------------------------------------------

const PANICKING_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

fn fl003(ctx: &FileCtx) -> Vec<Finding> {
    if !fl003_applies(ctx.rel_path) {
        return Vec::new();
    }
    let toks = ctx.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !ctx.is_live(i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(…)`.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
        {
            out.push(ctx.finding(
                "FL003",
                t,
                format!(
                    "`.{}()` can panic; the protocol decode path must stay total — return \
                     a typed `WireError` instead",
                    t.text
                ),
            ));
        }
        // panic!-family macros.
        if t.kind == TokKind::Ident
            && PANICKING_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.is_punct('!')).unwrap_or(false)
        {
            out.push(ctx.finding(
                "FL003",
                t,
                format!(
                    "`{}!` panics; the protocol decode path must stay total — return a \
                     typed `WireError` instead",
                    t.text
                ),
            ));
        }
        // Slice/array indexing `expr[...]`: `[` directly after an
        // identifier, `)`, `]` or `?` is an index expression (attribute
        // brackets and `vec![…]` are excluded by construction: the
        // preceding token is `#`/`!` there).
        if t.is_punct('[') && i >= 1 {
            let p = &toks[i - 1];
            let indexes = (p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text))
                || p.is_punct(')')
                || p.is_punct(']')
                || p.is_punct('?');
            if indexes {
                out.push(
                    ctx.finding(
                        "FL003",
                        t,
                        "slice indexing can panic on decoded values; the protocol decode path \
                     must stay total — use `.get(..)` and return a typed `WireError`"
                            .to_string(),
                    ),
                );
            }
        }
    }
    out
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [a, b]`, `in [1, 2]`, `let [b] = …`, …).
fn is_keyword_before_bracket(text: &str) -> bool {
    matches!(
        text,
        "return"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "as"
            | "const"
            | "static"
            | "else"
            | "match"
            | "box"
            | "dyn"
    )
}

// ---------------------------------------------------------------------------
// FL004: lossy integer casts
// ---------------------------------------------------------------------------

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn fl004(ctx: &FileCtx) -> Vec<Finding> {
    if !fl004_applies(ctx.rel_path) {
        return Vec::new();
    }
    let toks = ctx.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !ctx.is_live(i) {
            continue;
        }
        let t = &toks[i];
        if !t.is_ident("as") {
            continue;
        }
        if let Some(target) = toks.get(i + 1) {
            if target.kind == TokKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
                out.push(ctx.finding(
                    "FL004",
                    target,
                    format!(
                        "bare `as {}` can silently truncate (the PR 6 server decoder bug \
                         was `u64 as u32`); use `try_into`/`try_from` or an audited \
                         helper (`u32_of`, `VertexId::raw`, `Dec::id`)",
                        target.text
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// FL005: wall-clock / environment nondeterminism
// ---------------------------------------------------------------------------

/// `(head, method)` pairs flagged as nondeterministic reads.
const NONDET_CALLS: &[(&str, &str)] = &[
    ("SystemTime", "now"),
    ("Instant", "now"),
    ("env", "var"),
    ("env", "var_os"),
    ("env", "vars"),
    ("env", "vars_os"),
    ("RandomState", "new"),
];

fn fl005(ctx: &FileCtx) -> Vec<Finding> {
    if !fl005_applies(ctx.rel_path) {
        return Vec::new();
    }
    let toks = ctx.toks();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !ctx.is_live(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // head :: method
        let is_path = toks.get(i + 1).map(|n| n.is_punct(':')).unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_punct(':')).unwrap_or(false);
        if !is_path {
            continue;
        }
        if let Some(m) = toks.get(i + 3) {
            if m.kind == TokKind::Ident {
                for &(head, method) in NONDET_CALLS {
                    if t.text == head && m.text == method {
                        out.push(ctx.finding(
                            "FL005",
                            t,
                            format!(
                                "`{head}::{method}` is nondeterministic (wall clock / \
                                 process environment); determinism-bearing code must not \
                                 read it — allowed only in the timing/ledger/bench \
                                 modules listed in lint.toml",
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Inline suppression
// ---------------------------------------------------------------------------

/// One parsed inline suppression: `// forest-lint: allow(FL004) <reason>`
/// (one or more comma-separated rule ids inside the parentheses).
#[derive(Debug)]
pub struct InlineAllow {
    /// The rules this comment suppresses.
    pub rules: Vec<String>,
    /// First line the suppression covers (the comment's own line).
    pub line: usize,
    /// Last line the suppression covers (the line after the comment ends).
    pub end_line: usize,
}

/// Extracts inline allows; malformed directives become FL000 findings.
pub fn inline_allows(ctx: &FileCtx) -> (Vec<InlineAllow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &ctx.lexed.comments {
        let Some(at) = c.text.find("forest-lint:") else {
            continue;
        };
        let mut fail = |message: String| {
            bad.push(Finding {
                rule: "FL000",
                path: ctx.rel_path.to_string(),
                line: c.line,
                col: c.col,
                message,
            });
        };
        let rest = c.text[at + "forest-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            fail(
                "malformed suppression: expected `forest-lint: allow(FL00x) <reason>`".to_string(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("malformed suppression: missing `)` after the rule list".to_string());
            continue;
        };
        let ids: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = rest[close + 1..].trim();
        if ids.is_empty() {
            fail("suppression allows no rules".to_string());
            continue;
        }
        if let Some(unknown) = ids.iter().find(|id| !is_known_rule(id)) {
            fail(format!("suppression names unknown rule `{unknown}`"));
            continue;
        }
        if reason.is_empty() {
            fail(format!(
                "suppression of {} lacks a justification — write \
                 `forest-lint: allow({}) <why this is sound>`",
                ids.join(","),
                ids.join(",")
            ));
            continue;
        }
        allows.push(InlineAllow {
            rules: ids,
            line: c.line,
            end_line: c.end_line + 1,
        });
    }
    (allows, bad)
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs every rule over one file and applies inline suppressions.
///
/// The checked-in `lint.toml` allowlist is applied by the caller (see
/// `lint_source` in the crate root), so this function is the "raw"
/// diagnostic surface used by the allowlist-liveness test.
pub fn check_file(rel_path: &str, lexed: &Lexed) -> Vec<Finding> {
    let ctx = FileCtx::new(rel_path, lexed);
    let (allows, mut findings) = inline_allows(&ctx);
    for rule in [fl001, fl002, fl003, fl004, fl005] {
        findings.extend(rule(&ctx));
    }
    findings.retain(|f| {
        !allows.iter().any(|a| {
            a.rules.iter().any(|r| r == f.rule) && a.line <= f.line && f.line <= a.end_line
        })
    });
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}
