//! The checked-in allowlist: `lint.toml` at the workspace root.
//!
//! Suppression must be explicit and auditable, so the file format is
//! deliberately rigid — a sequence of `[[allow]]` entries, each carrying a
//! rule id, a path (exact, or a `/**` subtree glob), and a **non-empty**
//! justification:
//!
//! ```toml
//! [[allow]]
//! rule = "FL004"
//! path = "crates/graph/src/kernels.rs"
//! reason = "audited hot-loop kernels; indices bounded by the input length"
//! ```
//!
//! The parser is a hand-rolled subset of TOML (no external deps): exactly
//! the `[[allow]]` table-array with string values. Unknown keys, missing
//! fields, unknown rule ids and empty reasons are *errors*, not warnings —
//! a malformed allowlist must never silently widen what it allows.

use crate::rules;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule this entry suppresses (e.g. `"FL004"`).
    pub rule: String,
    /// Workspace-relative path: an exact file, or `dir/**` for a subtree.
    pub path: String,
    /// Mandatory human justification.
    pub reason: String,
}

impl AllowEntry {
    /// `true` if this entry covers `rel_path` (forward-slash relative path).
    pub fn matches_path(&self, rel_path: &str) -> bool {
        match self.path.strip_suffix("/**") {
            Some(prefix) => {
                rel_path.starts_with(prefix) && rel_path[prefix.len()..].starts_with('/')
            }
            None => self.path == rel_path,
        }
    }
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// All entries, in file order.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// An empty config (nothing allowed).
    pub fn empty() -> Self {
        Config::default()
    }

    /// `true` if `rule` is allowlisted for `rel_path`.
    pub fn allows(&self, rule: &str, rel_path: &str) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.matches_path(rel_path))
    }

    /// Parses the `lint.toml` subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a `line: message` string on any structural problem: unknown
    /// keys, values that are not quoted strings, entries with missing
    /// fields, unknown rule ids, or empty reasons.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // (rule, path, reason) of the entry being built, plus its header line.
        let mut current: Option<(usize, [Option<String>; 3])> = None;

        fn finish(
            cfg: &mut Config,
            current: &mut Option<(usize, [Option<String>; 3])>,
        ) -> Result<(), String> {
            if let Some((header_line, fields)) = current.take() {
                let [rule, path, reason] = fields;
                let missing =
                    |what: &str| format!("{header_line}: [[allow]] entry is missing `{what}`");
                let rule = rule.ok_or_else(|| missing("rule"))?;
                let path = path.ok_or_else(|| missing("path"))?;
                let reason = reason.ok_or_else(|| missing("reason"))?;
                if !rules::is_known_rule(&rule) {
                    return Err(format!("{header_line}: unknown rule id `{rule}`"));
                }
                if reason.trim().is_empty() {
                    return Err(format!(
                        "{header_line}: entry for {rule} on `{path}` has an empty reason — \
                         every allowlist entry must be justified"
                    ));
                }
                cfg.allows.push(AllowEntry { rule, path, reason });
            }
            Ok(())
        }

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut cfg, &mut current)?;
                current = Some((lineno, [None, None, None]));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("{lineno}: unknown table `{line}` (only [[allow]])"));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("{lineno}: expected `key = \"value\"`"))?;
            let key = key.trim();
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("{lineno}: value for `{key}` must be a quoted string"))?;
            let (_, fields) = current
                .as_mut()
                .ok_or_else(|| format!("{lineno}: `{key}` outside an [[allow]] entry"))?;
            let slot = match key {
                "rule" => &mut fields[0],
                "path" => &mut fields[1],
                "reason" => &mut fields[2],
                other => {
                    return Err(format!(
                        "{lineno}: unknown key `{other}` (expected rule/path/reason)"
                    ))
                }
            };
            if slot.is_some() {
                return Err(format!("{lineno}: duplicate key `{key}`"));
            }
            *slot = Some(value.to_string());
        }
        finish(&mut cfg, &mut current)?;
        Ok(cfg)
    }

    /// Renders the config back to the `lint.toml` syntax [`Config::parse`]
    /// accepts (the round-trip is tested).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        for a in &self.allows {
            out.push_str("[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", a.rule));
            out.push_str(&format!("path = \"{}\"\n", a.path));
            out.push_str(&format!("reason = \"{}\"\n\n", a.reason));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[allow]]
rule = "FL005"
path = "crates/bench/**"
reason = "bench harness measures wall-clock by design"

[[allow]]
rule = "FL004"
path = "crates/graph/src/kernels.rs"
reason = "audited kernels"
"#;

    #[test]
    fn parses_and_matches() {
        let cfg = Config::parse(GOOD).unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert!(cfg.allows("FL005", "crates/bench/src/lib.rs"));
        assert!(cfg.allows("FL005", "crates/bench/src/bin/bench_snapshot.rs"));
        assert!(!cfg.allows("FL004", "crates/bench/src/lib.rs"));
        assert!(cfg.allows("FL004", "crates/graph/src/kernels.rs"));
        assert!(!cfg.allows("FL004", "crates/graph/src/kernels_extra.rs"));
        // A subtree glob does not match its own prefix as a sibling file.
        assert!(!cfg.allows("FL005", "crates/benchmark.rs"));
    }

    #[test]
    fn round_trips() {
        let cfg = Config::parse(GOOD).unwrap();
        let reparsed = Config::parse(&cfg.to_toml()).unwrap();
        assert_eq!(cfg, reparsed);
    }

    #[test]
    fn empty_reason_is_rejected() {
        let bad = "[[allow]]\nrule = \"FL001\"\npath = \"x.rs\"\nreason = \"  \"\n";
        let err = Config::parse(bad).unwrap_err();
        assert!(err.contains("empty reason"), "{err}");
    }

    #[test]
    fn missing_field_is_rejected() {
        let bad = "[[allow]]\nrule = \"FL001\"\nreason = \"r\"\n";
        let err = Config::parse(bad).unwrap_err();
        assert!(err.contains("missing `path`"), "{err}");
    }

    #[test]
    fn unknown_rule_and_key_are_rejected() {
        let bad = "[[allow]]\nrule = \"FL999\"\npath = \"x.rs\"\nreason = \"r\"\n";
        assert!(Config::parse(bad).unwrap_err().contains("unknown rule id"));
        let bad = "[[allow]]\nrule = \"FL001\"\npath = \"x.rs\"\nwhy = \"r\"\n";
        assert!(Config::parse(bad).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn unquoted_value_and_stray_key_are_rejected() {
        let bad = "[[allow]]\nrule = FL001\n";
        assert!(Config::parse(bad).unwrap_err().contains("quoted string"));
        let bad = "rule = \"FL001\"\n";
        assert!(Config::parse(bad).unwrap_err().contains("outside"));
    }
}
