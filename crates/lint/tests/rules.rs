//! Fixture-based positive/negative tests for every rule, including the
//! historical bug shapes the rules exist to catch and the lexing traps
//! (keywords in strings, hash types in comments, raw strings) that a
//! naive grep-based linter would trip on.

use forest_lint::{lint_source, Config};

/// Findings for `src` pretending it lives at `path`, with no allowlist.
fn findings(path: &str, src: &str) -> Vec<String> {
    lint_source(path, src, &Config::empty())
        .into_iter()
        .map(|f| format!("{}:{}", f.rule, f.line))
        .collect()
}

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src, &Config::empty())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// --- FL001: hash iteration in determinism-bearing crates -------------------

/// The PR 2 bug shape: iterating a HashMap/HashSet in forest-decomp made
/// RNG consumption order (and hence colorings) differ across processes.
#[test]
fn fl001_for_loop_over_hash_map_in_decomp() {
    let src = "
        use std::collections::HashMap;
        fn f() {
            let mut m: HashMap<u32, u32> = HashMap::new();
            m.insert(1, 2);
            for _ in &m {
                work();
            }
        }
    ";
    assert_eq!(rules_hit("crates/forest-decomp/src/cut.rs", src), ["FL001"]);
}

#[test]
fn fl001_iter_methods_on_hash_set() {
    for method in ["iter", "keys", "values", "drain"] {
        let src = format!(
            "
            use std::collections::HashMap;
            fn f() {{
                let mut targets = HashMap::new();
                targets.insert(1u32, 2u32);
                let v: Vec<_> = targets.{method}().collect();
            }}
            "
        );
        assert_eq!(
            rules_hit("crates/graph/src/generators.rs", &src),
            ["FL001"],
            "method {method}"
        );
    }
}

#[test]
fn fl001_membership_checks_are_fine() {
    let src = "
        use std::collections::HashSet;
        fn f() {
            let mut present = HashSet::new();
            present.insert((1u32, 2u32));
            if present.contains(&(1, 2)) {
                work();
            }
            present.remove(&(1, 2));
        }
    ";
    assert!(rules_hit("crates/graph/src/simple.rs", src).is_empty());
}

#[test]
fn fl001_out_of_scope_crates_are_exempt() {
    let src = "
        fn f() {
            let m = std::collections::HashMap::<u32, u32>::new();
            for _ in &m {
                work();
            }
        }
    ";
    assert!(rules_hit("crates/server/src/main.rs", src).is_empty());
    assert!(rules_hit("crates/lint/src/rules.rs", src).is_empty());
}

#[test]
fn fl001_hash_map_in_comment_or_string_is_prose() {
    let src = r#"
        // A HashMap here would be wrong: for _ in &map is nondeterministic.
        fn f() {
            let s = "HashMap iteration: for x in map.iter()";
            use_it(s);
        }
    "#;
    assert!(rules_hit("crates/forest-decomp/src/cut.rs", src).is_empty());
}

#[test]
fn fl001_btree_iteration_is_fine() {
    let src = "
        use std::collections::BTreeMap;
        fn f() {
            let mut m: BTreeMap<u32, u32> = BTreeMap::new();
            m.insert(1, 2);
            for _ in &m {
                work();
            }
            let v: Vec<_> = m.keys().collect();
        }
    ";
    assert!(rules_hit("crates/forest-decomp/src/cut.rs", src).is_empty());
}

// --- FL002: unsafe hygiene -------------------------------------------------

#[test]
fn fl002_unsafe_without_safety_comment() {
    let src = "
        fn f(p: *const u8) -> u8 {
            unsafe { *p }
        }
    ";
    assert_eq!(rules_hit("crates/graph/src/mmap.rs", src), ["FL002"]);
}

#[test]
fn fl002_safety_comment_directly_above() {
    let src = "
        fn f(p: *const u8) -> u8 {
            // SAFETY: caller guarantees `p` is valid for reads.
            unsafe { *p }
        }
    ";
    assert!(rules_hit("crates/graph/src/mmap.rs", src).is_empty());
}

#[test]
fn fl002_attribute_between_comment_and_unsafe_is_ok() {
    let src = "
        // SAFETY: the region is immutable for the value's lifetime.
        #[cfg(unix)]
        unsafe impl Sync for Mmap {}
    ";
    assert!(rules_hit("vendor/memmap2/src/lib.rs", src).is_empty());
}

#[test]
fn fl002_blank_line_breaks_the_association() {
    let src = "
        // SAFETY: stale justification for something else.

        fn f(p: *const u8) -> u8 {
            unsafe { *p }
        }
    ";
    assert_eq!(rules_hit("crates/graph/src/mmap.rs", src), ["FL002"]);
}

#[test]
fn fl002_applies_in_tests_and_unsafe_in_string_is_data() {
    let with_real_unsafe = "
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                unsafe { poke() }
            }
        }
    ";
    assert_eq!(
        rules_hit("crates/graph/src/mmap.rs", with_real_unsafe),
        ["FL002"]
    );
    let with_string = r##"
        fn f() {
            let s = "unsafe { *p }";
            let r = r#"unsafe"#;
            use_them(s, r);
        }
    "##;
    assert!(rules_hit("crates/graph/src/mmap.rs", with_string).is_empty());
}

// --- FL003: protocol decode totality ---------------------------------------

/// The PR 6 decoder originally indexed and unwrapped; a truncated frame
/// from a misbehaving client could kill the server.
#[test]
fn fl003_unwrap_and_indexing_in_decode_path() {
    let src = "
        fn decode(buf: &[u8]) -> u32 {
            let b = buf[0];
            let v = u32::from_le_bytes(buf[1..5].try_into().unwrap());
            v + u32::from(b)
        }
    ";
    let hits = rules_hit("crates/server/src/protocol.rs", src);
    assert_eq!(hits, ["FL003", "FL003", "FL003"], "two indexings + unwrap");
}

#[test]
fn fl003_panic_macros_and_expect() {
    let src = r#"
        fn decode(v: u64) -> u8 {
            if v > 255 {
                panic!("bad");
            }
            u8::try_from(v).expect("checked")
        }
    "#;
    let hits = rules_hit("crates/server/src/protocol.rs", src);
    assert_eq!(hits, ["FL003", "FL003"]);
}

#[test]
fn fl003_total_style_is_clean_and_scope_is_narrow() {
    let total = "
        fn decode(buf: &[u8]) -> Result<u8, Err> {
            let [b] = take(buf)?;
            buf.get(1..5).ok_or(Err::Truncated)?;
            Ok(b)
        }
    ";
    assert!(rules_hit("crates/server/src/protocol.rs", total).is_empty());
    // The same panicky code outside the decode path is not FL003's business.
    let panicky = "fn f(xs: &[u8]) -> u8 { xs[0] }";
    assert!(rules_hit("crates/server/src/main.rs", panicky).is_empty());
    // Tests inside the protocol module may panic.
    let test_code = "
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                assert_eq!(decode(&[1]).unwrap(), 1);
            }
        }
    ";
    assert!(rules_hit("crates/server/src/protocol.rs", test_code).is_empty());
}

// --- FL004: lossy integer casts --------------------------------------------

/// The PR 6 bug shape: a `u64` wire value narrowed with `as u32` silently
/// truncated out-of-range edge ids instead of rejecting the frame.
#[test]
fn fl004_bare_narrowing_cast_in_decoder() {
    let src = "
        fn id(v: u64) -> u32 {
            v as u32
        }
    ";
    assert_eq!(rules_hit("crates/server/src/protocol.rs", src), ["FL004"]);
}

#[test]
fn fl004_widening_and_lossless_paths_are_fine() {
    let src = "
        fn f(x: u32, n: usize) -> u64 {
            let wide = x as u64;
            let idx = x as usize;
            let narrow = u32::try_from(n).unwrap_or(0);
            wide + idx as u64 + u64::from(narrow)
        }
    ";
    assert!(rules_hit("crates/graph/src/csr.rs", src).is_empty());
}

#[test]
fn fl004_inline_allow_with_reason_suppresses() {
    let allowed = "
        fn wire(self) -> u8 {
            // forest-lint: allow(FL004) discriminants are declared in u8 range
            self as u8
        }
    ";
    assert!(rules_hit("crates/server/src/protocol.rs", allowed).is_empty());
}

// --- FL005: wall-clock / environment reads ---------------------------------

#[test]
fn fl005_clock_and_env_reads() {
    let src = "
        fn f() -> u64 {
            let t = std::time::Instant::now();
            let s = SystemTime::now();
            let v = std::env::var(\"SEED\");
            let h = RandomState::new();
            combine(t, s, v, h)
        }
    ";
    let hits = rules_hit("crates/graph/src/extsort.rs", src);
    assert_eq!(hits, ["FL005", "FL005", "FL005", "FL005"]);
}

#[test]
fn fl005_tests_and_non_calls_are_fine() {
    let test_code = "
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                let t = std::time::Instant::now();
                use_it(t);
            }
        }
    ";
    assert!(rules_hit("crates/graph/src/extsort.rs", test_code).is_empty());
    // Mentioning the types without calling the nondeterministic constructors
    // is fine.
    let benign = "fn f(t: std::time::Instant) -> Instant { t }";
    assert!(rules_hit("crates/graph/src/extsort.rs", benign).is_empty());
}

// --- Suppression machinery -------------------------------------------------

#[test]
fn fl000_malformed_and_reasonless_directives_are_findings() {
    // Missing reason.
    let no_reason = "
        fn id(v: u64) -> u32 {
            // forest-lint: allow(FL004)
            v as u32
        }
    ";
    let hits = rules_hit("crates/server/src/protocol.rs", no_reason);
    assert!(hits.contains(&"FL000"), "{hits:?}");
    // A reason-less allow must NOT suppress the underlying finding.
    assert!(hits.contains(&"FL004"), "{hits:?}");

    // Unknown rule id.
    let unknown = "
        fn f() {
            // forest-lint: allow(FL999) because reasons
            work();
        }
    ";
    assert_eq!(rules_hit("crates/graph/src/csr.rs", unknown), ["FL000"]);

    // Not the allow(...) form at all.
    let mangled = "
        fn f() {
            // forest-lint: disable everything
            work();
        }
    ";
    assert_eq!(rules_hit("crates/graph/src/csr.rs", mangled), ["FL000"]);
}

#[test]
fn inline_allow_only_covers_adjacent_lines() {
    let src = "
        fn f(v: u64) -> u32 {
            // forest-lint: allow(FL004) audited here
            let a = v as u32;
            let b = v as u32;
            a + b
        }
    ";
    let hits = findings("crates/graph/src/csr.rs", src);
    assert_eq!(hits, ["FL004:5"], "only the non-adjacent cast fires");
}

#[test]
fn allowlist_suppresses_by_path() {
    let cfg = Config::parse(
        "[[allow]]\nrule = \"FL004\"\npath = \"crates/graph/src/kernels.rs\"\nreason = \"audited\"\n",
    )
    .unwrap();
    let src = "fn f(n: usize) -> u32 { n as u32 }";
    assert!(lint_source("crates/graph/src/kernels.rs", src, &cfg).is_empty());
    assert_eq!(
        lint_source("crates/graph/src/csr.rs", src, &cfg).len(),
        1,
        "other files unaffected"
    );
}

// --- Cross-cutting scoping -------------------------------------------------

#[test]
fn vendor_except_memmap2_and_test_dirs_are_exempt() {
    let cast = "fn f(v: u64) -> u32 { v as u32 }";
    assert!(rules_hit("vendor/rand/src/lib.rs", cast).is_empty());
    assert_eq!(rules_hit("vendor/memmap2/src/lib.rs", cast), ["FL004"]);
    assert!(rules_hit("tests/decomposition.rs", cast).is_empty());
    assert!(rules_hit("crates/graph/benches/scan.rs", cast).is_empty());
}

#[test]
fn findings_carry_positions_and_render_rustc_style() {
    let src = "fn f(v: u64) -> u32 {\n    v as u32\n}\n";
    let fs = lint_source("crates/graph/src/csr.rs", src, &Config::empty());
    assert_eq!(fs.len(), 1);
    let rendered = fs[0].to_string();
    assert!(
        rendered.starts_with("crates/graph/src/csr.rs:2:10: error[FL004]:"),
        "{rendered}"
    );
}
