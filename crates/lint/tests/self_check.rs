//! The lint's own gate: the checked-in workspace must be clean, and the
//! checked-in allowlist must be both valid and *live* (every entry still
//! suppresses at least one real finding — stale allows rot into blanket
//! permissions).

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = forest_lint::run_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — scan roots look wrong",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "forest-lint findings in the checked-in workspace:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn checked_in_allowlist_parses_and_round_trips() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let cfg = forest_lint::Config::parse(&text).expect("lint.toml is valid");
    assert!(!cfg.allows.is_empty());
    let reparsed = forest_lint::Config::parse(&cfg.to_toml()).expect("round-trip");
    assert_eq!(cfg, reparsed);
}

#[test]
fn every_allowlist_entry_is_live() {
    let root = workspace_root();
    let cfg = forest_lint::load_config(&root).expect("lint.toml loads");
    let files = forest_lint::workspace_files(&root).expect("walk");
    // Raw findings (inline allows applied, file allowlist NOT applied).
    let mut raw = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel)).expect("read source");
        raw.extend(forest_lint::lint_source_unfiltered(rel, &src));
    }
    for entry in &cfg.allows {
        let hits = raw
            .iter()
            .filter(|f| f.rule == entry.rule && entry.matches_path(&f.path))
            .count();
        assert!(
            hits > 0,
            "stale allowlist entry: {} on `{}` suppresses nothing — delete it",
            entry.rule,
            entry.path
        );
    }
}

/// Re-introducing the historical bug shapes must fail the lint: hash
/// iteration in forest-decomp (the PR 2 nondeterministic-coloring bug) and
/// a bare `u64 as u32` in the server decoder (the PR 6 truncation bug) —
/// checked against the *real* checked-in `lint.toml`, proving the allowlist
/// does not accidentally cover these paths.
#[test]
fn historical_bug_shapes_still_fail_under_real_config() {
    let root = workspace_root();
    let cfg = forest_lint::load_config(&root).expect("lint.toml loads");

    let hash_iteration = "
        fn order_cut(map: &mut std::collections::HashMap<u32, u32>) {
            let mut map2 = std::collections::HashMap::new();
            map2.insert(1u32, 2u32);
            for _ in &map2 {
                recolor();
            }
        }
    ";
    let hits = forest_lint::lint_source("crates/forest-decomp/src/cut.rs", hash_iteration, &cfg);
    assert!(
        hits.iter().any(|f| f.rule == "FL001"),
        "hash iteration in forest-decomp must fail the lint"
    );

    let truncating_decode = "
        fn id(&mut self) -> DecResult<usize> {
            let v = self.u64()?;
            Ok(v as u32 as usize)
        }
    ";
    let hits = forest_lint::lint_source("crates/server/src/protocol.rs", truncating_decode, &cfg);
    assert!(
        hits.iter().any(|f| f.rule == "FL004"),
        "bare u64->u32 narrowing in the decoder must fail the lint"
    );
}
