//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a regeneration binary under
//! `src/bin/` (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for the paper-vs-measured comparison). This library holds the common
//! pieces: workload construction, measurement records and plain-text table
//! rendering.

#![forbid(unsafe_code)]

use forest_graph::{generators, MultiGraph, SimpleGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named benchmark workload with its planted/exact arboricity bound.
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// The graph.
    pub graph: MultiGraph,
    /// An upper bound on the arboricity used to parameterize the algorithms
    /// (exact for the planted/fat-path families).
    pub alpha_bound: usize,
}

/// Standard multigraph workload suite used by the table benchmarks.
pub fn multigraph_suite(seed: u64) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut suite = Vec::new();
    for &(n, k) in &[(128usize, 3usize), (256, 4), (256, 8)] {
        suite.push(Workload {
            name: format!("planted n={n} alpha<={k}"),
            graph: generators::planted_forest_union(n, k, &mut rng),
            alpha_bound: k,
        });
    }
    suite.push(Workload {
        name: "fat-path len=200 mult=4".to_string(),
        graph: generators::fat_path(200, 4),
        alpha_bound: 4,
    });
    suite.push(Workload {
        name: "grid 16x16".to_string(),
        graph: generators::grid(16, 16),
        alpha_bound: 2,
    });
    suite
}

/// Standard simple-graph workload suite (star-forest experiments need simple
/// graphs).
pub fn simple_suite(seed: u64) -> Vec<(String, SimpleGraph, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut suite = Vec::new();
    for &(n, k) in &[(128usize, 4usize), (256, 6), (256, 10)] {
        suite.push((
            format!("planted-simple n={n} alpha<={k}"),
            generators::planted_simple_arboricity(n, k, &mut rng),
            k,
        ));
    }
    suite.push((
        "complete K24".to_string(),
        SimpleGraph::try_from_multigraph(generators::complete_graph(24)).expect("simple"),
        12,
    ));
    suite
}

/// A plain-text table writer with aligned columns.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (for downstream plotting).
    pub fn render_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with two decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty_and_consistent() {
        let suite = multigraph_suite(1);
        assert!(suite.len() >= 4);
        for w in &suite {
            assert!(w.graph.num_edges() > 0);
            assert!(w.alpha_bound >= 1);
            assert!(forest_graph::matroid::arboricity(&w.graph) <= w.alpha_bound);
        }
        let simple = simple_suite(1);
        assert!(simple.len() >= 3);
        for (_, g, bound) in &simple {
            assert!(g.graph().is_simple());
            assert!(forest_graph::matroid::arboricity(g.graph()) <= *bound);
        }
    }

    #[test]
    fn text_table_renders_aligned_rows() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(vec!["1".to_string(), "2".to_string()]);
        t.row(vec!["300".to_string(), "4".to_string()]);
        let text = t.render();
        assert!(text.contains("long-header"));
        assert_eq!(text.lines().count(), 4);
        let csv = t.render_csv();
        assert!(csv.starts_with("a,long-header"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["1".to_string()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(2.5), "2.50");
    }
}
