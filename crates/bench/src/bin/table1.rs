//! Regenerates Table 1 of the paper: the trade-off matrix between excess
//! colors, list support, measured LOCAL rounds and forest diameter for the
//! `(1+eps)alpha`-FD / LFD algorithms, next to the Barenboim-Elkin baseline —
//! every row produced by the same `Decomposer` request shape.

use bench::{multigraph_suite, TextTable};
use forest_decomp::api::{
    Decomposer, DecompositionRequest, Engine, FrozenGraph, PaletteSpec, ProblemKind,
};
use forest_decomp::DiameterTarget;
use forest_graph::{matroid, orientation};

fn main() {
    let epsilon = 0.5;
    let mut table = TextTable::new(&[
        "workload",
        "algorithm",
        "lists",
        "alpha",
        "colors",
        "excess",
        "rounds",
        "diameter",
    ]);
    for workload in multigraph_suite(42) {
        let g = &workload.graph;
        // Freeze once per workload: all four rows below run through the
        // facade's `GraphInput` frozen path, sharing one CSR conversion.
        let frozen = FrozenGraph::freeze(g.clone());
        let alpha = matroid::arboricity(g);
        let alpha_star = orientation::pseudoarboricity(g);
        let mut row = |label: &str, lists: &str, report: &forest_decomp::DecompositionReport| {
            table.row(vec![
                workload.name.clone(),
                label.into(),
                lists.into(),
                alpha.to_string(),
                report.num_colors.to_string(),
                format!("{:+}", report.num_colors as i64 - alpha as i64),
                report.ledger.total_rounds().to_string(),
                report.max_diameter.to_string(),
            ]);
        };

        // Baseline: Barenboim-Elkin (2+eps)alpha*-FD.
        let baseline = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::BarenboimElkin)
                .with_epsilon(epsilon)
                .with_alpha(alpha_star)
                .with_seed(7),
        )
        .run(&frozen)
        .unwrap();
        row("BE10 (2+eps)a*-FD", "no", &baseline);

        // Theorem 4.6: (1+eps)alpha-FD (unbounded diameter row of Table 1).
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_epsilon(epsilon)
            .with_alpha(workload.alpha_bound)
            .with_seed(7);
        let fd = Decomposer::new(request.clone()).run(&frozen).unwrap();
        row("Thm 4.6 (1+eps)a-FD", "no", &fd);

        // Theorem 4.6 + Corollary 2.5: bounded diameter O(1/eps).
        let fd = Decomposer::new(
            request
                .clone()
                .with_diameter_target(DiameterTarget::OneOverEpsilon),
        )
        .run(&frozen)
        .unwrap();
        row("Thm 4.6 + diam O(1/eps)", "no", &fd);

        // Theorem 4.10: list version with palettes of size 2(alpha+1).
        let lfd = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListForest)
                .with_epsilon(epsilon)
                .with_alpha(alpha)
                .with_palettes(PaletteSpec::Uniform {
                    colors: 2 * (alpha + 1),
                })
                .with_seed(7),
        )
        .run(&frozen)
        .unwrap();
        row("Thm 4.10 (1+eps)a-LFD", "yes", &lfd);
    }
    println!("Table 1 (measured): (1+eps)alpha forest decomposition trade-offs, eps = {epsilon}");
    println!("{}", table.render());
    println!("CSV:\n{}", table.render_csv());
}
