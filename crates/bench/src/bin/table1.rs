//! Regenerates Table 1 of the paper: the trade-off matrix between excess
//! colors, list support, measured LOCAL rounds and forest diameter for the
//! `(1+eps)alpha`-FD / LFD algorithms, next to the Barenboim-Elkin baseline.

use bench::{multigraph_suite, TextTable};
use forest_decomp::combine::{forest_decomposition, list_forest_decomposition, FdOptions};
use forest_decomp::baselines::barenboim_elkin_forest_decomposition;
use forest_decomp::DiameterTarget;
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::{matroid, orientation, ListAssignment};
use local_model::RoundLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 0.5;
    let mut table = TextTable::new(&[
        "workload", "algorithm", "lists", "alpha", "colors", "excess", "rounds", "diameter",
    ]);
    for workload in multigraph_suite(42) {
        let g = &workload.graph;
        let alpha = matroid::arboricity(g);
        let alpha_star = orientation::pseudoarboricity(g);
        let mut rng = StdRng::seed_from_u64(7);

        // Baseline: Barenboim-Elkin (2+eps)alpha*-FD.
        let mut ledger = RoundLedger::new();
        let baseline =
            barenboim_elkin_forest_decomposition(g, epsilon, alpha_star, &mut ledger).unwrap();
        let diam = max_forest_diameter(g, &baseline.decomposition.to_partial());
        table.row(vec![
            workload.name.clone(),
            "BE10 (2+eps)a*-FD".into(),
            "no".into(),
            alpha.to_string(),
            baseline.decomposition.num_colors_used().to_string(),
            format!("{:+}", baseline.decomposition.num_colors_used() as i64 - alpha as i64),
            baseline.rounds.to_string(),
            diam.to_string(),
        ]);

        // Theorem 4.6: (1+eps)alpha-FD (unbounded diameter row of Table 1).
        let options = FdOptions::new(epsilon).with_alpha(workload.alpha_bound);
        let fd = forest_decomposition(g, &options, &mut rng).unwrap();
        table.row(vec![
            workload.name.clone(),
            "Thm 4.6 (1+eps)a-FD".into(),
            "no".into(),
            alpha.to_string(),
            fd.num_colors.to_string(),
            format!("{:+}", fd.num_colors as i64 - alpha as i64),
            fd.ledger.total_rounds().to_string(),
            fd.max_diameter.to_string(),
        ]);

        // Theorem 4.6 + Corollary 2.5: bounded diameter O(1/eps).
        let options = FdOptions::new(epsilon)
            .with_alpha(workload.alpha_bound)
            .with_diameter_target(DiameterTarget::OneOverEpsilon);
        let fd = forest_decomposition(g, &options, &mut rng).unwrap();
        table.row(vec![
            workload.name.clone(),
            "Thm 4.6 + diam O(1/eps)".into(),
            "no".into(),
            alpha.to_string(),
            fd.num_colors.to_string(),
            format!("{:+}", fd.num_colors as i64 - alpha as i64),
            fd.ledger.total_rounds().to_string(),
            fd.max_diameter.to_string(),
        ]);

        // Theorem 4.10: list version with palettes of size 2(alpha+1).
        let lists = ListAssignment::uniform(g.num_edges(), 2 * (alpha + 1));
        let options = FdOptions::new(epsilon).with_alpha(alpha);
        let lfd = list_forest_decomposition(g, &lists, &options, &mut rng).unwrap();
        table.row(vec![
            workload.name.clone(),
            "Thm 4.10 (1+eps)a-LFD".into(),
            "yes".into(),
            alpha.to_string(),
            lfd.num_colors.to_string(),
            format!("{:+}", lfd.num_colors as i64 - alpha as i64),
            lfd.ledger.total_rounds().to_string(),
            lfd.max_diameter.to_string(),
        ]);
    }
    println!("Table 1 (measured): (1+eps)alpha forest decomposition trade-offs, eps = {epsilon}");
    println!("{}", table.render());
    println!("CSV:\n{}", table.render_csv());
}
