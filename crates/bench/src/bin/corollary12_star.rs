//! Regenerates Corollary 1.2: star-arboricity bounds. For simple graphs the
//! paper shows alpha_star <= alpha + O(sqrt(log Delta) + log alpha) and
//! alpha_liststar <= alpha + O(log Delta); the folklore bounds are
//! alpha_star <= 2 alpha and alpha_liststar <= 4 alpha - 2. All three
//! constructions run through the `Decomposer` facade.

use bench::{simple_suite, TextTable};
use forest_decomp::api::{
    Decomposer, DecompositionRequest, Engine, FrozenGraph, PaletteSpec, ProblemKind,
};
use forest_graph::matroid;

fn main() {
    let epsilon = 0.25;
    let mut table = TextTable::new(&[
        "workload",
        "alpha",
        "Delta",
        "method",
        "star forests",
        "excess over alpha",
    ]);
    for (name, g, bound) in simple_suite(99) {
        let graph = g.graph();
        // One freeze per workload; all three constructions share it through
        // the facade's `GraphInput` frozen path.
        let frozen = FrozenGraph::freeze(graph.clone());
        let alpha = matroid::arboricity(graph);
        let delta = graph.max_degree();
        let mut row = |method: String, colors: String, excess: String| {
            table.row(vec![
                name.clone(),
                alpha.to_string(),
                delta.to_string(),
                method,
                colors,
                excess,
            ]);
        };

        // Folklore 2-alpha baseline.
        let naive = Decomposer::new(
            DecompositionRequest::new(ProblemKind::StarForest)
                .with_engine(Engine::Folklore2Alpha)
                .with_seed(31),
        )
        .run(&frozen)
        .unwrap();
        row(
            "2-coloring of exact FD (<= 2 alpha)".into(),
            naive.num_colors.to_string(),
            format!("{:+}", naive.num_colors as i64 - alpha as i64),
        );

        // Section 5 SFD: alpha + O(sqrt(log Delta) + log alpha).
        let sfd = Decomposer::new(
            DecompositionRequest::new(ProblemKind::StarForest)
                .with_epsilon(epsilon)
                .with_alpha(bound)
                .with_seed(31),
        )
        .run(&frozen)
        .unwrap();
        row(
            "Thm 5.4(1) SFD".into(),
            sfd.num_colors.to_string(),
            format!("{:+}", sfd.num_colors as i64 - alpha as i64),
        );

        // Section 5 LSFD with palettes of size about alpha + O(log Delta).
        let palette = alpha + 2 * ((delta as f64).log2().ceil() as usize) + 4;
        let lsfd = Decomposer::new(
            DecompositionRequest::new(ProblemKind::ListStarForest)
                .with_epsilon(epsilon)
                .with_alpha(bound)
                .with_palettes(PaletteSpec::Random {
                    space: 2 * palette,
                    size: palette,
                })
                .with_seed(31),
        )
        .run(&frozen);
        match lsfd {
            Ok(report) => row(
                format!("Thm 5.4(2) LSFD (palette {palette})"),
                report.num_colors.to_string(),
                format!("{:+}", report.num_colors as i64 - alpha as i64),
            ),
            Err(err) => row(
                format!("Thm 5.4(2) LSFD (palette {palette})"),
                format!("failed: {err}"),
                "-".into(),
            ),
        }
    }
    println!("Corollary 1.2 (measured): star-arboricity constructions, eps = {epsilon}");
    println!("{}", table.render());
}
