//! Regenerates Corollary 1.2: star-arboricity bounds. For simple graphs the
//! paper shows alpha_star <= alpha + O(sqrt(log Delta) + log alpha) and
//! alpha_liststar <= alpha + O(log Delta); the folklore bounds are
//! alpha_star <= 2 alpha and alpha_liststar <= 4 alpha - 2.

use bench::{simple_suite, TextTable};
use forest_decomp::baselines::two_color_star_forests;
use forest_decomp::star_forest::{
    list_star_forest_decomposition_simple, star_forest_decomposition_simple, SfdConfig,
};
use forest_graph::decomposition::validate_star_forest_decomposition;
use forest_graph::{matroid, ListAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 0.25;
    let mut table = TextTable::new(&[
        "workload", "alpha", "Delta", "method", "star forests", "excess over alpha",
    ]);
    for (name, g, bound) in simple_suite(99) {
        let graph = g.graph();
        let alpha = matroid::arboricity(graph);
        let delta = graph.max_degree();
        let mut rng = StdRng::seed_from_u64(31);

        // Folklore 2-alpha baseline.
        let exact = matroid::exact_forest_decomposition(graph);
        let naive = two_color_star_forests(graph, &exact.decomposition);
        validate_star_forest_decomposition(graph, &naive, Some(2 * alpha)).unwrap();
        table.row(vec![
            name.clone(),
            alpha.to_string(),
            delta.to_string(),
            "2-coloring of exact FD (<= 2 alpha)".into(),
            naive.num_colors_used().to_string(),
            format!("{:+}", naive.num_colors_used() as i64 - alpha as i64),
        ]);

        // Section 5 SFD: alpha + O(sqrt(log Delta) + log alpha).
        let config = SfdConfig::new(epsilon).with_alpha(bound);
        let sfd = star_forest_decomposition_simple(&g, &config, &mut rng).unwrap();
        validate_star_forest_decomposition(graph, &sfd.decomposition, None).unwrap();
        table.row(vec![
            name.clone(),
            alpha.to_string(),
            delta.to_string(),
            "Thm 5.4(1) SFD".into(),
            sfd.num_colors.to_string(),
            format!("{:+}", sfd.num_colors as i64 - alpha as i64),
        ]);

        // Section 5 LSFD with palettes of size about alpha + O(log Delta).
        let palette = alpha + 2 * ((delta as f64).log2().ceil() as usize) + 4;
        let lists =
            ListAssignment::random(graph.num_edges(), 2 * palette, palette, &mut rng);
        match list_star_forest_decomposition_simple(&g, &lists, &config, &mut rng) {
            Ok(lsfd) => {
                validate_star_forest_decomposition(graph, &lsfd.decomposition, None).unwrap();
                table.row(vec![
                    name.clone(),
                    alpha.to_string(),
                    delta.to_string(),
                    format!("Thm 5.4(2) LSFD (palette {palette})"),
                    lsfd.num_colors.to_string(),
                    format!("{:+}", lsfd.num_colors as i64 - alpha as i64),
                ]);
            }
            Err(err) => {
                table.row(vec![
                    name.clone(),
                    alpha.to_string(),
                    delta.to_string(),
                    format!("Thm 5.4(2) LSFD (palette {palette})"),
                    format!("failed: {err}"),
                    "-".into(),
                ]);
            }
        }
    }
    println!("Corollary 1.2 (measured): star-arboricity constructions, eps = {epsilon}");
    println!("{}", table.render());
}
