//! Regenerates the Theorem 5.4 measurement: star-forest decomposition of
//! simple graphs with excess colors O(sqrt(log Delta) + log alpha), and the
//! list variant with excess O(log Delta); reports matching quality, LLL
//! rounds and leftover sizes across the alpha regimes.

use bench::{simple_suite, TextTable};
use forest_decomp::star_forest::{
    list_star_forest_decomposition_simple, star_forest_decomposition_simple, SfdConfig,
};
use forest_graph::decomposition::validate_star_forest_decomposition;
use forest_graph::{matroid, ListAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut table = TextTable::new(&[
        "workload", "variant", "eps", "alpha", "sqrt(logD)+log(a)", "colors", "excess",
        "leftover", "LLL rounds", "rounds",
    ]);
    for (name, g, bound) in simple_suite(7) {
        let graph = g.graph();
        let alpha = matroid::arboricity(graph);
        let delta = graph.max_degree() as f64;
        let reference = delta.log2().sqrt() + (alpha as f64).log2().max(0.0);
        for epsilon in [0.5f64, 0.25] {
            let mut rng = StdRng::seed_from_u64(19);
            let config = SfdConfig::new(epsilon).with_alpha(bound);
            let sfd = star_forest_decomposition_simple(&g, &config, &mut rng).unwrap();
            validate_star_forest_decomposition(graph, &sfd.decomposition, None).unwrap();
            table.row(vec![
                name.clone(),
                "SFD".into(),
                format!("{epsilon}"),
                alpha.to_string(),
                format!("{reference:.1}"),
                sfd.num_colors.to_string(),
                format!("{:+}", sfd.num_colors as i64 - alpha as i64),
                sfd.leftover_edges.to_string(),
                sfd.lll_rounds.to_string(),
                sfd.ledger.total_rounds().to_string(),
            ]);
            // List variant with palettes of size alpha + O(log Delta).
            let palette = alpha + 2 * (delta.log2().ceil() as usize) + 4;
            let lists = ListAssignment::random(graph.num_edges(), 2 * palette, palette, &mut rng);
            match list_star_forest_decomposition_simple(&g, &lists, &config, &mut rng) {
                Ok(lsfd) => {
                    validate_star_forest_decomposition(graph, &lsfd.decomposition, None).unwrap();
                    table.row(vec![
                        name.clone(),
                        "LSFD".into(),
                        format!("{epsilon}"),
                        alpha.to_string(),
                        format!("{reference:.1}"),
                        lsfd.num_colors.to_string(),
                        format!("{:+}", lsfd.num_colors as i64 - alpha as i64),
                        lsfd.leftover_edges.to_string(),
                        lsfd.lll_rounds.to_string(),
                        lsfd.ledger.total_rounds().to_string(),
                    ]);
                }
                Err(err) => {
                    table.row(vec![
                        name.clone(),
                        "LSFD".into(),
                        format!("{epsilon}"),
                        alpha.to_string(),
                        format!("{reference:.1}"),
                        format!("failed: {err}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    println!("Theorem 5.4 (measured): star-forest decompositions of simple graphs");
    println!("{}", table.render());
}
