//! Regenerates the Theorem 5.4 measurement: star-forest decomposition of
//! simple graphs with excess colors O(sqrt(log Delta) + log alpha), and the
//! list variant with excess O(log Delta); reports matching quality, leftover
//! sizes and the charged LLL round cost across the alpha regimes. Both
//! variants run through the `Decomposer` facade.

use bench::{simple_suite, TextTable};
use forest_decomp::api::{Decomposer, DecompositionRequest, FrozenGraph, PaletteSpec, ProblemKind};

use forest_graph::matroid;

fn main() {
    let mut table = TextTable::new(&[
        "workload",
        "variant",
        "eps",
        "alpha",
        "sqrt(logD)+log(a)",
        "colors",
        "excess",
        "leftover",
        "LLL charge",
        "rounds",
    ]);
    for (name, g, bound) in simple_suite(7) {
        let graph = g.graph();
        // One freeze per workload, shared by the whole eps sweep below via
        // the facade's `GraphInput` frozen path.
        let frozen = FrozenGraph::freeze(graph.clone());
        let alpha = matroid::arboricity(graph);
        let delta = graph.max_degree() as f64;
        let reference = delta.log2().sqrt() + (alpha as f64).log2().max(0.0);
        for epsilon in [0.5f64, 0.25] {
            let sfd = Decomposer::new(
                DecompositionRequest::new(ProblemKind::StarForest)
                    .with_epsilon(epsilon)
                    .with_alpha(bound)
                    .with_seed(19),
            )
            .run(&frozen)
            .unwrap();
            let lll_charge = sfd.ledger.rounds_for(|label| label.contains("LLL"));
            table.row(vec![
                name.clone(),
                "SFD".into(),
                format!("{epsilon}"),
                alpha.to_string(),
                format!("{reference:.1}"),
                sfd.num_colors.to_string(),
                format!("{:+}", sfd.num_colors as i64 - alpha as i64),
                sfd.leftover_edges.to_string(),
                lll_charge.to_string(),
                sfd.ledger.total_rounds().to_string(),
            ]);
            // List variant with palettes of size alpha + O(log Delta).
            let palette = alpha + 2 * (delta.log2().ceil() as usize) + 4;
            let lsfd = Decomposer::new(
                DecompositionRequest::new(ProblemKind::ListStarForest)
                    .with_epsilon(epsilon)
                    .with_alpha(bound)
                    .with_palettes(PaletteSpec::Random {
                        space: 2 * palette,
                        size: palette,
                    })
                    .with_seed(19),
            )
            .run(&frozen);
            match lsfd {
                Ok(report) => {
                    let lll_charge = report.ledger.rounds_for(|label| label.contains("LLL"));
                    table.row(vec![
                        name.clone(),
                        "LSFD".into(),
                        format!("{epsilon}"),
                        alpha.to_string(),
                        format!("{reference:.1}"),
                        report.num_colors.to_string(),
                        format!("{:+}", report.num_colors as i64 - alpha as i64),
                        report.leftover_edges.to_string(),
                        lll_charge.to_string(),
                        report.ledger.total_rounds().to_string(),
                    ]);
                }
                Err(err) => {
                    table.row(vec![
                        name.clone(),
                        "LSFD".into(),
                        format!("{epsilon}"),
                        alpha.to_string(),
                        format!("{reference:.1}"),
                        format!("failed: {err}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    println!("Theorem 5.4 (measured): star-forest decompositions of simple graphs");
    println!("{}", table.render());
}
