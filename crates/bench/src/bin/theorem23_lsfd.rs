//! Regenerates the Theorem 2.3 measurement: list-star-forest decomposition
//! with palettes of size 2 * floor((2+eps) alpha*), compared against the
//! Corollary 1.2 bound alpha_liststar <= 4 alpha - 2.

use bench::{multigraph_suite, TextTable};
use forest_decomp::lsfd_degeneracy::list_star_forest_decomposition_degeneracy;
use forest_graph::decomposition::validate_star_forest_decomposition;
use forest_graph::{matroid, orientation, CsrGraph, GraphView, ListAssignment};
use local_model::RoundLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 0.25;
    let mut table = TextTable::new(&[
        "workload",
        "alpha",
        "alpha*",
        "palette size",
        "4*alpha-2",
        "colors used",
        "rounds",
    ]);
    for workload in multigraph_suite(13) {
        let alpha = matroid::arboricity(&workload.graph);
        // Freeze once per workload; the degeneracy pipeline runs over CSR.
        let g = &CsrGraph::from_multigraph(&workload.graph);
        let alpha_star = orientation::pseudoarboricity(g);
        let t = ((2.0 + epsilon) * alpha_star as f64).floor() as usize;
        let palette = 2 * t;
        let mut rng = StdRng::seed_from_u64(3);
        let lists = ListAssignment::random(g.num_edges(), 2 * palette, palette, &mut rng);
        let mut ledger = RoundLedger::new();
        let out =
            list_star_forest_decomposition_degeneracy(g, &lists, epsilon, alpha_star, &mut ledger)
                .unwrap();
        let fd = out.coloring.clone().into_complete().unwrap();
        validate_star_forest_decomposition(g, &fd, None).unwrap();
        table.row(vec![
            workload.name.clone(),
            alpha.to_string(),
            alpha_star.to_string(),
            palette.to_string(),
            (4 * alpha - 2).to_string(),
            fd.num_colors_used().to_string(),
            out.rounds.to_string(),
        ]);
    }
    println!("Theorem 2.3 (measured): (4+eps)alpha*-LSFD via degeneracy, eps = {epsilon}");
    println!("{}", table.render());
}
