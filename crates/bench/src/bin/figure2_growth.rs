//! Regenerates Figure 2's quantitative content: the growth of the edge set
//! E_i of Algorithm 1 (Proposition 3.3). The growth only shows when the
//! uncolored start edge is blocked in every palette color, so each instance is
//! pre-colored greedily (first non-cycle-creating color) until an edge gets
//! stuck; the trace starts from that stuck edge.

use bench::TextTable;
use forest_decomp::augmenting::AugmentationContext;
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::traversal::path_between;
use forest_graph::{
    generators, matroid, Color, CsrGraph, EdgeId, GraphView, ListAssignment, MultiGraph,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Greedy pre-coloring: each edge takes the first palette color that does not
/// close a cycle; returns the first edge for which every color is blocked.
fn greedy_until_stuck(
    g: &CsrGraph,
    lists: &ListAssignment,
) -> (PartialEdgeColoring, Option<EdgeId>) {
    let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
    for (e, u, v) in g.edges() {
        let choice =
            lists.palette(e).iter().copied().find(|&c| {
                path_between(g, u, v, |x| x != e && coloring.color(x) == Some(c)).is_none()
            });
        match choice {
            Some(c) => coloring.set(e, c),
            None => return (coloring, Some(e)),
        }
    }
    (coloring, None)
}

fn trace_for(name: &str, g: &MultiGraph) {
    let alpha = matroid::arboricity(g);
    let lists = ListAssignment::uniform(g.num_edges(), alpha);
    // The growth trace runs over the frozen CSR topology.
    let csr = CsrGraph::from_multigraph(g);
    let (coloring, stuck) = greedy_until_stuck(&csr, &lists);
    let Some(start) = stuck else {
        println!("Figure 2: {name} (alpha = {alpha}) — greedy never got stuck, nothing to trace\n");
        return;
    };
    let ctx = AugmentationContext::new(&csr, &lists);
    let trace = ctx.growth_trace(&coloring, start, 60);
    let mut table = TextTable::new(&["iteration", "|E_i|", "growth factor"]);
    for (i, size) in trace.iter().enumerate() {
        let factor = if i == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", *size as f64 / trace[i - 1] as f64)
        };
        table.row(vec![i.to_string(), size.to_string(), factor]);
    }
    println!(
        "Figure 2: growth of E_i on {name} (alpha = {alpha}, palette = {alpha} colors, start = stuck edge {start})"
    );
    println!("{}", table.render());
    match ctx.find_augmenting_sequence(&coloring, start, 200) {
        Some(seq) => println!("  almost augmenting sequence found and short-circuited to length {}\n", seq.len()),
        None => println!("  no augmenting sequence with the tight alpha-color palette (Theorem 3.2 needs (1+eps)alpha)\n"),
    }
    let _ = Color::new(0);
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    trace_for(
        "planted n=200 alpha<=4",
        &generators::planted_forest_union(200, 4, &mut rng),
    );
    trace_for("grid 14x14", &generators::grid(14, 14));
    trace_for("clique K16", &generators::complete_graph(16));
}
