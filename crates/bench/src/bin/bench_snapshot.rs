//! Emits a machine-readable performance snapshot (`BENCH_pr10.json` via
//! `scripts/bench_snapshot.sh`): wall-clock of the `Decomposer` facade across
//! graph sizes × engines, the 64-graph `decomposer_batch` workload the
//! acceptance criteria track across PRs, a sharded-vs-unsharded large-graph
//! comparison (`run_sharded`, thaw-free, with and without RCM locality
//! reordering, boundary fractions recorded per row), an on-disk CSR
//! round-trip (save → `load_mmap` → decompose on a temp file, asserted
//! byte-identical to the owned-storage run), the **dynamic update-stream**
//! workloads from PR 5: `DynamicDecomposer` throughput on grid/adversarial
//! build streams and a mixed insert/delete churn stream (per-update cost vs
//! a per-update cold rerun, rebuild-fallback rate, snapshot-vs-cold ratio
//! with the byte-identity asserted inline) plus the exact-α stitch
//! comparison — and, new in PR 6, the **decomposition service**: in-process
//! `SnapshotReader` throughput under idle and live publishing writers,
//! end-to-end TCP queries/sec through the `forest-serve` client while a
//! writer connection streams batches, and the publish-to-read epoch lag a
//! dedicated probe observes — and, new in PR 7, the **virtual power graph**:
//! adversarial sharded-HSV wall-clock before/after the lazy `PowerView` +
//! ball-local cluster pipeline (pre-PR medians hardcoded from this host),
//! the forced-radii workload where `G^{2R'+1}` was previously materialized,
//! and the `PipelineStats` counters from a direct `algorithm2_frozen` run —
//! and, new in PR 8, the **out-of-core pipeline**: external-sort CSR build
//! from a raw edge file (spilled runs, one-pass Nash-Williams watermark),
//! and `run_out_of_core` decomposing a graph ≥8× its memory ceiling with
//! the driver's peak-resident accounting vs. the budget, asserted
//! byte-identical to the in-memory `run_sharded` at the derived shard
//! count — and, new in PR 10, the **observability layer**: the process-wide
//! `forest-obs` metric registry read back after every workload above has
//! run through the instrumented pipeline, an interleaved
//! instrumented-vs-disabled wall-clock comparison on the `decomposer_batch`
//! and dynamic-churn acceptance workloads, and the measured disabled-path
//! bound behind the "recorder off costs < 3%" criterion. All wall-clock in
//! this binary is taken through `forest_obs::clock::Stopwatch` (the
//! workspace's single FL005-allowed clock). Every snapshot records the
//! host's core and thread counts in its `environment` block.
//!
//! The `pr2_baseline` block records the medians from `BENCH_pr2.json`
//! (post-CSR-refactor facade, commit `c2da8ed`) for the identical workload,
//! so the JSON carries its own before/after comparison; snapshots are
//! appended as new `BENCH_pr<N>.json` files, never overwritten.

use forest_decomp::algorithm2::{algorithm2_frozen, Algorithm2Config};
use forest_decomp::api::{
    Decomposer, DecompositionRequest, DynamicDecomposer, EdgeUpdate, Engine, FrozenGraph,
    GraphInput, ProblemKind, ReorderKind, ShardedGraph, ShardingSpec, StitchPolicy,
};
use forest_graph::{generators, CsrGraph, EdgeId, GraphView, ListAssignment, MultiGraph, VertexId};
use forest_obs::clock::Stopwatch;
use forest_obs::{recorder, Registry, Span};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Medians recorded in `BENCH_pr2.json` (the PR 2 facade, commit `c2da8ed`)
/// for the exact `decomposer_batch` workload below, in milliseconds — on the
/// PR 2 development container. Speedup ratios in the emitted JSON are only
/// meaningful when the snapshot is regenerated on comparable hardware; the
/// JSON carries a `baseline_host_note` flagging this.
const BASELINE_SEQUENTIAL_MS: [(&str, f64); 2] =
    [("harris-su-vu", 6.053), ("exact-matroid", 3.496)];
const BASELINE_RAYON_MS: [(&str, f64); 2] = [("harris-su-vu", 6.603), ("exact-matroid", 3.628)];

/// Medians measured on the PR 7 development container immediately before the
/// virtual power-graph rewrite (materializing `power_graph`, whole-graph CUT
/// and augmentation scans, per-component `bfs_distances` diameter bound) for
/// the exact `hsv_power_graph` workloads below, in milliseconds. Same caveat
/// as `pr2_baseline`: the ratios are machine-specific.
const HSV_BASELINE_UNSHARDED_MS: f64 = 31.731;
const HSV_BASELINE_SHARDED_MS: [(&str, usize, f64); 6] = [
    ("identity", 2, 357.372),
    ("identity", 4, 644.357),
    ("identity", 8, 441.705),
    ("rcm", 2, 153.187),
    ("rcm", 4, 535.700),
    ("rcm", 8, 387.454),
];
const HSV_BASELINE_FAT_PATH_MS: f64 = 304.470;

fn batch_workload() -> Vec<MultiGraph> {
    // Identical to benches/decomposer_batch.rs.
    let mut rng = StdRng::seed_from_u64(8);
    (0..64)
        .map(|i| generators::planted_forest_union(48 + (i % 7) * 8, 3, &mut rng))
        .collect()
}

fn median_ms<F: FnMut()>(samples: usize, mut run: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Stopwatch::start();
            run();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn json_f(x: f64) -> String {
    format!("{x:.3}")
}

fn main() {
    let num_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let rayon_threads = rayon::current_num_threads();
    let mut out = String::from("{\n");
    out.push_str("  \"snapshot\": \"BENCH_pr10\",\n");
    out.push_str(&format!(
        "  \"environment\": {{\"num_cpus\": {num_cpus}, \"rayon_threads\": {rayon_threads}, \"os\": \"{}\", \"arch\": \"{}\"}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
    ));
    out.push_str("  \"workload\": \"decomposer_batch: 64 planted multigraphs, n in 48..96, alpha 3, forest problem, validation off\",\n");
    out.push_str("  \"baseline_host_note\": \"pr2_baseline was measured on the PR 2 development container at commit c2da8ed; speedup ratios are machine-specific and only comparable when this snapshot is regenerated on similar hardware\",\n");

    // --- the acceptance-criteria batch workload -------------------------
    let graphs = batch_workload();
    let frozen: Vec<FrozenGraph> = graphs.iter().cloned().map(FrozenGraph::freeze).collect();
    out.push_str("  \"decomposer_batch_64\": {\n");
    out.push_str(&format!(
        "    \"threads\": {{\"sequential\": 1, \"rayon_batch\": {rayon_threads}}},\n"
    ));
    let mut engine_blocks = Vec::new();
    for engine in [Engine::HarrisSuVu, Engine::ExactMatroid] {
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(engine)
                .with_epsilon(0.5)
                .with_alpha(3)
                .with_seed(9)
                .without_validation(),
        );
        let warm = decomposer.run_batch(&graphs);
        assert!(warm.iter().all(Result::is_ok));
        let sequential = median_ms(9, || {
            for g in &graphs {
                decomposer.run(g).unwrap();
            }
        });
        let rayon_batch = median_ms(9, || {
            decomposer
                .run_batch(&graphs)
                .into_iter()
                .for_each(|r| drop(r.unwrap()));
        });
        let frozen_batch = median_ms(9, || {
            decomposer
                .run_batch_frozen(&frozen)
                .into_iter()
                .for_each(|r| drop(r.unwrap()));
        });
        let name = engine.to_string();
        let before_seq = BASELINE_SEQUENTIAL_MS
            .iter()
            .find(|(e, _)| *e == name)
            .map(|(_, ms)| *ms)
            .unwrap();
        let before_rayon = BASELINE_RAYON_MS
            .iter()
            .find(|(e, _)| *e == name)
            .map(|(_, ms)| *ms)
            .unwrap();
        engine_blocks.push(format!(
            "    \"{name}\": {{\n      \"pr2_baseline\": {{\"sequential_ms\": {}, \"rayon_batch_ms\": {}}},\n      \"pr3\": {{\"sequential_ms\": {}, \"rayon_batch_ms\": {}, \"frozen_batch_ms\": {}}},\n      \"ratio_sequential_vs_pr2\": {},\n      \"ratio_rayon_batch_vs_pr2\": {}\n    }}",
            json_f(before_seq),
            json_f(before_rayon),
            json_f(sequential),
            json_f(rayon_batch),
            json_f(frozen_batch),
            json_f(before_seq / sequential),
            json_f(before_rayon / rayon_batch),
        ));
    }
    out.push_str(&engine_blocks.join(",\n"));
    out.push_str("\n  },\n");
    eprintln!("bench_snapshot: decomposer_batch done");

    // --- sharded vs unsharded on large graphs ---------------------------
    // The thaw-free `run_sharded` path: split the CSR into zero-copy shards
    // (optionally along an RCM locality order), decompose shards straight
    // over the borrowed views, stitch the boundary through the union-find
    // fast path plus color-reusing residue recoloring. Two workloads: a
    // locality-friendly grid (contiguous ids already cut few edges) and an
    // adversarial random graph (random ids cut most edges unless reordered),
    // so the snapshot records how the boundary fraction governs sharding
    // overhead — and how much the RCM reordering claws back.
    let mut rng = StdRng::seed_from_u64(33);
    let workloads: Vec<(&str, &str, Engine, MultiGraph)> = vec![
        (
            "grid 2000x200 (locality-friendly split)",
            "exact-matroid",
            Engine::ExactMatroid,
            generators::grid(2000, 200),
        ),
        (
            "planted_forest_union alpha 3 (adversarial random split)",
            "harris-su-vu",
            Engine::HarrisSuVu,
            generators::planted_forest_union(20_000, 3, &mut rng),
        ),
    ];
    out.push_str("  \"sharded_vs_unsharded\": {\n");
    out.push_str("    \"note\": \"thaw-free shards (engines consume zero-copy CsrRef views; no per-shard MultiGraph, no per-shard diameter pass) with a color-reusing two-level stitch; 'rcm' rows split along a reverse Cuthill-McKee order, whose boundary fraction is the governing quantity. median_ms measures run_sharded_prepared on a pre-split ShardedGraph, symmetric to the unsharded run_frozen baseline which likewise excludes the one-time freeze; split_ms is that one-time cost and cold_ms = split + run in one call. Stitched color counts sit at alpha + 1 here (capacity is tight: m ~ alpha * (n - 1)), so identity and rcm tie on colors at this scale while pr3's 8-15 colors are gone\",\n");
    out.push_str(&format!(
        "    \"threads\": {{\"rayon\": {rayon_threads}}},\n"
    ));
    out.push_str("    \"workloads\": [\n");
    let mut workload_blocks = Vec::new();
    for (family, engine_name, engine, big) in workloads {
        let big_frozen = FrozenGraph::freeze(big.clone());
        let base_request = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(engine)
            .with_epsilon(0.5)
            .with_alpha(3)
            .with_seed(17)
            .without_validation();
        let decomposer = Decomposer::new(base_request.clone());
        let unsharded_report = decomposer.run_frozen(&big_frozen).unwrap();
        let unsharded_ms = median_ms(3, || {
            decomposer.run_frozen(&big_frozen).unwrap();
        });
        let mut shard_rows = Vec::new();
        for (reorder_name, reorder) in [
            ("identity", ReorderKind::Identity),
            ("rcm", ReorderKind::Rcm),
        ] {
            let sharded_decomposer =
                Decomposer::new(base_request.clone().with_shard_reorder(reorder));
            for k in [2usize, 4, 8] {
                let split_ms = median_ms(3, || {
                    ShardedGraph::split(&big_frozen, k, ShardingSpec::with_reorder(reorder))
                        .unwrap();
                });
                let sharded =
                    ShardedGraph::split(&big_frozen, k, ShardingSpec::with_reorder(reorder))
                        .unwrap();
                let report = sharded_decomposer.run_sharded_prepared(&sharded).unwrap();
                let ms = median_ms(5, || {
                    sharded_decomposer.run_sharded_prepared(&sharded).unwrap();
                });
                let cold_ms = median_ms(3, || {
                    sharded_decomposer.run_sharded(&big_frozen, k).unwrap();
                });
                shard_rows.push(format!(
                    "          {{\"shards\": {k}, \"reorder\": \"{reorder_name}\", \"median_ms\": {}, \"split_ms\": {}, \"cold_ms\": {}, \"colors\": {}, \"leftover_edges\": {}, \"boundary_edges\": {}, \"boundary_fraction\": {}, \"ratio_vs_unsharded\": {}}}",
                    json_f(ms),
                    json_f(split_ms),
                    json_f(cold_ms),
                    report.num_colors,
                    report.leftover_edges,
                    sharded.partition().boundary_edges().len(),
                    json_f(sharded.partition().boundary_fraction()),
                    json_f(ms / unsharded_ms)
                ));
            }
        }
        workload_blocks.push(format!(
            "      {{\n        \"graph\": {{\"n\": {}, \"m\": {}, \"family\": \"{family}\"}},\n        \"engine\": \"{engine_name}\",\n        \"unsharded\": {{\"median_ms\": {}, \"colors\": {}}},\n        \"sharded\": [\n{}\n        ]\n      }}",
            big.num_vertices(),
            big.num_edges(),
            json_f(unsharded_ms),
            unsharded_report.num_colors,
            shard_rows.join(",\n"),
        ));
    }
    out.push_str(&workload_blocks.join(",\n"));
    out.push_str("\n    ]\n  },\n");
    eprintln!("bench_snapshot: sharded_vs_unsharded done");

    // --- virtual power graph: adversarial sharded HSV -------------------
    // PR 7: the HSV engine simulates `G^{2R'+1}` through a lazy `PowerView`
    // and runs CUT + augmentation ball-locally per cluster, so fragmented
    // shards no longer pay whole-shard scans per cluster. The pre-PR
    // medians are hardcoded from this host (see `HSV_BASELINE_*`), so the
    // JSON carries its own before/after comparison for the exact workloads
    // that motivated the rewrite.
    let mut rng = StdRng::seed_from_u64(33);
    let adversarial = generators::planted_forest_union(20_000, 3, &mut rng);
    let adversarial_n = adversarial.num_vertices();
    let adversarial_m = adversarial.num_edges();
    let adversarial_frozen = FrozenGraph::freeze(adversarial);
    let hsv_request = DecompositionRequest::new(ProblemKind::Forest)
        .with_engine(Engine::HarrisSuVu)
        .with_epsilon(0.5)
        .with_alpha(3)
        .with_seed(17)
        .without_validation();
    let hsv_decomposer = Decomposer::new(hsv_request.clone());
    hsv_decomposer.run_frozen(&adversarial_frozen).unwrap();
    let hsv_unsharded_ms = median_ms(3, || {
        hsv_decomposer.run_frozen(&adversarial_frozen).unwrap();
    });
    let mut hsv_rows = Vec::new();
    for (reorder_name, reorder) in [
        ("identity", ReorderKind::Identity),
        ("rcm", ReorderKind::Rcm),
    ] {
        let sharded_decomposer = Decomposer::new(hsv_request.clone().with_shard_reorder(reorder));
        for k in [2usize, 4, 8] {
            let sharded =
                ShardedGraph::split(&adversarial_frozen, k, ShardingSpec::with_reorder(reorder))
                    .unwrap();
            sharded_decomposer.run_sharded_prepared(&sharded).unwrap();
            let ms = median_ms(3, || {
                sharded_decomposer.run_sharded_prepared(&sharded).unwrap();
            });
            let before_ms = HSV_BASELINE_SHARDED_MS
                .iter()
                .find(|(r, kk, _)| *r == reorder_name && *kk == k)
                .map(|(_, _, ms)| *ms)
                .unwrap();
            hsv_rows.push(format!(
                "      {{\"shards\": {k}, \"reorder\": \"{reorder_name}\", \"median_ms\": {}, \"ratio_vs_unsharded\": {}, \"before_ms\": {}, \"before_ratio_vs_unsharded\": {}, \"speedup_vs_before\": {}}}",
                json_f(ms),
                json_f(ms / hsv_unsharded_ms),
                json_f(before_ms),
                json_f(before_ms / HSV_BASELINE_UNSHARDED_MS),
                json_f(before_ms / ms),
            ));
        }
    }
    // The forced-radii workload where the engine previously materialized the
    // power graph: fat_path keeps the forced radii large relative to the
    // component diameters, so the pre-PR engine built `G^{2R'+1}` densely.
    let fat = generators::fat_path(4_000, 2);
    let fat_decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_epsilon(0.5)
            .with_alpha(2)
            .with_radii(8, 4)
            .with_seed(9)
            .without_validation(),
    );
    fat_decomposer.run(&fat).unwrap();
    let fat_ms = median_ms(3, || {
        fat_decomposer.run(&fat).unwrap();
    });
    // A direct `algorithm2_frozen` run on the same workload, surfacing the
    // ball-local pipeline counters (pure observability; not part of any
    // canonical encoding).
    let fat_csr = CsrGraph::from_multigraph(&fat);
    let fat_lists = ListAssignment::uniform(fat_csr.num_edges(), 3);
    let a2_config = Algorithm2Config::new(0.5, 2).with_radii(8, 4);
    let mut a2_rng = StdRng::seed_from_u64(9);
    let a2_out = algorithm2_frozen(&fat_csr, &fat_lists, &a2_config, &mut a2_rng).unwrap();
    let stats = &a2_out.pipeline_stats;
    let layer_deltas = stats
        .power_layer_deltas
        .iter()
        .map(|d| {
            format!(
                "{{\"class\": {}, \"ball_expansions\": {}, \"cache_hits\": {}}}",
                d.class, d.ball_expansions, d.cache_hits
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str("  \"hsv_power_graph\": {\n");
    out.push_str("    \"note\": \"before_ms rows replay the medians measured on this PR's container immediately before the PowerView rewrite (see HSV_BASELINE_* in bench_snapshot.rs); median_ms rows re-measure the identical workloads on the current build. The ledger charges and canonical report bytes are unchanged by the rewrite (pinned by tests/power_view.rs), so every row is the same decomposition, faster\",\n");
    out.push_str(&format!(
        "    \"adversarial\": {{\"graph\": {{\"n\": {adversarial_n}, \"m\": {adversarial_m}, \"family\": \"planted_forest_union alpha 3, seed 33\"}}, \"engine\": \"harris-su-vu\", \"unsharded\": {{\"median_ms\": {}, \"before_ms\": {}}}, \"sharded\": [\n",
        json_f(hsv_unsharded_ms),
        json_f(HSV_BASELINE_UNSHARDED_MS),
    ));
    out.push_str(&hsv_rows.join(",\n"));
    out.push_str("\n    ]},\n");
    out.push_str(&format!(
        "    \"forced_radii_fat_path\": {{\"graph\": \"fat_path(4000, 2)\", \"radii\": [8, 4], \"median_ms\": {}, \"before_ms\": {}, \"speedup_vs_before\": {}}},\n",
        json_f(fat_ms),
        json_f(HSV_BASELINE_FAT_PATH_MS),
        json_f(HSV_BASELINE_FAT_PATH_MS / fat_ms),
    ));
    out.push_str(&format!(
        "    \"pipeline_stats\": {{\"workload\": \"algorithm2_frozen on fat_path(4000, 2), radii (8, 4), seed 9\", \"used_power_view\": {}, \"cluster_bfs_ms\": {}, \"power_ball_expansions\": {}, \"power_cache_hits\": {}, \"power_layer_deltas\": [{}], \"scratch_allocations_per_run\": {}, \"num_clusters\": {}, \"num_classes\": {}}}\n",
        stats.used_power_view,
        json_f(stats.cluster_bfs_nanos as f64 / 1e6),
        stats.power_ball_expansions,
        stats.power_cache_hits,
        layer_deltas,
        stats.scratch_allocations,
        a2_out.num_clusters,
        a2_out.num_classes,
    ));
    out.push_str("  },\n");
    eprintln!("bench_snapshot: hsv_power_graph done");

    // --- mmap round-trip -------------------------------------------------
    // save -> load_mmap -> decompose on a temp file; the report must be
    // byte-identical to the owned-storage run (the format contract).
    let path = std::env::temp_dir().join(format!("bench-snapshot-{}.csr", std::process::id()));
    let medium = {
        let mut rng = StdRng::seed_from_u64(51);
        generators::planted_forest_union(4_096, 3, &mut rng)
    };
    let medium_csr = CsrGraph::from_multigraph(&medium);
    let save_ms = median_ms(5, || {
        medium_csr.save(&path).unwrap();
    });
    let load_ms = median_ms(5, || {
        GraphInput::from_mmap(&path).unwrap();
    });
    let mmap_decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_alpha(3)
            .with_seed(29)
            .without_validation(),
    );
    let owned_report = mmap_decomposer.run(&medium).unwrap();
    let mmap_report = mmap_decomposer
        .run(GraphInput::from_mmap(&path).unwrap())
        .unwrap();
    assert_eq!(
        owned_report.canonical_bytes(),
        mmap_report.canonical_bytes(),
        "mmap run must be byte-identical to the owned-storage run"
    );
    let mmap_run_ms = median_ms(3, || {
        mmap_decomposer
            .run(GraphInput::from_mmap(&path).unwrap())
            .unwrap();
    });
    let file_bytes = std::fs::metadata(&path).unwrap().len();
    std::fs::remove_file(&path).unwrap();
    out.push_str("  \"mmap_round_trip\": {\n");
    out.push_str(&format!(
        "    \"threads\": 1,\n    \"graph\": {{\"n\": {}, \"m\": {}}},\n    \"file_bytes\": {file_bytes},\n    \"save_ms\": {},\n    \"load_mmap_ms\": {},\n    \"load_and_decompose_ms\": {},\n    \"byte_identical_to_owned\": true\n  }},\n",
        medium.num_vertices(),
        medium.num_edges(),
        json_f(save_ms),
        json_f(load_ms),
        json_f(mmap_run_ms),
    ));

    // --- out-of-core pipeline (new in PR 8) ------------------------------
    // Raw edge file -> external-sort CSR build (tiny sort buffer, spilled
    // runs, one-pass Nash-Williams watermark) -> run_out_of_core under a
    // memory ceiling 8x smaller than the CSR file, with the driver's own
    // resident-bytes accounting vs. the budget and byte-identity to the
    // in-memory sharded run asserted inline.
    {
        use forest_decomp::api::oocore::OocConfig;
        use forest_graph::extsort::{
            build_csr_from_edge_file, write_binary_edge_file, EdgeListFormat, ExtsortConfig,
        };
        let ooc_graph = generators::fat_path(20_000, 4);
        let edge_file =
            std::env::temp_dir().join(format!("bench-snapshot-{}.edges", std::process::id()));
        let csr_file =
            std::env::temp_dir().join(format!("bench-snapshot-ooc-{}.csr", std::process::id()));
        write_binary_edge_file(
            &edge_file,
            ooc_graph.edges().map(|(_, u, v)| (u.raw(), v.raw())),
        )
        .unwrap();
        let sort_budget = 64 << 10;
        let build = build_csr_from_edge_file(
            &edge_file,
            EdgeListFormat::BinaryU32,
            &csr_file,
            &ExtsortConfig::with_budget(sort_budget),
        )
        .unwrap();
        let build_ms = median_ms(3, || {
            build_csr_from_edge_file(
                &edge_file,
                EdgeListFormat::BinaryU32,
                &csr_file,
                &ExtsortConfig::with_budget(sort_budget),
            )
            .unwrap();
        });
        let csr_bytes = std::fs::metadata(&csr_file).unwrap().len() as usize;
        let ooc_budget = csr_bytes / 8;
        let ooc_decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::HarrisSuVu)
                .with_alpha(4)
                .with_seed(9)
                .without_validation(),
        );
        let ooc = ooc_decomposer
            .run_out_of_core(&csr_file, &OocConfig::with_budget(ooc_budget))
            .unwrap();
        assert!(
            ooc.stats.peak_resident_bytes <= ooc_budget,
            "peak resident must respect the budget"
        );
        let sharded_ref = ooc_decomposer
            .run_sharded(&ooc_graph, ooc.stats.num_shards)
            .unwrap();
        assert_eq!(
            ooc.report.canonical_bytes(),
            sharded_ref.canonical_bytes(),
            "out-of-core run must be byte-identical to the in-memory sharded run"
        );
        let ooc_ms = median_ms(3, || {
            ooc_decomposer
                .run_out_of_core(&csr_file, &OocConfig::with_budget(ooc_budget))
                .unwrap();
        });
        let stats = ooc.stats;
        std::fs::remove_file(&edge_file).unwrap();
        std::fs::remove_file(&csr_file).unwrap();
        out.push_str("  \"out_of_core\": {\n");
        out.push_str("    \"note\": \"fat_path(20000, 4), seed 9, HarrisSuVu: edge file external-sorted into the on-disk CSR with a 64 KiB sort buffer, then run_out_of_core with a memory ceiling of csr_file_bytes/8. peak_resident_bytes is the driver's own accounting of every bounded-phase allocation (shard CSRs, boundary state, stitch union-find); report assembly is O(m) by definition and reported separately. Byte-identity to run_sharded at the derived shard count is asserted inline\",\n");
        out.push_str(&format!(
            "    \"graph\": {{\"n\": {}, \"m\": {}, \"family\": \"fat_path(20000, 4)\"}},\n",
            ooc_graph.num_vertices(),
            ooc_graph.num_edges(),
        ));
        out.push_str(&format!(
            "    \"extsort_build\": {{\"sort_budget_bytes\": {sort_budget}, \"spilled_runs\": {}, \"nash_williams_watermark\": {}, \"max_degree\": {}, \"peak_buffer_bytes\": {}, \"read_spill_ms\": {}, \"merge_ms\": {}, \"build_ms\": {}, \"output_bytes\": {}}},\n",
            build.spilled_runs,
            build.nash_williams_watermark,
            build.max_degree,
            build.peak_buffer_bytes,
            json_f(build.read_spill_nanos as f64 / 1e6),
            json_f(build.merge_nanos as f64 / 1e6),
            json_f(build_ms),
            build.output_bytes,
        ));
        out.push_str(&format!(
            "    \"decompose\": {{\"memory_budget_bytes\": {}, \"csr_file_bytes\": {}, \"file_to_budget_ratio\": {}, \"num_shards\": {}, \"peak_resident_bytes\": {}, \"peak_to_budget_ratio\": {}, \"report_assembly_bytes\": {}, \"boundary_edges\": {}, \"spilled_coloring_bytes\": {}, \"demand_paged\": {}, \"plan_ms\": {}, \"decompose_ms\": {}, \"stitch_ms\": {}, \"assemble_ms\": {}, \"total_ms\": {}, \"byte_identical_to_run_sharded\": true}}\n",
            stats.memory_budget_bytes,
            stats.csr_file_bytes,
            json_f(stats.csr_file_bytes as f64 / stats.memory_budget_bytes as f64),
            stats.num_shards,
            stats.peak_resident_bytes,
            json_f(stats.peak_resident_bytes as f64 / stats.memory_budget_bytes as f64),
            stats.report_assembly_bytes,
            stats.boundary_edges,
            stats.spilled_coloring_bytes,
            stats.demand_paged,
            json_f(stats.plan_nanos as f64 / 1e6),
            json_f(stats.decompose_nanos as f64 / 1e6),
            json_f(stats.stitch_nanos as f64 / 1e6),
            json_f(stats.assemble_nanos as f64 / 1e6),
            json_f(ooc_ms),
        ));
        out.push_str("  },\n");
        eprintln!("bench_snapshot: out_of_core done");
    }

    // --- dynamic update streams (new in PR 5) ---------------------------
    // The streaming DynamicDecomposer: per-update cost on a pure-insert
    // build stream and on a mixed insert/delete churn stream, against the
    // only alternative a frozen pipeline offers — a cold rerun per update.
    // `snapshot_vs_cold_ratio` measures the reproducibility contract's
    // cost (snapshot *is* the cold pipeline; byte-identity is asserted
    // here), and `fallback_rate` is the fraction of updates that fell off
    // the O(α log n) fast path into an exchange / budget event.
    out.push_str("  \"dynamic_streams\": {\n");
    out.push_str("    \"note\": \"DynamicDecomposer (ExactMatroid snapshots, seed 13): 'build' applies every edge as an insert; 'churn' then alternates delete-random-live / insert-random-pair. per_update_us is total apply wall-clock over the stream divided by updates; cold_run_ms is one cold Decomposer::run on the final churned graph (single sample — churned graphs make the exact matroid's exchange BFS wander, so the cold run dwarfs everything else at any scale: exactly the per-update cost a frozen pipeline would pay and the dynamic path avoids), so ratio_cold_run_vs_update = how many times cheaper an update is than that per-update cold rerun. Workload sizes are chosen so the cold runs keep the CI smoke seconds-scale; the ratio only grows with size. snapshot bytes are asserted identical to the cold run inline\",\n");
    out.push_str("    \"threads\": 1,\n");
    out.push_str("    \"workloads\": [\n");
    let mut dyn_rows = Vec::new();
    let mut churn_rng = StdRng::seed_from_u64(71);
    let dyn_workloads: Vec<(&str, MultiGraph)> = vec![
        ("grid 40x40 (locality-friendly)", generators::grid(40, 40)),
        (
            "planted_forest_union 1000 alpha 3 (adversarial random)",
            generators::planted_forest_union(1_000, 3, &mut churn_rng),
        ),
    ];
    for (family, g) in dyn_workloads {
        let request = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(13)
            .without_validation();
        let n = g.num_vertices();
        let m = g.num_edges();
        // Build stream: every edge applied as an insert.
        let build_start = Stopwatch::start();
        let mut dyn_dec = DynamicDecomposer::from_graph(request.clone(), &g).unwrap();
        let build_us = build_start.elapsed().as_secs_f64() * 1e6 / m as f64;
        let build_fallback = dyn_dec.stats().fallback_rate();
        eprintln!("bench_snapshot: dynamic build done for {family}");
        // Churn stream: delete a random live edge, insert a random pair.
        let churn_updates = 10_000usize;
        let mut live: Vec<EdgeId> = dyn_dec
            .live_graph()
            .live_edges()
            .map(|(e, _, _)| e)
            .collect();
        let before = dyn_dec.stats();
        let churn_start = Stopwatch::start();
        let mut applied = 0usize;
        while applied < churn_updates {
            let slot = churn_rng.gen_range(0..live.len());
            let victim = live.swap_remove(slot);
            dyn_dec.apply(EdgeUpdate::delete(victim)).unwrap();
            applied += 1;
            if applied == churn_updates {
                break;
            }
            let u = churn_rng.gen_range(0..n);
            let v = churn_rng.gen_range(0..n);
            if u == v {
                continue;
            }
            live.push(
                dyn_dec
                    .apply(EdgeUpdate::insert(VertexId::new(u), VertexId::new(v)))
                    .unwrap()
                    .edge,
            );
            applied += 1;
        }
        let churn_us = churn_start.elapsed().as_secs_f64() * 1e6 / applied as f64;
        let after = dyn_dec.stats();
        let churn_fallbacks = (after.exchanges + after.budget_raises + after.compactions)
            - (before.exchanges + before.budget_raises + before.compactions);
        let churn_fallback_rate = churn_fallbacks as f64 / applied as f64;
        // The reproducibility contract, measured and asserted. Single
        // samples on purpose: the cold run IS the expensive thing being
        // measured (see the section note).
        let (final_graph, _) = dyn_dec.snapshot_graph();
        let cold_decomposer = Decomposer::new(request);
        let cold_start = Stopwatch::start();
        let cold_report = cold_decomposer.run(&final_graph).unwrap();
        let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;
        let snap_start = Stopwatch::start();
        let snap = dyn_dec.snapshot().unwrap();
        let snap_ms = snap_start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            snap.canonical_bytes(),
            cold_report.canonical_bytes(),
            "snapshot must be byte-identical to the cold run"
        );
        dyn_rows.push(format!(
            "      {{\n        \"graph\": {{\"n\": {n}, \"m\": {m}, \"family\": \"{family}\"}},\n        \"build\": {{\"per_update_us\": {}, \"fallback_rate\": {}, \"color_budget\": {}}},\n        \"churn\": {{\"updates\": {applied}, \"per_update_us\": {}, \"fallback_rate\": {}, \"live_edges_after\": {}}},\n        \"cold_run_ms\": {},\n        \"ratio_cold_run_vs_update\": {},\n        \"snapshot_ms\": {},\n        \"snapshot_vs_cold_ratio\": {},\n        \"snapshot_byte_identical_to_cold\": true\n      }}",
            json_f(build_us),
            json_f(build_fallback),
            dyn_dec.color_budget(),
            json_f(churn_us),
            json_f(churn_fallback_rate),
            dyn_dec.num_live_edges(),
            json_f(cold_ms),
            json_f(cold_ms * 1e3 / churn_us),
            json_f(snap_ms),
            json_f(snap_ms / cold_ms),
        ));
        eprintln!("bench_snapshot: dynamic churn + snapshot done for {family}");
    }
    out.push_str(&dyn_rows.join(",\n"));
    out.push_str("\n    ]\n  },\n");

    // --- exact-α stitch (new in PR 5) -----------------------------------
    // The StitchPolicy::ExactAlpha pass on the capacity-tight grid: colors
    // vs the greedy default and what the bounded exchanges cost.
    {
        let mut stitch_rng = StdRng::seed_from_u64(29);
        #[allow(clippy::type_complexity)]
        let stitch_workloads: Vec<(
            &str,
            Option<usize>,
            ReorderKind,
            u64,
            Vec<usize>,
            MultiGraph,
        )> = vec![
            (
                "grid 120x60 (capacity-tight, already at alpha)",
                None,
                ReorderKind::Identity,
                17,
                vec![4, 8],
                generators::grid(120, 60),
            ),
            (
                "planted_forest_union 800 alpha 3, rcm split (greedy overflows to alpha+1)",
                Some(3),
                ReorderKind::Rcm,
                21,
                vec![4],
                generators::planted_forest_union(800, 3, &mut stitch_rng),
            ),
        ];
        out.push_str("  \"exact_alpha_stitch\": {\n");
        out.push_str("    \"note\": \"ExactMatroid shards: on capacity-tight workloads the greedy stitch settles above alpha; the exact-alpha pass exchanges the overflow back inside the budget through the dynamic per-color connectivity. The planted row uses the RCM split recommended for random-id graphs — under an identity split the residue is large enough that the bounded exchanges trip and the overflow color survives (the pass improves, never breaks; see StitchPolicy docs). Single-sample timings: the exchange pass dominates and is itself the thing being measured\",\n");
        out.push_str(&format!(
            "    \"threads\": {{\"rayon\": {rayon_threads}}},\n"
        ));
        out.push_str("    \"rows\": [\n");
        let mut rows = Vec::new();
        for (family, alpha, reorder, seed, ks, g) in stitch_workloads {
            let frozen = FrozenGraph::freeze(g);
            let mut base = DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(seed)
                .with_shard_reorder(reorder)
                .without_validation();
            if let Some(alpha) = alpha {
                base = base.with_alpha(alpha);
            }
            for k in ks {
                let greedy_dec = Decomposer::new(base.clone());
                let exact_dec =
                    Decomposer::new(base.clone().with_stitch_policy(StitchPolicy::ExactAlpha));
                let greedy_start = Stopwatch::start();
                let greedy = greedy_dec.run_sharded(&frozen, k).unwrap();
                let greedy_ms = greedy_start.elapsed().as_secs_f64() * 1e3;
                let exact_start = Stopwatch::start();
                let exact = exact_dec.run_sharded(&frozen, k).unwrap();
                let exact_ms = exact_start.elapsed().as_secs_f64() * 1e3;
                rows.push(format!(
                    "      {{\"family\": \"{family}\", \"shards\": {k}, \"greedy_colors\": {}, \"exact_colors\": {}, \"arboricity\": {}, \"greedy_ms\": {}, \"exact_ms\": {}}}",
                    greedy.num_colors,
                    exact.num_colors,
                    exact.arboricity,
                    json_f(greedy_ms),
                    json_f(exact_ms),
                ));
                eprintln!("bench_snapshot: exact_alpha_stitch k={k} done for {family}");
            }
        }
        out.push_str(&rows.join(",\n"));
        out.push_str("\n    ]\n  },\n");
    }

    // --- decomposition service (new in PR 6) ----------------------------
    // The versioned publication layer and the forest-serve front end:
    // (a) in-process SnapshotReader throughput under an idle and a live
    //     publishing writer — the "readers never block on the writer" row
    //     of the acceptance criteria,
    // (b) end-to-end TCP queries/sec through the blocking Client while a
    //     writer connection streams update batches,
    // (c) the publish-to-read epoch lag a dedicated spinning probe
    //     observes on `SnapshotReader::current_epoch`.
    {
        use forest_decomp::api::VersionedDecomposer;
        use forest_serve::{Client, GraphSource, Server};
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        use std::thread;

        let mut svc_rng = StdRng::seed_from_u64(97);
        let base_graph = generators::planted_forest_union(2_000, 3, &mut svc_rng);
        let svc_request = DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(13)
            .without_validation();
        let n = base_graph.num_vertices();

        out.push_str("  \"snapshot_service\": {\n");
        out.push_str("    \"note\": \"VersionedDecomposer + forest-serve (ExactMatroid, seed 13): in_process rows hammer SnapshotReader::current plus a small query mix from K threads while the writer applies 8-update batches and publishes after each — reader throughput under a live writer is the lock-freedom evidence; the idle row is the same readers with a sleeping writer for contrast. tcp rows run the same shape over loopback sockets through the Client (one connection per reader thread, one writer connection streaming batches). publish_to_read_lag stamps the wall clock around each publish and a spinning probe stamps first observation of each epoch: visible_to_read is publication-cell store -> probe load, publish_call_to_read additionally includes building the snapshot\",\n");
        out.push_str(&format!(
            "    \"threads\": {{\"num_cpus\": {num_cpus}, \"writer\": 1, \"readers\": \"per row\", \"lag_probe\": 1}},\n"
        ));
        out.push_str(&format!(
            "    \"graph\": {{\"n\": {n}, \"m\": {}, \"family\": \"planted_forest_union alpha 3\"}},\n",
            base_graph.num_edges()
        ));

        // One churn round: delete up to 4 live edges, refill to 8 updates
        // with random inserts, apply, publish.
        fn churn_round(
            writer: &mut VersionedDecomposer,
            live: &mut Vec<EdgeId>,
            rng: &mut StdRng,
            n: usize,
        ) {
            let mut batch = Vec::with_capacity(8);
            for _ in 0..4 {
                if !live.is_empty() {
                    let slot = rng.gen_range(0..live.len());
                    batch.push(EdgeUpdate::delete(live.swap_remove(slot)));
                }
            }
            while batch.len() < 8 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    batch.push(EdgeUpdate::insert(VertexId::new(u), VertexId::new(v)));
                }
            }
            let report = writer.apply_batch(&batch).unwrap();
            live.extend(report.inserted_edges.iter().copied());
            writer.publish();
        }

        // (a) in-process reader throughput, idle vs live writer.
        out.push_str("    \"in_process_reader_throughput\": [\n");
        let mut rows = Vec::new();
        for (writer_mode, k) in [("idle", 4usize), ("live", 1), ("live", 4), ("live", 8)] {
            let mut writer =
                VersionedDecomposer::from_graph(svc_request.clone(), &base_graph).unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let readers: Vec<_> = (0..k)
                .map(|_| {
                    let reader = writer.reader();
                    let stop = Arc::clone(&stop);
                    thread::spawn(move || {
                        let mut reads = 0u64;
                        let mut acc = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let snap = reader.current();
                            acc ^= snap.epoch()
                                ^ snap.watermark().lower_bound as u64
                                ^ snap.max_out_degree() as u64;
                            reads += 1;
                        }
                        (reads, acc)
                    })
                })
                .collect();
            let rounds = 300usize;
            let start = Stopwatch::start();
            let mut publishes = 0u64;
            if writer_mode == "live" {
                let mut live: Vec<EdgeId> = writer
                    .inner()
                    .live_graph()
                    .live_edges()
                    .map(|(e, _, _)| e)
                    .collect();
                for _ in 0..rounds {
                    churn_round(&mut writer, &mut live, &mut svc_rng, n);
                    publishes += 1;
                }
            } else {
                thread::sleep(std::time::Duration::from_millis(250));
            }
            let elapsed = start.elapsed().as_secs_f64();
            stop.store(true, Ordering::Relaxed);
            let mut reads_total = 0u64;
            for h in readers {
                let (reads, _) = h.join().unwrap();
                assert!(reads > 0, "a reader never completed a read");
                reads_total += reads;
            }
            rows.push(format!(
                "      {{\"readers\": {k}, \"writer\": \"{writer_mode}\", \"reads_total\": {reads_total}, \"reads_per_sec\": {}, \"publishes\": {publishes}, \"publishes_per_sec\": {}, \"duration_s\": {}}}",
                json_f(reads_total as f64 / elapsed),
                json_f(publishes as f64 / elapsed),
                json_f(elapsed),
            ));
        }
        out.push_str(&rows.join(",\n"));
        out.push_str("\n    ],\n");
        eprintln!("bench_snapshot: snapshot_service in-process throughput done");

        // (b) end-to-end TCP queries/sec under a live writer connection.
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let server_thread = thread::spawn(move || server.serve().unwrap());
        let mut admin = Client::connect(addr).unwrap();
        let tcp_m = 4_000usize;
        let edges: Vec<(u64, u64)> = (0..)
            .map(|_| {
                (
                    svc_rng.gen_range(0..n as u64),
                    svc_rng.gen_range(0..n as u64),
                )
            })
            .filter(|(u, v)| u != v)
            .take(tcp_m)
            .collect();
        admin
            .register(
                "bench",
                "svc",
                Engine::ExactMatroid,
                0.5,
                13,
                GraphSource::Edges {
                    num_vertices: n as u64,
                    edges,
                },
            )
            .unwrap();
        out.push_str("    \"tcp_query_throughput\": [\n");
        let mut rows = Vec::new();
        // The live-id mirror persists across rows: the server keeps the
        // graph state between them.
        let mut live: Vec<u64> = (0..tcp_m as u64).collect();
        for k in [1usize, 4] {
            let stop = Arc::new(AtomicBool::new(false));
            let readers: Vec<_> = (0..k)
                .map(|i| {
                    let stop = Arc::clone(&stop);
                    thread::spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let mut queries = 0u64;
                        let mut probe_edge = i as u64;
                        while !stop.load(Ordering::Relaxed) {
                            client.color_of_edge("bench", "svc", probe_edge).unwrap();
                            client.watermark("bench", "svc").unwrap();
                            probe_edge = (probe_edge + 7) % 4_096;
                            queries += 2;
                        }
                        queries
                    })
                })
                .collect();
            let mut writer_client = Client::connect(addr).unwrap();
            let batches = 120usize;
            let start = Stopwatch::start();
            for _ in 0..batches {
                let mut updates = Vec::with_capacity(8);
                for _ in 0..4 {
                    if !live.is_empty() {
                        let slot = svc_rng.gen_range(0..live.len());
                        updates.push(EdgeUpdate::delete(EdgeId::new(
                            live.swap_remove(slot) as usize
                        )));
                    }
                }
                while updates.len() < 8 {
                    let u = svc_rng.gen_range(0..n);
                    let v = svc_rng.gen_range(0..n);
                    if u != v {
                        updates.push(EdgeUpdate::insert(VertexId::new(u), VertexId::new(v)));
                    }
                }
                let report = writer_client
                    .apply_updates("bench", "svc", updates)
                    .unwrap();
                live.extend(report.inserted_edges.iter().copied());
            }
            let elapsed = start.elapsed().as_secs_f64();
            stop.store(true, Ordering::Relaxed);
            let queries_total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
            rows.push(format!(
                "      {{\"reader_connections\": {k}, \"writer\": \"live\", \"queries_total\": {queries_total}, \"queries_per_sec\": {}, \"update_batches\": {batches}, \"updates_per_batch\": 8, \"batches_per_sec\": {}, \"duration_s\": {}}}",
                json_f(queries_total as f64 / elapsed),
                json_f(batches as f64 / elapsed),
                json_f(elapsed),
            ));
        }
        out.push_str(&rows.join(",\n"));
        out.push_str("\n    ],\n");
        let mut shut = Client::connect(addr).unwrap();
        shut.shutdown().unwrap();
        server_thread.join().unwrap();
        eprintln!("bench_snapshot: snapshot_service tcp throughput done");

        // (c) publish-to-read epoch lag.
        let mut writer = VersionedDecomposer::from_graph(svc_request.clone(), &base_graph).unwrap();
        let reader = writer.reader();
        let lag_rounds = 200usize;
        let seen: Arc<Vec<AtomicU64>> =
            Arc::new((0..=lag_rounds).map(|_| AtomicU64::new(0)).collect());
        let stop = Arc::new(AtomicBool::new(false));
        let base_time = Stopwatch::start();
        let probe = {
            let seen = Arc::clone(&seen);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let e = reader.current_epoch() as usize;
                    if e <= lag_rounds {
                        let slot = &seen[e];
                        if slot.load(Ordering::Relaxed) == 0 {
                            // +1 keeps "unseen" distinguishable from a
                            // zero-nanosecond stamp.
                            slot.store(
                                base_time.elapsed().as_nanos() as u64 + 1,
                                Ordering::Relaxed,
                            );
                        }
                    }
                }
            })
        };
        let mut live: Vec<EdgeId> = writer
            .inner()
            .live_graph()
            .live_edges()
            .map(|(e, _, _)| e)
            .collect();
        // Stamps around each publish: call = before building the snapshot,
        // visible = after the publication-cell store returns.
        let mut call_ns = vec![0u64; lag_rounds + 1];
        let mut visible_ns = vec![0u64; lag_rounds + 1];
        for round in 1..=lag_rounds {
            let mut batch = Vec::with_capacity(8);
            for _ in 0..4 {
                if !live.is_empty() {
                    let slot = svc_rng.gen_range(0..live.len());
                    batch.push(EdgeUpdate::delete(live.swap_remove(slot)));
                }
            }
            while batch.len() < 8 {
                let u = svc_rng.gen_range(0..n);
                let v = svc_rng.gen_range(0..n);
                if u != v {
                    batch.push(EdgeUpdate::insert(VertexId::new(u), VertexId::new(v)));
                }
            }
            let report = writer.apply_batch(&batch).unwrap();
            live.extend(report.inserted_edges.iter().copied());
            call_ns[round] = base_time.elapsed().as_nanos() as u64 + 1;
            writer.publish();
            visible_ns[round] = base_time.elapsed().as_nanos() as u64 + 1;
        }
        // Give the probe a moment to observe the final epoch, then stop it.
        thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);
        probe.join().unwrap();
        let mut visible_to_read_us = Vec::new();
        let mut call_to_read_us = Vec::new();
        for round in 1..=lag_rounds {
            let seen_ns = seen[round].load(Ordering::Relaxed);
            if seen_ns == 0 {
                continue; // the probe was lapped past this epoch
            }
            visible_to_read_us.push(seen_ns.saturating_sub(visible_ns[round]) as f64 / 1e3);
            call_to_read_us.push(seen_ns.saturating_sub(call_ns[round]) as f64 / 1e3);
        }
        visible_to_read_us.sort_by(f64::total_cmp);
        call_to_read_us.sort_by(f64::total_cmp);
        assert!(
            !visible_to_read_us.is_empty(),
            "the lag probe observed no epochs"
        );
        let observed = visible_to_read_us.len();
        out.push_str(&format!(
            "    \"publish_to_read_lag\": {{\"rounds\": {lag_rounds}, \"observed\": {observed}, \"visible_to_read_median_us\": {}, \"visible_to_read_max_us\": {}, \"publish_call_to_read_median_us\": {}}}\n",
            json_f(visible_to_read_us[observed / 2]),
            json_f(visible_to_read_us[observed - 1]),
            json_f(call_to_read_us[observed / 2]),
        ));
        out.push_str("  },\n");
        eprintln!("bench_snapshot: snapshot_service epoch lag done");
    }

    // --- observability (new in PR 10) -----------------------------------
    // Three views of the forest-obs layer itself:
    //  (a) the process-wide metric registry, read back after every workload
    //      above has run through the instrumented pipeline — the timings
    //      this snapshot used to carry in ad-hoc accumulators now come off
    //      the same counters production code feeds,
    //  (b) interleaved instrumented-vs-disabled wall-clock on the
    //      decomposer_batch and dynamic-churn acceptance workloads (the
    //      recorder toggles between samples, so drift hits both arms),
    //  (c) the disabled-path bound: a microbenched per-site cost of
    //      `Span::enter` with the recorder off, multiplied by the span
    //      sites one instrumented batch run actually visits, as a fraction
    //      of the batch wall-clock — asserted below the 3% criterion.
    {
        let reg = Registry::global();
        let metric = |name: &str| reg.value_of(name).unwrap_or(0);
        out.push_str("  \"observability\": {\n");
        out.push_str("    \"note\": \"registry values are cumulative over this whole binary (every section above feeds them); nanos_total counters are reported in ms for readability. overhead rows interleave recorder-off/recorder-on samples of the same workload; disabled_path multiplies the microbenched cost of a recorder-off Span::enter by the span sites per instrumented batch run, over the batch wall-clock — the quantity the < 3% acceptance bound constrains. Metrics (counters/gauges/histograms) are always on by design; only span capture toggles\",\n");
        out.push_str(&format!(
            "    \"registry\": {{\"metrics_registered\": {}, \"facade_runs_total\": {}, \"facade_run_ms_sum\": {}, \"algo2_runs_total\": {}, \"algo2_clusters_total\": {}, \"algo2_cluster_bfs_ms\": {}, \"algo2_ball_expansions_total\": {}, \"algo2_cache_hits_total\": {}, \"hpartition_peel_rounds_total\": {}, \"hpartition_peel_ms\": {}, \"extsort_builds_total\": {}, \"extsort_edges_read_total\": {}, \"extsort_read_spill_ms\": {}, \"extsort_merge_ms\": {}, \"dynamic_updates_total\": {}, \"dynamic_fast_path_total\": {}, \"dynamic_exchanges_total\": {}, \"dynamic_apply_ms_sum\": {}, \"ooc_runs_total\": {}, \"ooc_peak_resident_bytes\": {}, \"versioned_publishes_total\": {}, \"versioned_publish_lag_ms_sum\": {}, \"local_model_rounds_charged_total\": {}}},\n",
            reg.len(),
            metric("facade.runs_total"),
            json_f(metric("facade.run_nanos") as f64 / 1e6),
            metric("algo2.runs_total"),
            metric("algo2.clusters_total"),
            json_f(metric("algo2.cluster_bfs_nanos_total") as f64 / 1e6),
            metric("algo2.ball_expansions_total"),
            metric("algo2.cache_hits_total"),
            metric("hpartition.peel_rounds_total"),
            json_f(metric("hpartition.peel_nanos_total") as f64 / 1e6),
            metric("extsort.builds_total"),
            metric("extsort.edges_read_total"),
            json_f(metric("extsort.read_spill_nanos_total") as f64 / 1e6),
            json_f(metric("extsort.merge_nanos_total") as f64 / 1e6),
            metric("dynamic.updates_total"),
            metric("dynamic.fast_path_total"),
            metric("dynamic.exchanges_total"),
            json_f(metric("dynamic.apply_nanos") as f64 / 1e6),
            metric("ooc.runs_total"),
            metric("ooc.peak_resident_bytes"),
            metric("versioned.publishes_total"),
            json_f(metric("versioned.publish_lag_nanos") as f64 / 1e6),
            metric("local_model.rounds_charged_total"),
        ));

        // (b) decomposer_batch: the recorder state must never leak into
        // the decomposition itself — asserted on canonical bytes first.
        let obs_decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::HarrisSuVu)
                .with_epsilon(0.5)
                .with_alpha(3)
                .with_seed(9)
                .without_validation(),
        );
        let quiet_bytes = obs_decomposer.run(&graphs[0]).unwrap().canonical_bytes();
        recorder().clear();
        recorder().enable();
        let traced_bytes = obs_decomposer.run(&graphs[0]).unwrap().canonical_bytes();
        recorder().disable();
        assert_eq!(
            quiet_bytes, traced_bytes,
            "recorder state must not change canonical bytes"
        );
        // Span sites one instrumented batch run visits (Begin + Instant
        // events are each one `Span::enter`/`event` call).
        recorder().clear();
        recorder().enable();
        for g in &graphs {
            obs_decomposer.run(g).unwrap();
        }
        recorder().disable();
        let batch_events = recorder().drain();
        let batch_span_sites = batch_events
            .iter()
            .filter(|e| !matches!(e.phase, forest_obs::Phase::End))
            .count();
        // Interleaved medians: recorder off on even samples, on for odd.
        let mut batch_ms = [Vec::new(), Vec::new()];
        for sample in 0..10 {
            let on = sample % 2 == 1;
            if on {
                recorder().enable();
            }
            let start = Stopwatch::start();
            for g in &graphs {
                obs_decomposer.run(g).unwrap();
            }
            let ms = start.elapsed().as_secs_f64() * 1e3;
            recorder().disable();
            recorder().clear();
            batch_ms[usize::from(on)].push(ms);
        }
        batch_ms[0].sort_by(f64::total_cmp);
        batch_ms[1].sort_by(f64::total_cmp);
        let (batch_disabled_ms, batch_enabled_ms) = (batch_ms[0][2], batch_ms[1][2]);
        out.push_str(&format!(
            "    \"decomposer_batch_overhead\": {{\"samples_per_arm\": 5, \"disabled_median_ms\": {}, \"enabled_median_ms\": {}, \"enabled_over_disabled\": {}, \"events_per_instrumented_run\": {}, \"span_sites_per_run\": {batch_span_sites}}},\n",
            json_f(batch_disabled_ms),
            json_f(batch_enabled_ms),
            json_f(batch_enabled_ms / batch_disabled_ms),
            batch_events.len(),
        ));
        eprintln!("bench_snapshot: observability decomposer_batch overhead done");

        // (b') dynamic churn: 500-update chunks (delete + insert pairs) on
        // a persistent decomposer, recorder toggling between chunks. The
        // dynamic path carries counters/histograms only (always on), so
        // the two arms bound the metric cost rather than span capture.
        let churn_graph = generators::grid(40, 40);
        let churn_n = churn_graph.num_vertices();
        let mut obs_dyn = DynamicDecomposer::from_graph(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_seed(13)
                .without_validation(),
            &churn_graph,
        )
        .unwrap();
        let mut obs_rng = StdRng::seed_from_u64(83);
        let mut live: Vec<EdgeId> = obs_dyn
            .live_graph()
            .live_edges()
            .map(|(e, _, _)| e)
            .collect();
        let mut churn_ms = [Vec::new(), Vec::new()];
        for sample in 0..10 {
            let on = sample % 2 == 1;
            if on {
                recorder().enable();
            }
            let start = Stopwatch::start();
            for _ in 0..250 {
                let slot = obs_rng.gen_range(0..live.len());
                let victim = live.swap_remove(slot);
                obs_dyn.apply(EdgeUpdate::delete(victim)).unwrap();
                loop {
                    let u = obs_rng.gen_range(0..churn_n);
                    let v = obs_rng.gen_range(0..churn_n);
                    if u != v {
                        live.push(
                            obs_dyn
                                .apply(EdgeUpdate::insert(VertexId::new(u), VertexId::new(v)))
                                .unwrap()
                                .edge,
                        );
                        break;
                    }
                }
            }
            let ms = start.elapsed().as_secs_f64() * 1e3;
            recorder().disable();
            recorder().clear();
            churn_ms[usize::from(on)].push(ms);
        }
        churn_ms[0].sort_by(f64::total_cmp);
        churn_ms[1].sort_by(f64::total_cmp);
        let (churn_disabled_ms, churn_enabled_ms) = (churn_ms[0][2], churn_ms[1][2]);
        out.push_str(&format!(
            "    \"dynamic_churn_overhead\": {{\"samples_per_arm\": 5, \"updates_per_sample\": 500, \"disabled_median_ms\": {}, \"enabled_median_ms\": {}, \"enabled_over_disabled\": {}}},\n",
            json_f(churn_disabled_ms),
            json_f(churn_enabled_ms),
            json_f(churn_enabled_ms / churn_disabled_ms),
        ));
        eprintln!("bench_snapshot: observability dynamic churn overhead done");

        // (c) disabled-path bound. `black_box` keeps the guard from being
        // optimized to nothing; the probe span name never records because
        // the recorder is off.
        recorder().disable();
        let probe_iters = 4_000_000u64;
        let probe = Stopwatch::start();
        for _ in 0..probe_iters {
            let _ = std::hint::black_box(Span::enter("obs.disabled_probe"));
        }
        let ns_per_disabled_span = probe.elapsed_nanos() as f64 / probe_iters as f64;
        let disabled_bound_pct =
            batch_span_sites as f64 * ns_per_disabled_span / (batch_disabled_ms * 1e6) * 100.0;
        assert!(
            disabled_bound_pct < 3.0,
            "disabled-path bound {disabled_bound_pct:.4}% breaches the 3% criterion \
             ({batch_span_sites} sites x {ns_per_disabled_span:.2} ns over {batch_disabled_ms:.1} ms)"
        );
        out.push_str(&format!(
            "    \"disabled_path\": {{\"probe_iters\": {probe_iters}, \"ns_per_disabled_span\": {}, \"span_sites_per_batch_run\": {batch_span_sites}, \"bound_pct\": {}, \"asserted_below_pct\": 3.0}}\n",
            json_f(ns_per_disabled_span),
            json_f(disabled_bound_pct),
        ));
        out.push_str("  },\n");
        eprintln!("bench_snapshot: observability disabled-path bound done");
    }

    // --- size × engine sweep --------------------------------------------
    out.push_str("  \"size_sweep\": [\n");
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(21);
    for n in [64usize, 128, 256, 512] {
        let g = generators::planted_forest_union(n, 3, &mut rng);
        let frozen = FrozenGraph::freeze(g.clone());
        for engine in [
            Engine::HarrisSuVu,
            Engine::BarenboimElkin,
            Engine::ExactMatroid,
        ] {
            let decomposer = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_engine(engine)
                    .with_epsilon(0.5)
                    .with_alpha(3)
                    .with_seed(5)
                    .without_validation(),
            );
            decomposer.run_frozen(&frozen).unwrap();
            let ms = median_ms(5, || {
                decomposer.run_frozen(&frozen).unwrap();
            });
            rows.push(format!(
                "    {{\"n\": {n}, \"m\": {}, \"engine\": \"{engine}\", \"problem\": \"forest\", \"median_ms\": {}}}",
                g.num_edges(),
                json_f(ms)
            ));
        }
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    print!("{out}");
}
