//! Emits a machine-readable performance snapshot (`BENCH_pr2.json` via
//! `scripts/bench_snapshot.sh`): wall-clock of the `Decomposer` facade across
//! graph sizes × engines, plus the 64-graph `decomposer_batch` workload that
//! the acceptance criteria track across PRs.
//!
//! The `pre_refactor_baseline` block records the medians measured on the
//! PR 1 facade (before the CSR graph core landed) with the identical
//! workload, so the JSON carries its own before/after comparison.

use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, FrozenGraph, ProblemKind};
use forest_graph::{generators, MultiGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Medians measured on the pre-refactor facade (PR 1, commit `2718eda`) for
/// the exact `decomposer_batch` workload below, in milliseconds — on the
/// PR 2 development container. Speedup ratios in the emitted JSON are only
/// meaningful when the snapshot is regenerated on comparable hardware; the
/// JSON carries a `baseline_host_note` flagging this.
const BASELINE_SEQUENTIAL_MS: [(&str, f64); 2] =
    [("harris-su-vu", 37.312), ("exact-matroid", 32.302)];
const BASELINE_RAYON_MS: [(&str, f64); 2] = [("harris-su-vu", 38.873), ("exact-matroid", 33.165)];

fn batch_workload() -> Vec<MultiGraph> {
    // Identical to benches/decomposer_batch.rs.
    let mut rng = StdRng::seed_from_u64(8);
    (0..64)
        .map(|i| generators::planted_forest_union(48 + (i % 7) * 8, 3, &mut rng))
        .collect()
}

fn median_ms<F: FnMut()>(samples: usize, mut run: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn json_f(x: f64) -> String {
    format!("{x:.3}")
}

fn main() {
    let mut out = String::from("{\n");
    out.push_str("  \"snapshot\": \"BENCH_pr2\",\n");
    out.push_str("  \"workload\": \"decomposer_batch: 64 planted multigraphs, n in 48..96, alpha 3, forest problem, validation off\",\n");
    out.push_str("  \"baseline_host_note\": \"pre_refactor_baseline was measured on the PR 2 development container at commit 2718eda; speedup ratios are machine-specific and only comparable when this snapshot is regenerated on similar hardware\",\n");

    // --- the acceptance-criteria batch workload -------------------------
    let graphs = batch_workload();
    let frozen: Vec<FrozenGraph> = graphs.iter().cloned().map(FrozenGraph::freeze).collect();
    out.push_str("  \"decomposer_batch_64\": {\n");
    let mut engine_blocks = Vec::new();
    for engine in [Engine::HarrisSuVu, Engine::ExactMatroid] {
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(engine)
                .with_epsilon(0.5)
                .with_alpha(3)
                .with_seed(9)
                .without_validation(),
        );
        let warm = decomposer.run_batch(&graphs);
        assert!(warm.iter().all(Result::is_ok));
        let sequential = median_ms(9, || {
            for g in &graphs {
                decomposer.run(g).unwrap();
            }
        });
        let rayon_batch = median_ms(9, || {
            decomposer
                .run_batch(&graphs)
                .into_iter()
                .for_each(|r| drop(r.unwrap()));
        });
        let frozen_batch = median_ms(9, || {
            decomposer
                .run_batch_frozen(&frozen)
                .into_iter()
                .for_each(|r| drop(r.unwrap()));
        });
        let name = engine.to_string();
        let before_seq = BASELINE_SEQUENTIAL_MS
            .iter()
            .find(|(e, _)| *e == name)
            .map(|(_, ms)| *ms)
            .unwrap();
        let before_rayon = BASELINE_RAYON_MS
            .iter()
            .find(|(e, _)| *e == name)
            .map(|(_, ms)| *ms)
            .unwrap();
        engine_blocks.push(format!(
            "    \"{name}\": {{\n      \"pre_refactor_baseline\": {{\"sequential_ms\": {}, \"rayon_batch_ms\": {}}},\n      \"post_refactor\": {{\"sequential_ms\": {}, \"rayon_batch_ms\": {}, \"frozen_batch_ms\": {}}},\n      \"speedup_sequential\": {},\n      \"speedup_rayon_batch\": {}\n    }}",
            json_f(before_seq),
            json_f(before_rayon),
            json_f(sequential),
            json_f(rayon_batch),
            json_f(frozen_batch),
            json_f(before_seq / sequential),
            json_f(before_rayon / rayon_batch),
        ));
    }
    out.push_str(&engine_blocks.join(",\n"));
    out.push_str("\n  },\n");

    // --- size × engine sweep --------------------------------------------
    out.push_str("  \"size_sweep\": [\n");
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(21);
    for n in [64usize, 128, 256, 512] {
        let g = generators::planted_forest_union(n, 3, &mut rng);
        let frozen = FrozenGraph::freeze(g.clone());
        for engine in [
            Engine::HarrisSuVu,
            Engine::BarenboimElkin,
            Engine::ExactMatroid,
        ] {
            let decomposer = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_engine(engine)
                    .with_epsilon(0.5)
                    .with_alpha(3)
                    .with_seed(5)
                    .without_validation(),
            );
            decomposer.run_frozen(&frozen).unwrap();
            let ms = median_ms(5, || {
                decomposer.run_frozen(&frozen).unwrap();
            });
            rows.push(format!(
                "    {{\"n\": {n}, \"m\": {}, \"engine\": \"{engine}\", \"problem\": \"forest\", \"median_ms\": {}}}",
                g.num_edges(),
                json_f(ms)
            ));
        }
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    print!("{out}");
}
