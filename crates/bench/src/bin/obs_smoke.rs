//! The observability smoke run CI executes: one instrumented end-to-end
//! pipeline — raw edge file → external-sort CSR build → out-of-core
//! decomposition → in-process server publish/query (including the PR 10
//! `Metrics` op) — whose drained spans must validate structurally and
//! cover all three instrumented layers (`extsort.*` in forest-graph,
//! `ooc.*` in forest-decomp, `versioned.publish` in the service path) in
//! a single chrome-trace JSON. A recorder-disabled run of the identical
//! pipeline is asserted byte-identical first: the trace is free evidence,
//! never an input.
//!
//! Usage: `obs_smoke [trace-output.json]` (default `obs_trace.json`).
//! Exits non-zero on any violated contract; prints a one-line summary per
//! stage so the CI log shows where a failure happened.

use forest_decomp::api::oocore::OocConfig;
use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_graph::extsort::{
    build_csr_from_edge_file, write_binary_edge_file, EdgeListFormat, ExtsortConfig,
};
use forest_graph::generators;
use forest_obs::export::{chrome_trace_json, prometheus_text, validate_trace};
use forest_obs::{recorder, Registry, TraceEvent};
use forest_serve::{GraphSource, Request, Response, ServerState};

/// One full pipeline pass: build the CSR from the edge file, decompose it
/// out of core, and return the canonical report bytes.
fn pipeline(edge_file: &std::path::Path, csr_file: &std::path::Path) -> Vec<u8> {
    let build = build_csr_from_edge_file(
        edge_file,
        EdgeListFormat::BinaryU32,
        csr_file,
        &ExtsortConfig::with_budget(32 << 10),
    )
    .expect("extsort build");
    assert!(build.spilled_runs > 1, "budget too big to exercise spills");
    let csr_bytes = std::fs::metadata(csr_file).expect("csr metadata").len() as usize;
    let outcome = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::HarrisSuVu)
            .with_alpha(4)
            .with_seed(9)
            .without_validation(),
    )
    .run_out_of_core(csr_file, &OocConfig::with_budget(csr_bytes / 4))
    .expect("out-of-core run");
    outcome.report.canonical_bytes()
}

/// Drives the in-process server: register, two update batches, queries,
/// and the `Metrics` op twice to check monotonicity.
fn drive_server() {
    use forest_decomp::api::EdgeUpdate;
    let state = ServerState::new();
    let resp = state.handle(&Request::RegisterGraph {
        tenant: "ci".into(),
        graph: "smoke".into(),
        engine: Engine::ExactMatroid,
        epsilon: 0.5,
        seed: 13,
        source: GraphSource::Edges {
            num_vertices: 64,
            edges: (0..63u64).map(|i| (i, i + 1)).collect(),
        },
    });
    assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    let metrics = |state: &ServerState| -> (u64, Vec<(String, u64)>) {
        match state.handle(&Request::Metrics {
            tenant: "ci".into(),
            graph: "smoke".into(),
        }) {
            Response::MetricsReport { epoch, entries } => (epoch, entries),
            other => panic!("metrics op failed: {other:?}"),
        }
    };
    let (_, before) = metrics(&state);
    for batch in 0..2u64 {
        let resp = state.handle(&Request::ApplyUpdates {
            tenant: "ci".into(),
            graph: "smoke".into(),
            updates: (0..8)
                .map(|i| EdgeUpdate::insert(i, (i + batch as usize * 8 + 9) % 64))
                .collect(),
        });
        assert!(matches!(resp, Response::Applied { .. }), "{resp:?}");
        let resp = state.handle(&Request::ColorOfEdge {
            tenant: "ci".into(),
            graph: "smoke".into(),
            edge: 0,
        });
        assert!(matches!(resp, Response::EdgeColor { .. }), "{resp:?}");
    }
    let (epoch, after) = metrics(&state);
    assert_eq!(epoch, 2, "two published batches");
    for ((name, then), (name2, now)) in before.iter().zip(after.iter()) {
        assert_eq!(name, name2, "metric names must be stable");
        assert!(now >= then, "{name} went backwards: {then} -> {now}");
    }
}

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "obs_trace.json".to_string());
    let dir = std::env::temp_dir();
    let edge_file = dir.join(format!("obs-smoke-{}.edges", std::process::id()));
    let csr_file = dir.join(format!("obs-smoke-{}.csr", std::process::id()));
    let g = generators::fat_path(6_000, 4);
    write_binary_edge_file(&edge_file, g.edges().map(|(_, u, v)| (u.raw(), v.raw())))
        .expect("write edge file");

    // Baseline: recorder off (the default, asserted rather than assumed).
    assert!(!recorder().is_enabled(), "recorder must start disabled");
    let quiet_bytes = pipeline(&edge_file, &csr_file);
    eprintln!("obs_smoke: disabled-recorder pipeline done");

    // The instrumented pass: identical bytes, plus a trace.
    recorder().clear();
    recorder().enable();
    let traced_bytes = pipeline(&edge_file, &csr_file);
    drive_server();
    recorder().disable();
    let events: Vec<TraceEvent> = recorder().drain();
    std::fs::remove_file(&edge_file).ok();
    std::fs::remove_file(&csr_file).ok();
    assert_eq!(
        quiet_bytes, traced_bytes,
        "instrumented run must be byte-identical to the disabled run"
    );
    eprintln!(
        "obs_smoke: instrumented pipeline byte-identical, {} events drained",
        events.len()
    );

    // Structural validation: balanced spans, monotone per-thread stamps.
    validate_trace(&events).expect("trace must validate");
    // All three layers in the one trace.
    for required in [
        "extsort.read_spill", // forest-graph
        "extsort.merge",
        "ooc.run", // forest-decomp
        "ooc.plan",
        "ooc.shard_walk",
        "ooc.shard",
        "ooc.stitch",
        "ooc.assemble",
        "versioned.publish", // the service layer
    ] {
        assert!(
            events.iter().any(|e| e.name == required),
            "span {required:?} missing from the trace"
        );
    }
    eprintln!("obs_smoke: trace validated, all three layers present");

    let json = chrome_trace_json(&events);
    std::fs::write(&trace_path, &json).expect("write trace");
    eprintln!(
        "obs_smoke: wrote {trace_path} ({} bytes, {} events)",
        json.len(),
        events.len()
    );

    // The metric registry made it through the same run; print the
    // prometheus exposition head so the CI log carries real numbers.
    let snapshot = Registry::global().snapshot();
    assert!(
        snapshot.iter().any(|m| m.name == "extsort.builds_total"),
        "registry missing extsort counters"
    );
    assert!(
        snapshot.iter().any(|m| m.name == "ooc.runs_total"),
        "registry missing out-of-core counters"
    );
    let text = prometheus_text(&snapshot);
    for line in text.lines().take(12) {
        eprintln!("obs_smoke: {line}");
    }
    println!(
        "obs_smoke: ok ({} events, {} metrics)",
        events.len(),
        snapshot.len()
    );
}
