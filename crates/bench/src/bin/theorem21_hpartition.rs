//! Regenerates the Theorem 2.1 measurements: H-partition class counts,
//! peeling rounds, orientation out-degree and the derived 3t-SFD / t-LFD.

use bench::{multigraph_suite, TextTable};
use forest_decomp::hpartition::{
    acyclic_orientation, h_partition, list_forest_decomposition, star_forest_decomposition,
};
use forest_graph::decomposition::{
    validate_forest_decomposition, validate_star_forest_decomposition,
};
use forest_graph::{orientation, CsrGraph, GraphView, ListAssignment};
use local_model::RoundLedger;

fn main() {
    let mut table = TextTable::new(&[
        "workload",
        "eps",
        "alpha*",
        "t",
        "classes",
        "rounds",
        "orientation out-deg",
        "3t-SFD colors",
        "t-LFD ok",
    ]);
    for workload in multigraph_suite(5) {
        // Freeze once per workload; every phase below runs over the CSR view.
        let g = &CsrGraph::from_multigraph(&workload.graph);
        let alpha_star = orientation::pseudoarboricity(g);
        for epsilon in [0.5f64, 0.25, 0.1] {
            let mut ledger = RoundLedger::new();
            let hp = h_partition(g, epsilon, alpha_star, &mut ledger).unwrap();
            let rounds = ledger.total_rounds();
            let orientation = acyclic_orientation(g, &hp);
            let sfd = star_forest_decomposition(g, &orientation, &mut ledger);
            validate_star_forest_decomposition(g, &sfd, Some(3 * hp.degree_threshold)).unwrap();
            validate_forest_decomposition(g, &sfd, Some(3 * hp.degree_threshold)).unwrap();
            let lists = ListAssignment::uniform(g.num_edges(), hp.degree_threshold.max(1));
            let lfd_ok = list_forest_decomposition(g, &orientation, &lists, &mut ledger).is_ok();
            table.row(vec![
                workload.name.clone(),
                format!("{epsilon}"),
                alpha_star.to_string(),
                hp.degree_threshold.to_string(),
                hp.num_classes.to_string(),
                rounds.to_string(),
                orientation.max_out_degree(g).to_string(),
                sfd.num_colors_used().to_string(),
                lfd_ok.to_string(),
            ]);
        }
    }
    println!("Theorem 2.1 (measured): H-partition toolbox");
    println!("{}", table.render());
}
