//! Regenerates the Proposition C.1 lower bound: on the fat-path multigraph,
//! any alpha(1+eps)-forest decomposition has a tree of diameter Omega(1/eps).
//! We sweep eps, run the bounded-diameter pipeline through the `Decomposer`,
//! and print the achieved diameter next to the theoretical 1/eps scale.

use bench::TextTable;
use forest_decomp::api::{Decomposer, DecompositionRequest, FrozenGraph, ProblemKind};
use forest_decomp::DiameterTarget;
use forest_graph::generators;

fn main() {
    let multiplicity = 4usize;
    // Freeze the fat path once for the whole eps sweep (the facade's
    // `GraphInput` frozen path; one CSR conversion instead of four).
    let frozen = FrozenGraph::freeze(generators::fat_path(400, multiplicity));
    let mut table = TextTable::new(&[
        "eps",
        "colors used",
        "color budget (1+eps)alpha",
        "measured diameter",
        "1/(4 eps)",
    ]);
    for epsilon in [0.5f64, 0.25, 0.125, 0.0625] {
        let report = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_epsilon(epsilon)
                .with_alpha(multiplicity)
                .with_diameter_target(DiameterTarget::OneOverEpsilon)
                .with_seed(12345),
        )
        .run(&frozen)
        .unwrap();
        let budget = ((1.0 + epsilon) * multiplicity as f64).ceil() as usize;
        table.row(vec![
            format!("{epsilon}"),
            report.num_colors.to_string(),
            budget.to_string(),
            report.max_diameter.to_string(),
            format!("{:.1}", 1.0 / (4.0 * epsilon)),
        ]);
    }
    println!(
        "Proposition C.1 (measured): forest diameter vs eps on the fat path (alpha = {multiplicity})"
    );
    println!("(the measured diameter must sit at or above the Omega(1/eps) lower bound whenever");
    println!(" the color count stays near (1+eps)alpha)");
    println!("{}", table.render());
}
