//! Regenerates Figure 1: an augmenting sequence before and after the
//! augmentation, printed step by step, plus the Lemma 3.1 check that the
//! augmentation keeps every color class a forest.
//!
//! The instance is the textbook situation in which real recoloring is needed:
//! the uncolored edge closes a cycle in *every* color of its palette, so the
//! sequence must recolor an intermediate edge first.

use forest_decomp::augmenting::{apply_augmentation, AugmentationContext};
use forest_graph::decomposition::{validate_partial_forest_decomposition, PartialEdgeColoring};
use forest_graph::{Color, CsrGraph, GraphView, ListAssignment, MultiGraph, VertexId};

fn main() {
    // Vertices 0..=6. Color 0 is the path 0-1-2-3-4-5-6. Color 1 is the path
    // on even vertices 0-2-4-6 (through extra parallel edges). The uncolored
    // edge (0,6) is connected in both color classes, so coloring it directly
    // with either color closes a cycle.
    let n = 7usize;
    let mut g = MultiGraph::new(n);
    let mut coloring_edges: Vec<(usize, usize, usize)> = Vec::new();
    for i in 0..n - 1 {
        coloring_edges.push((i, i + 1, 0));
    }
    for i in (0..n - 2).step_by(2) {
        coloring_edges.push((i, i + 2, 1));
    }
    let mut coloring = PartialEdgeColoring::new_uncolored(coloring_edges.len() + 1);
    for (idx, &(u, v, c)) in coloring_edges.iter().enumerate() {
        let e = g.add_edge(VertexId::new(u), VertexId::new(v)).unwrap();
        assert_eq!(e.index(), idx);
        coloring.set(e, Color::new(c));
    }
    let target = g.add_edge(VertexId::new(0), VertexId::new(n - 1)).unwrap();
    let lists = ListAssignment::uniform(g.num_edges(), 2);

    // Freeze the finished topology once; the search runs over the CSR view.
    let csr = CsrGraph::from_multigraph(&g);
    let ctx = AugmentationContext::new(&csr, &lists);
    println!(
        "Figure 1: chord (0,{}) over two interleaved monochromatic paths",
        n - 1
    );
    println!(
        "  before: {} / {} edges colored, 2 colors",
        coloring.colored_count(),
        g.num_edges()
    );
    for c in 0..2usize {
        let blocked = ctx.color_path(&coloring, target, Color::new(c)).is_some();
        println!("    color c{c}: direct coloring closes a cycle = {blocked}");
    }
    let seq = ctx
        .find_augmenting_sequence(&coloring, target, 100)
        .expect("an augmenting sequence exists for this instance");
    assert!(ctx.is_valid_augmenting_sequence(&coloring, &seq));
    println!("  augmenting sequence (length {}):", seq.len());
    for (i, (edge, color)) in seq.steps.iter().enumerate() {
        let (u, v) = csr.endpoints(*edge);
        let old = coloring
            .color(*edge)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "uncolored".to_string());
        println!("    step {i}: edge {edge} = ({u},{v})   {old} -> {color}");
    }
    apply_augmentation(&mut coloring, &seq);
    validate_partial_forest_decomposition(&csr, &coloring)
        .expect("Lemma 3.1: still a partial forest decomposition");
    println!(
        "  after: {} / {} edges colored, every class verified to be a forest",
        coloring.colored_count(),
        csr.num_edges()
    );
}
