//! Regenerates Figure 3: CUT disconnecting the cluster core C' from the
//! distance-R boundary of its view C'' in every color class, and the
//! per-vertex load of the removed (leftover) edges.
//!
//! The baseline coloring comes from the `Decomposer` facade (exact matroid
//! engine); the CUT phase itself is exercised directly since the facade
//! intentionally hides per-phase machinery.

use bench::TextTable;
use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_decomp::cut::{dense_mask, execute_cut, is_good, CutState, CutStrategy};
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::{generators, CsrGraph, GraphView, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A fat path colored exactly by the centralized baseline: long
    // monochromatic paths that CUT must sever.
    let g = generators::fat_path(300, 3);
    let report = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(5),
    )
    .run(&g)
    .expect("exact decomposition");
    let coloring: PartialEdgeColoring = report
        .artifact
        .decomposition()
        .expect("forest run yields a decomposition")
        .to_partial();
    let csr = CsrGraph::from_multigraph(&g);
    let core = dense_mask(csr.num_vertices(), (0..5).map(VertexId::new));
    let radius = 12usize;
    let view = dense_mask(csr.num_vertices(), (0..5 + radius).map(VertexId::new));
    let mut table = TextTable::new(&[
        "strategy",
        "levels/prob",
        "removed",
        "forced",
        "good before forcing",
        "max load",
    ]);
    for levels in [3usize, 6, 12] {
        let mut state = CutState::new(csr.num_vertices());
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = execute_cut(
            &csr,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels },
            &mut state,
            true,
            &mut rng,
        );
        let removed = dense_mask(csr.num_edges(), outcome.all_removed());
        assert!(is_good(&csr, &coloring, &removed, &core, &view));
        table.row(vec![
            "depth-modulo".into(),
            levels.to_string(),
            outcome.removed.len().to_string(),
            outcome.forced.len().to_string(),
            outcome.good.to_string(),
            state.max_load().to_string(),
        ]);
    }
    for prob in [0.2f64, 0.5, 0.9] {
        let (orientation, _) = forest_graph::orientation::min_max_outdegree_orientation(&csr);
        let mut state = CutState::with_orientation(csr.num_vertices(), orientation);
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = execute_cut(
            &csr,
            &coloring,
            &core,
            &view,
            &CutStrategy::ConditionedSampling {
                probability: prob,
                load_cap: 2,
            },
            &mut state,
            true,
            &mut rng,
        );
        table.row(vec![
            "conditioned-sampling".into(),
            format!("{prob:.1}"),
            outcome.removed.len().to_string(),
            outcome.forced.len().to_string(),
            outcome.good.to_string(),
            state.max_load().to_string(),
        ]);
    }
    println!(
        "Figure 3: CUT(C', R) on a fat path, |C'| = 5, R = {radius}, colors = {}",
        report.num_colors
    );
    println!("{}", table.render());
}
