//! Regenerates Figure 3: CUT disconnecting the cluster core C' from the
//! distance-R boundary of its view C'' in every color class, and the
//! per-vertex load of the removed (leftover) edges.

use bench::TextTable;
use forest_decomp::cut::{execute_cut, is_good, CutState, CutStrategy};
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::{generators, matroid, Color, EdgeId, VertexId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn main() {
    // A fat path colored exactly by the centralized baseline: long
    // monochromatic paths that CUT must sever.
    let g = generators::fat_path(300, 3);
    let exact = matroid::exact_forest_decomposition(&g);
    let coloring: PartialEdgeColoring = exact.decomposition.to_partial();
    let core: HashSet<VertexId> = (0..5).map(VertexId::new).collect();
    let radius = 12usize;
    let view: HashSet<VertexId> = (0..5 + radius).map(VertexId::new).collect();
    let mut table = TextTable::new(&[
        "strategy",
        "levels/prob",
        "removed",
        "forced",
        "good before forcing",
        "max load",
    ]);
    for levels in [3usize, 6, 12] {
        let mut state = CutState::new(g.num_vertices());
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::DepthModulo { levels },
            &mut state,
            true,
            &mut rng,
        );
        let removed: HashSet<EdgeId> = outcome.all_removed().into_iter().collect();
        assert!(is_good(&g, &coloring, &removed, &core, &view));
        table.row(vec![
            "depth-modulo".into(),
            levels.to_string(),
            outcome.removed.len().to_string(),
            outcome.forced.len().to_string(),
            outcome.good.to_string(),
            state.max_load().to_string(),
        ]);
    }
    for prob in [0.2f64, 0.5, 0.9] {
        let (orientation, _) = forest_graph::orientation::min_max_outdegree_orientation(&g);
        let mut state = CutState::with_orientation(g.num_vertices(), orientation);
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = execute_cut(
            &g,
            &coloring,
            &core,
            &view,
            &CutStrategy::ConditionedSampling {
                probability: prob,
                load_cap: 2,
            },
            &mut state,
            true,
            &mut rng,
        );
        table.row(vec![
            "conditioned-sampling".into(),
            format!("{prob:.1}"),
            outcome.removed.len().to_string(),
            outcome.forced.len().to_string(),
            outcome.good.to_string(),
            state.max_load().to_string(),
        ]);
    }
    println!(
        "Figure 3: CUT(C', R) on a fat path, |C'| = 5, R = {radius}, colors = {}",
        exact.arboricity
    );
    println!("{}", table.render());
    let _ = Color::new(0);
}
