//! Regenerates the Proposition 2.4 / Corollary 2.5 measurement: diameter
//! reduction of deep forest decompositions at the cost of about
//! ceil(eps*alpha) extra forests.

use bench::TextTable;
use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_decomp::diameter_reduction::{reduce_diameter, DiameterTarget};
use forest_graph::decomposition::max_forest_diameter;
use forest_graph::generators;
use local_model::RoundLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut table = TextTable::new(&[
        "workload",
        "eps",
        "target",
        "diameter before",
        "diameter after",
        "extra colors",
        "ceil(eps*alpha)",
    ]);
    let workloads = vec![
        (
            "fat-path len=300 mult=4",
            generators::fat_path(300, 4),
            4usize,
        ),
        (
            "fat-path len=300 mult=8",
            generators::fat_path(300, 8),
            8usize,
        ),
        ("path n=400", generators::path(400), 1usize),
    ];
    let exact_decomposer = Decomposer::new(
        DecompositionRequest::new(ProblemKind::Forest).with_engine(Engine::ExactMatroid),
    );
    for (name, g, _alpha_hint) in workloads {
        let report = exact_decomposer.run(&g).expect("exact decomposition");
        let alpha = report.arboricity;
        let exact_fd = report
            .artifact
            .decomposition()
            .expect("forest runs yield decompositions")
            .clone();
        let before = max_forest_diameter(&g, &exact_fd.to_partial());
        for epsilon in [0.5f64, 0.25, 0.1] {
            for (target, label) in [
                (DiameterTarget::LogOverEpsilon, "O(log n / eps)"),
                (DiameterTarget::OneOverEpsilon, "O(1/eps)"),
            ] {
                let mut rng = StdRng::seed_from_u64(9);
                let mut ledger = RoundLedger::new();
                let out = reduce_diameter(
                    &g,
                    &exact_fd.to_partial(),
                    epsilon,
                    target,
                    &mut rng,
                    &mut ledger,
                )
                .unwrap();
                table.row(vec![
                    name.to_string(),
                    format!("{epsilon}"),
                    label.to_string(),
                    before.to_string(),
                    out.max_diameter.to_string(),
                    out.num_new_colors.to_string(),
                    ((epsilon * alpha as f64).ceil() as usize).to_string(),
                ]);
            }
        }
    }
    println!("Proposition 2.4 / Corollary 2.5 (measured): diameter reduction");
    println!("{}", table.render());
}
