//! Regenerates Corollary 1.1: (1+eps)alpha-orientations with linear 1/eps
//! dependence, compared against the exact flow orientation (alpha*) and the
//! Barenboim-Elkin H-partition orientation ((2+eps)alpha*).

use bench::{multigraph_suite, TextTable};
use forest_decomp::combine::FdOptions;
use forest_decomp::hpartition::{acyclic_orientation, h_partition};
use forest_decomp::orientation::low_outdegree_orientation;
use forest_graph::{matroid, orientation};
use local_model::RoundLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epsilon = 0.5;
    let mut table = TextTable::new(&[
        "workload", "alpha", "alpha*", "method", "max out-degree", "rounds",
    ]);
    for workload in multigraph_suite(17) {
        let g = &workload.graph;
        let alpha = matroid::arboricity(g);
        let alpha_star = orientation::pseudoarboricity(g);
        let mut rng = StdRng::seed_from_u64(23);

        // Exact (centralized) minimum orientation.
        let (exact, opt) = orientation::min_max_outdegree_orientation(g);
        table.row(vec![
            workload.name.clone(),
            alpha.to_string(),
            alpha_star.to_string(),
            "exact flow (centralized)".into(),
            opt.to_string(),
            "-".into(),
        ]);
        assert_eq!(exact.max_out_degree(g), opt);

        // Barenboim-Elkin baseline orientation.
        let mut ledger = RoundLedger::new();
        let hp = h_partition(g, epsilon, alpha_star, &mut ledger).unwrap();
        let be = acyclic_orientation(g, &hp);
        table.row(vec![
            workload.name.clone(),
            alpha.to_string(),
            alpha_star.to_string(),
            "H-partition (2+eps)a*".into(),
            be.max_out_degree(g).to_string(),
            ledger.total_rounds().to_string(),
        ]);

        // Corollary 1.1: orientation from the (1+eps)alpha-FD.
        let options = FdOptions::new(epsilon).with_alpha(workload.alpha_bound);
        let result = low_outdegree_orientation(g, &options, &mut rng).unwrap();
        table.row(vec![
            workload.name.clone(),
            alpha.to_string(),
            alpha_star.to_string(),
            "Cor 1.1 (1+eps)a".into(),
            result.max_out_degree.to_string(),
            result.ledger.total_rounds().to_string(),
        ]);
    }
    println!("Corollary 1.1 (measured): low out-degree orientations, eps = {epsilon}");
    println!("{}", table.render());
}
