//! Regenerates Corollary 1.1: (1+eps)alpha-orientations with linear 1/eps
//! dependence, compared against the exact flow orientation (alpha*) and the
//! Barenboim-Elkin baseline — both LOCAL rows driven through the `Decomposer`.

use bench::{multigraph_suite, TextTable};
use forest_decomp::api::{
    Artifact, Decomposer, DecompositionRequest, Engine, FrozenGraph, ProblemKind,
};
use forest_graph::{matroid, orientation};

fn orientation_row(report: &forest_decomp::DecompositionReport) -> (usize, usize) {
    let Artifact::Orientation { max_out_degree, .. } = &report.artifact else {
        panic!("orientation requests produce orientation artifacts");
    };
    (*max_out_degree, report.ledger.total_rounds())
}

fn main() {
    let epsilon = 0.5;
    let mut table = TextTable::new(&[
        "workload",
        "alpha",
        "alpha*",
        "method",
        "max out-degree",
        "rounds",
    ]);
    for workload in multigraph_suite(17) {
        let g = &workload.graph;
        // One freeze per workload; both LOCAL rows run via `GraphInput`.
        let frozen = FrozenGraph::freeze(g.clone());
        let alpha = matroid::arboricity(g);
        let alpha_star = orientation::pseudoarboricity(g);

        // Exact (centralized) minimum orientation.
        let (exact, opt) = orientation::min_max_outdegree_orientation(g);
        table.row(vec![
            workload.name.clone(),
            alpha.to_string(),
            alpha_star.to_string(),
            "exact flow (centralized)".into(),
            opt.to_string(),
            "-".into(),
        ]);
        assert_eq!(exact.max_out_degree(g), opt);

        // Barenboim-Elkin baseline: the (2+eps)a*-FD with each tree oriented
        // toward its root (the facade's BE orientation path; the pre-facade
        // bin measured the raw H-partition acyclic orientation instead).
        let be = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Orientation)
                .with_engine(Engine::BarenboimElkin)
                .with_epsilon(epsilon)
                .with_alpha(alpha_star)
                .with_seed(23),
        )
        .run(&frozen)
        .unwrap();
        let (be_deg, be_rounds) = orientation_row(&be);
        table.row(vec![
            workload.name.clone(),
            alpha.to_string(),
            alpha_star.to_string(),
            "BE10 FD + root orientation (2+eps)a*".into(),
            be_deg.to_string(),
            be_rounds.to_string(),
        ]);

        // Corollary 1.1: orientation from the (1+eps)alpha-FD.
        let result = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Orientation)
                .with_epsilon(epsilon)
                .with_alpha(workload.alpha_bound)
                .with_seed(23),
        )
        .run(&frozen)
        .unwrap();
        let (hsv_deg, hsv_rounds) = orientation_row(&result);
        table.row(vec![
            workload.name.clone(),
            alpha.to_string(),
            alpha_star.to_string(),
            "Cor 1.1 (1+eps)a".into(),
            hsv_deg.to_string(),
            hsv_rounds.to_string(),
        ]);
    }
    println!("Corollary 1.1 (measured): low out-degree orientations, eps = {epsilon}");
    println!("{}", table.render());
}
