//! Criterion bench for batch throughput: one `Decomposer` request executed
//! over 64 random graphs sequentially (`run` in a loop) vs fanned out across
//! all cores (`run_batch` via rayon). The request disables the validation
//! pass so the bench measures pipeline throughput, not the validators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, FrozenGraph, ProblemKind};
use forest_graph::{generators, MultiGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 64;

fn workload() -> Vec<MultiGraph> {
    let mut rng = StdRng::seed_from_u64(8);
    (0..BATCH)
        .map(|i| generators::planted_forest_union(48 + (i % 7) * 8, 3, &mut rng))
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let graphs = workload();
    let mut group = c.benchmark_group("decomposer_batch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(4));
    for engine in [Engine::HarrisSuVu, Engine::ExactMatroid] {
        let decomposer = Decomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(engine)
                .with_epsilon(0.5)
                .with_alpha(3)
                .with_seed(9)
                .without_validation(),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_run_loop", format!("{engine}/{BATCH}_graphs")),
            &graphs,
            |b, graphs| {
                b.iter(|| {
                    graphs
                        .iter()
                        .map(|g| decomposer.run(g).unwrap().num_colors)
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rayon_run_batch", format!("{engine}/{BATCH}_graphs")),
            &graphs,
            |b, graphs| {
                b.iter(|| {
                    decomposer
                        .run_batch(graphs)
                        .into_iter()
                        .map(|r| r.unwrap().num_colors)
                        .sum::<usize>()
                })
            },
        );
        // Pre-frozen topology: the conversion cost is paid once outside the
        // timed loop, which is the request-replay / seed-sweep shape.
        let frozen: Vec<FrozenGraph> = graphs.iter().cloned().map(FrozenGraph::freeze).collect();
        group.bench_with_input(
            BenchmarkId::new("rayon_run_batch_frozen", format!("{engine}/{BATCH}_graphs")),
            &frozen,
            |b, frozen| {
                b.iter(|| {
                    decomposer
                        .run_batch_frozen(frozen)
                        .into_iter()
                        .map(|r| r.unwrap().num_colors)
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
