//! Criterion benches for the Theorem 2.1 toolbox: H-partition peeling and the
//! derived star-forest decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forest_decomp::hpartition::{acyclic_orientation, h_partition, star_forest_decomposition};
use forest_graph::{generators, orientation};
use local_model::RoundLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hpartition(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem21_hpartition");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[256usize, 512] {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::planted_forest_union(n, 4, &mut rng);
        let alpha_star = orientation::pseudoarboricity(&g);
        group.bench_with_input(BenchmarkId::new("h_partition", n), &g, |b, g| {
            b.iter(|| {
                let mut ledger = RoundLedger::new();
                h_partition(g, 0.25, alpha_star, &mut ledger).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("3t_star_forest", n), &g, |b, g| {
            b.iter(|| {
                let mut ledger = RoundLedger::new();
                let hp = h_partition(g, 0.25, alpha_star, &mut ledger).unwrap();
                let o = acyclic_orientation(g, &hp);
                star_forest_decomposition(g, &o, &mut ledger)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hpartition);
criterion_main!(benches);
