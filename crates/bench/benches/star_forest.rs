//! Criterion benches for the Section 5 star-forest decomposition (Theorem 5.4
//! / Corollary 1.2) against the folklore 2-alpha construction — the same
//! `Decomposer` request with two different engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_star_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("corollary12_star_forest");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, k) in &[(96usize, 4usize), (128, 6)] {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::planted_simple_arboricity(n, k, &mut rng);
        // Validation off: time the pipelines, not the validators. Note the
        // folklore row times its whole pipeline (exact matroid partition +
        // two-coloring), unlike the pre-facade bench which hoisted the exact
        // decomposition out of the timed loop.
        let request = DecompositionRequest::new(ProblemKind::StarForest)
            .with_epsilon(0.5)
            .with_alpha(k)
            .with_seed(4)
            .without_validation();
        for (label, engine) in [
            ("thm5_4_sfd", Engine::HarrisSuVu),
            ("folklore_exact_plus_two_coloring", Engine::Folklore2Alpha),
        ] {
            let decomposer = Decomposer::new(request.clone().with_engine(engine));
            group.bench_with_input(
                BenchmarkId::new(label, format!("n{n}_a{k}")),
                g.graph(),
                |b, g| b.iter(|| decomposer.run(g).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_star_forest);
criterion_main!(benches);
