//! Criterion benches for the Section 5 star-forest decomposition (Theorem 5.4
//! / Corollary 1.2) against the folklore 2-alpha construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forest_decomp::baselines::two_color_star_forests;
use forest_decomp::star_forest::{star_forest_decomposition_simple, SfdConfig};
use forest_graph::{generators, matroid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_star_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("corollary12_star_forest");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, k) in &[(96usize, 4usize), (128, 6)] {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::planted_simple_arboricity(n, k, &mut rng);
        let exact = matroid::exact_forest_decomposition(g.graph());
        group.bench_with_input(
            BenchmarkId::new("thm5_4_sfd", format!("n{n}_a{k}")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(4);
                    star_forest_decomposition_simple(g, &SfdConfig::new(0.5).with_alpha(k), &mut rng)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("two_color_baseline", format!("n{n}_a{k}")),
            &g,
            |b, g| b.iter(|| two_color_star_forests(g.graph(), &exact.decomposition)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_star_forest);
criterion_main!(benches);
