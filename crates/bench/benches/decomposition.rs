//! Criterion benches for the forest-decomposition pipelines (Table 1 rows):
//! the (1+eps)alpha pipeline of Theorem 4.6, the Barenboim-Elkin baseline and
//! the exact centralized matroid partition — all three as `Decomposer`
//! requests differing only in the engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forest_decomp::api::{Decomposer, DecompositionRequest, Engine, ProblemKind};
use forest_graph::{generators, orientation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_forest_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_forest_decomposition");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, k) in &[(64usize, 3usize), (128, 4)] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(n, k, &mut rng);
        let alpha_star = orientation::pseudoarboricity(&g);
        let engines = [
            ("thm4_6_eps0.5", Engine::HarrisSuVu, k),
            ("barenboim_elkin", Engine::BarenboimElkin, alpha_star),
            ("exact_matroid", Engine::ExactMatroid, k),
        ];
        for (label, engine, alpha) in engines {
            // Validation off: time the pipelines, not the validators.
            let decomposer = Decomposer::new(
                DecompositionRequest::new(ProblemKind::Forest)
                    .with_engine(engine)
                    .with_epsilon(0.5)
                    .with_alpha(alpha)
                    .with_seed(2)
                    .without_validation(),
            );
            group.bench_with_input(BenchmarkId::new(label, format!("n{n}_a{k}")), &g, |b, g| {
                b.iter(|| decomposer.run(g).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_forest_decomposition);
criterion_main!(benches);
