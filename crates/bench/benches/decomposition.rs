//! Criterion benches for the forest-decomposition pipelines (Table 1 rows):
//! the (1+eps)alpha pipeline of Theorem 4.6, the Barenboim-Elkin baseline and
//! the exact centralized matroid partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forest_decomp::baselines::barenboim_elkin_forest_decomposition;
use forest_decomp::combine::{forest_decomposition, FdOptions};
use forest_graph::{generators, matroid, orientation};
use local_model::RoundLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_forest_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_forest_decomposition");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, k) in &[(64usize, 3usize), (128, 4)] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(n, k, &mut rng);
        let alpha_star = orientation::pseudoarboricity(&g);
        group.bench_with_input(
            BenchmarkId::new("thm4_6_eps0.5", format!("n{n}_a{k}")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    forest_decomposition(g, &FdOptions::new(0.5).with_alpha(k), &mut rng).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("barenboim_elkin", format!("n{n}_a{k}")),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut ledger = RoundLedger::new();
                    barenboim_elkin_forest_decomposition(g, 0.5, alpha_star, &mut ledger).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_matroid", format!("n{n}_a{k}")),
            &g,
            |b, g| b.iter(|| matroid::exact_forest_decomposition(g)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forest_decomposition);
criterion_main!(benches);
