//! Criterion benches for the Section 3 augmentation engine (Figure 1/2
//! machinery): coloring a whole graph by repeated augmenting sequences at
//! different slack levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forest_decomp::augmenting::complete_by_augmentation;
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::{generators, matroid, ListAssignment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_augmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_augmentation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::planted_forest_union(96, 3, &mut rng);
    let alpha = matroid::arboricity(&g);
    for extra in [1usize, 2, 4] {
        let lists = ListAssignment::uniform(g.num_edges(), alpha + extra);
        group.bench_with_input(
            BenchmarkId::new("complete_by_augmentation", format!("excess{extra}")),
            &lists,
            |b, lists| {
                b.iter(|| {
                    let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
                    complete_by_augmentation(&g, lists, &mut coloring, 500).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_augmentation);
criterion_main!(benches);
