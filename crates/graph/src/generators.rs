//! Synthetic graph generators used as benchmark workloads.
//!
//! The paper has no empirical section, so the benchmark harness measures the
//! algorithms on synthetic families whose arboricity is known (or cheaply
//! computable exactly): planted forest unions, fat paths (the Proposition C.1
//! lower-bound instance), Erdős–Rényi graphs, cliques, grids, hypercubes and
//! preferential-attachment graphs.

use crate::ids::VertexId;
use crate::multigraph::{MultiGraph, SimpleGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// The "fat path" multigraph of Proposition C.1: `len + 1` vertices arranged
/// on a line with `multiplicity` parallel edges between consecutive vertices.
///
/// Its arboricity equals `multiplicity`, its maximum degree is
/// `2 * multiplicity`, and any `(1+ε)·multiplicity`-forest decomposition has
/// a tree of diameter `Ω(1/ε)`.
pub fn fat_path(len: usize, multiplicity: usize) -> MultiGraph {
    let mut g = MultiGraph::new(len + 1);
    for i in 0..len {
        for _ in 0..multiplicity {
            g.add_edge(VertexId::new(i), VertexId::new(i + 1))
                .expect("valid fat path edge");
        }
    }
    g
}

/// A path with `n` vertices and `n-1` edges.
pub fn path(n: usize) -> MultiGraph {
    fat_path(n.saturating_sub(1), 1)
}

/// A cycle on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> MultiGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    MultiGraph::from_pairs(n, &pairs).expect("valid cycle")
}

/// A star with one center and `leaves` leaves.
pub fn star(leaves: usize) -> MultiGraph {
    let mut g = MultiGraph::new(leaves + 1);
    for i in 0..leaves {
        g.add_edge(VertexId::new(0), VertexId::new(i + 1))
            .expect("valid star edge");
    }
    g
}

/// The complete graph `K_n` (arboricity `⌈n/2⌉`).
pub fn complete_graph(n: usize) -> MultiGraph {
    let mut g = MultiGraph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_edge(VertexId::new(i), VertexId::new(j))
                .expect("valid clique edge");
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b: usize) -> MultiGraph {
    let mut g = MultiGraph::new(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(VertexId::new(i), VertexId::new(a + j))
                .expect("valid bipartite edge");
        }
    }
    g
}

/// An `rows × cols` grid graph (arboricity 2 for non-degenerate sizes).
pub fn grid(rows: usize, cols: usize) -> MultiGraph {
    let mut g = MultiGraph::new(rows * cols);
    let id = |r: usize, c: usize| VertexId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1)).expect("grid edge");
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c)).expect("grid edge");
            }
        }
    }
    g
}

/// The `d`-dimensional hypercube (`2^d` vertices, degree `d`).
pub fn hypercube(d: usize) -> MultiGraph {
    let n = 1usize << d;
    let mut g = MultiGraph::new(n);
    for v in 0..n {
        for b in 0..d {
            let u = v ^ (1 << b);
            if u > v {
                g.add_edge(VertexId::new(v), VertexId::new(u))
                    .expect("hypercube edge");
            }
        }
    }
    g
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer-like
/// attachment: vertex `i` attaches to a uniformly random earlier vertex).
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> MultiGraph {
    let mut g = MultiGraph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(VertexId::new(i), VertexId::new(parent))
            .expect("valid tree edge");
    }
    g
}

/// A random spanning forest over a random subset of vertices: each vertex is
/// kept with probability `keep_prob` and attached to a random earlier kept
/// vertex. Returns the forest's edge list (useful for planting partial
/// decompositions in tests and workloads).
pub fn random_partial_forest<R: Rng + ?Sized>(
    n: usize,
    keep_prob: f64,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    let mut kept: Vec<usize> = Vec::new();
    let mut edges = Vec::new();
    for v in 0..n {
        if rng.gen_bool(keep_prob) {
            if let Some(&parent) = kept.as_slice().choose(rng) {
                edges.push((v, parent));
            }
            kept.push(v);
        }
    }
    edges
}

/// A multigraph obtained as the union of `k` random spanning trees on `n`
/// vertices. Its arboricity is at most `k` and, for `n` not too small, almost
/// always exactly `k`. Parallel edges may occur (it is a multigraph).
pub fn planted_forest_union<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> MultiGraph {
    let mut g = MultiGraph::new(n);
    for _ in 0..k {
        // Random spanning tree: random permutation, attach each vertex to a
        // random earlier vertex of the permutation.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for i in 1..n {
            let j = rng.gen_range(0..i);
            g.add_edge(VertexId::new(order[i]), VertexId::new(order[j]))
                .expect("valid planted edge");
        }
    }
    g
}

/// A *simple* graph with arboricity at most `k`, obtained as the union of `k`
/// random forests with duplicate edges skipped. Used for the star-forest
/// experiments, which require simple graphs.
pub fn planted_simple_arboricity<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> SimpleGraph {
    let mut g = SimpleGraph::new(n);
    for _ in 0..k {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for i in 1..n {
            let j = rng.gen_range(0..i);
            // Skip duplicates silently: the union stays a union of forests.
            let _ = g.add_edge(VertexId::new(order[i]), VertexId::new(order[j]));
        }
    }
    g
}

/// An Erdős–Rényi `G(n, m)` simple graph with exactly `m` distinct edges
/// (requires `m ≤ n(n-1)/2`).
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> SimpleGraph {
    let max_edges = n * n.saturating_sub(1) / 2;
    assert!(
        m <= max_edges,
        "too many edges requested for a simple graph"
    );
    let mut g = SimpleGraph::new(n);
    let mut added = 0;
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if g.add_edge(VertexId::new(u), VertexId::new(v)).is_ok() {
            added += 1;
        }
    }
    g
}

/// A random multigraph with exactly `m` edges chosen uniformly (parallel
/// edges allowed, self-loops skipped).
pub fn random_multigraph<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> MultiGraph {
    assert!(
        n >= 2 || m == 0,
        "need at least two vertices to place edges"
    );
    let mut g = MultiGraph::new(n);
    let mut added = 0;
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        g.add_edge(VertexId::new(u), VertexId::new(v))
            .expect("valid random edge");
        added += 1;
    }
    g
}

/// A preferential-attachment ("social-network-like") simple graph: vertices
/// arrive one at a time and connect to `attach` distinct earlier vertices
/// chosen with probability proportional to their current degree plus one.
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    attach: usize,
    rng: &mut R,
) -> SimpleGraph {
    let mut g = SimpleGraph::new(n);
    // Repeated-endpoint list: each vertex appears once per incident edge plus
    // once unconditionally, giving the degree-plus-one attachment weights.
    let mut pool: Vec<usize> = vec![0];
    for v in 1..n {
        let targets_wanted = attach.min(v);
        // Deduplicated in insertion order: `targets` is tiny (≤ attach), and
        // a Vec keeps the edge-insertion order — and hence the generated
        // graph — identical across runs, where a HashSet would not (FL001).
        let mut targets: Vec<usize> = Vec::with_capacity(targets_wanted);
        let mut guard = 0;
        while targets.len() < targets_wanted && guard < 50 * (targets_wanted + 1) {
            let &t = pool.choose(rng).expect("pool is non-empty");
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        // Fall back to the most recent vertices if sampling stalled.
        let mut fallback = v;
        while targets.len() < targets_wanted && fallback > 0 {
            fallback -= 1;
            if !targets.contains(&fallback) {
                targets.push(fallback);
            }
        }
        for &t in &targets {
            if g.add_edge(VertexId::new(v), VertexId::new(t)).is_ok() {
                pool.push(t);
                pool.push(v);
            }
        }
        pool.push(v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matroid::arboricity;
    use crate::traversal::{connected_components, is_forest};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fat_path_shape() {
        let g = fat_path(4, 3);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(arboricity(&g), 3);
    }

    #[test]
    fn path_and_cycle_and_star() {
        let p = path(6);
        assert_eq!(p.num_edges(), 5);
        assert!(is_forest(&p, |_| true));
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(!is_forest(&c, |_| true));
        let s = star(7);
        assert_eq!(s.num_edges(), 7);
        assert_eq!(s.max_degree(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        cycle(2);
    }

    #[test]
    fn complete_graphs() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_simple());
        let b = complete_bipartite(3, 4);
        assert_eq!(b.num_edges(), 12);
        assert_eq!(b.max_degree(), 4);
    }

    #[test]
    fn grid_and_hypercube() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert!(g.is_simple());
        let h = hypercube(3);
        assert_eq!(h.num_vertices(), 8);
        assert_eq!(h.num_edges(), 12);
        assert_eq!(h.max_degree(), 3);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = random_tree(50, &mut rng);
        assert_eq!(t.num_edges(), 49);
        assert!(is_forest(&t, |_| true));
        let (_, comps) = connected_components(&t, |_| true);
        assert_eq!(comps, 1);
    }

    #[test]
    fn planted_forest_union_has_planted_arboricity() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = planted_forest_union(40, 4, &mut rng);
        assert_eq!(g.num_edges(), 4 * 39);
        let a = arboricity(&g);
        assert!(a <= 4, "arboricity {a} exceeds planted bound");
        assert!(a >= 3, "arboricity {a} suspiciously small");
    }

    #[test]
    fn planted_simple_is_simple_and_sparse() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = planted_simple_arboricity(60, 3, &mut rng);
        assert!(g.graph().is_simple());
        assert!(g.graph().num_edges() <= 3 * 59);
        assert!(arboricity(g.graph()) <= 3);
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gnm(30, 100, &mut rng);
        assert_eq!(g.graph().num_edges(), 100);
        assert!(g.graph().is_simple());
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn gnm_rejects_impossible_request() {
        let mut rng = StdRng::seed_from_u64(9);
        gnm(4, 100, &mut rng);
    }

    #[test]
    fn random_multigraph_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_multigraph(10, 200, &mut rng);
        assert_eq!(g.num_edges(), 200);
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn preferential_attachment_is_connected_and_simple() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = preferential_attachment(80, 3, &mut rng);
        assert!(g.graph().is_simple());
        let (_, comps) = connected_components(g.graph(), |_| true);
        assert_eq!(comps, 1);
        assert!(g.graph().num_edges() >= 79);
    }

    #[test]
    fn random_partial_forest_is_forest() {
        let mut rng = StdRng::seed_from_u64(6);
        let edges = random_partial_forest(50, 0.7, &mut rng);
        let g = MultiGraph::from_pairs(50, &edges).unwrap();
        assert!(is_forest(&g, |_| true));
    }
}
