//! Locality-improving vertex orderings: BFS and reverse Cuthill–McKee.
//!
//! [`CsrPartition::split`](crate::CsrPartition::split) cuts contiguous vertex
//! ranges, which is optimal for banded/grid-like vertex ids and adversarial
//! for random ids: when neighbors carry unrelated identifiers, almost every
//! edge crosses a range boundary. The classical fix from the sparse-matrix
//! world is a cheap bandwidth-reducing reordering — visit the graph by BFS
//! (or its degree-sorted reverse Cuthill–McKee refinement) so that neighbors
//! receive nearby positions, *then* split by contiguous position ranges.
//!
//! The module is built around [`VertexPermutation`], a validated bijection on
//! vertex ids that maps both ways in O(1). **Edge ids round-trip untouched**:
//! [`permute`] relabels vertices but emits edges in their original id order,
//! so edge id `e` means the same edge before and after — a decomposition
//! computed on the permuted graph applies to the original graph without any
//! translation of its per-edge color array.
//!
//! [`ReorderKind`] is the menu the `Decomposer` facade exposes (its
//! `ShardingSpec` knob): [`ReorderKind::Identity`] keeps the input order,
//! [`ReorderKind::Bfs`] / [`ReorderKind::Rcm`] compute an order here. All
//! orders are deterministic functions of the topology.

use crate::csr::{CsrGraph, CsrStorage, OwnedCsr};
use crate::ids::{u32_of, VertexId};
use crate::multigraph::MultiGraph;
use crate::view::GraphView;
use std::collections::VecDeque;

/// A validated bijection on the vertex ids `0..n`, stored in both directions
/// so [`new_id`](VertexPermutation::new_id) and
/// [`old_id`](VertexPermutation::old_id) are O(1) array reads.
///
/// Permutations relabel **vertices only**; edge ids are deliberately outside
/// their domain (see the [module docs](self)), which is what lets per-edge
/// artifacts (colorings, orientations) round-trip across [`permute`] without
/// translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPermutation {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<u32>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<u32>,
}

impl VertexPermutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<u32> = (0..u32_of(n)).collect();
        VertexPermutation {
            new_of_old: ids.clone(),
            old_of_new: ids,
        }
    }

    /// Builds a permutation from a visit order: `order[pos]` is the old id of
    /// the vertex placed at new position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_new_order(order: Vec<u32>) -> Self {
        let n = order.len();
        let mut new_of_old = vec![u32::MAX; n];
        for (pos, &old) in order.iter().enumerate() {
            assert!((old as usize) < n, "vertex {old} out of range 0..{n}");
            assert!(
                new_of_old[old as usize] == u32::MAX,
                "vertex {old} appears twice in the order"
            );
            new_of_old[old as usize] = u32_of(pos);
        }
        VertexPermutation {
            new_of_old,
            old_of_new: order,
        }
    }

    /// Number of vertices the permutation acts on.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the permutation is empty (zero vertices).
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// Whether the permutation maps every vertex to itself.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(old, &new)| u32_of(old) == new)
    }

    /// The new id of old vertex `v`.
    pub fn new_id(&self, v: VertexId) -> VertexId {
        VertexId::new(self.new_of_old[v.index()] as usize)
    }

    /// The old vertex behind new id `v`.
    pub fn old_id(&self, v: VertexId) -> VertexId {
        VertexId::new(self.old_of_new[v.index()] as usize)
    }

    /// The visit order: `as_new_order()[pos]` is the old id at new position
    /// `pos`.
    pub fn as_new_order(&self) -> &[u32] {
        &self.old_of_new
    }

    /// The inverse permutation (swaps the two directions).
    pub fn inverse(&self) -> VertexPermutation {
        VertexPermutation {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }
}

/// Which locality-improving order to compute before splitting a graph into
/// contiguous shards. The facade's `ShardingSpec` carries one of these.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReorderKind {
    /// Keep the input vertex order (the pre-PR-4 behavior; optimal when ids
    /// are already banded, e.g. grids generated row-major).
    #[default]
    Identity,
    /// Plain breadth-first order: neighbors receive nearby positions.
    Bfs,
    /// Reverse Cuthill–McKee: BFS from a pseudo-peripheral start, visiting
    /// neighbors by ascending degree, then reversed — the standard
    /// bandwidth-reduction heuristic of the sparse-matrix literature.
    Rcm,
}

impl ReorderKind {
    /// Computes the order on `g`, or `None` for [`ReorderKind::Identity`]
    /// (callers skip the permutation machinery entirely).
    pub fn order<G: GraphView>(&self, g: &G) -> Option<VertexPermutation> {
        match self {
            ReorderKind::Identity => None,
            ReorderKind::Bfs => Some(bfs_order(g)),
            ReorderKind::Rcm => Some(rcm_order(g)),
        }
    }
}

/// Runs one BFS pass appending every vertex of `start`'s component to
/// `order`, visiting each vertex's neighbors in `neighbor_rank` order
/// (`None` = incidence order). Returns the last vertex popped (an
/// eccentricity witness used by the pseudo-peripheral search).
fn bfs_component<G: GraphView>(
    g: &G,
    start: VertexId,
    seen: &mut [bool],
    order: &mut Vec<u32>,
    sort_by_degree: bool,
    scratch: &mut Vec<VertexId>,
) -> VertexId {
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        order.push(v.raw());
        last = v;
        scratch.clear();
        for u in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                scratch.push(u);
            }
        }
        if sort_by_degree {
            scratch.sort_by_key(|&u| (g.degree(u), u.index()));
        }
        queue.extend(scratch.iter().copied());
    }
    last
}

/// Plain BFS order: components are visited in ascending order of their
/// lowest vertex id, each by breadth-first search in incidence order.
/// Deterministic; `O(n + m)`.
pub fn bfs_order<G: GraphView>(g: &G) -> VertexPermutation {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut scratch = Vec::new();
    for v in g.vertices() {
        if !seen[v.index()] {
            bfs_component(g, v, &mut seen, &mut order, false, &mut scratch);
        }
    }
    VertexPermutation::from_new_order(order)
}

/// Reverse Cuthill–McKee order: per component, start from a pseudo-peripheral
/// vertex (double-BFS from the minimum-degree vertex), BFS visiting neighbors
/// by ascending degree, and finally reverse the whole order. Deterministic;
/// `O(n + m)` plus the per-vertex neighbor sorts.
pub fn rcm_order<G: GraphView>(g: &G) -> VertexPermutation {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut scratch = Vec::new();
    let mut component = Vec::new();
    for v in g.vertices() {
        if seen[v.index()] {
            continue;
        }
        // Pseudo-peripheral start: BFS from the component's minimum-degree
        // vertex, then restart from the far end it finds.
        component.clear();
        bfs_component(g, v, &mut seen, &mut component, false, &mut scratch);
        let start = component
            .iter()
            .map(|&u| VertexId::new(u as usize))
            .min_by_key(|&u| (g.degree(u), u.index()))
            .expect("component is non-empty");
        for &u in &component {
            seen[u as usize] = false;
        }
        let mut probe = Vec::with_capacity(component.len());
        let far = bfs_component(g, start, &mut seen, &mut probe, true, &mut scratch);
        for &u in &probe {
            seen[u as usize] = false;
        }
        bfs_component(g, far, &mut seen, &mut order, true, &mut scratch);
    }
    order.reverse();
    VertexPermutation::from_new_order(order)
}

/// Applies `perm` to a frozen graph: vertex `v` becomes `perm.new_id(v)`,
/// edges are emitted in their **original id order** (edge ids round-trip as
/// the identity). Equivalent to freezing the relabeled multigraph.
///
/// # Panics
///
/// Panics if `perm.len() != csr.num_vertices()`.
pub fn permute<S: CsrStorage>(csr: &CsrGraph<S>, perm: &VertexPermutation) -> OwnedCsr {
    assert_eq!(
        perm.len(),
        csr.num_vertices(),
        "permutation length must match the vertex count"
    );
    let mut g = MultiGraph::new(csr.num_vertices());
    for (_, u, v) in csr.edges() {
        g.add_edge(perm.new_id(u), perm.new_id(v))
            .expect("permuted endpoints stay in range");
    }
    OwnedCsr::from_multigraph(&g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bandwidth<G: GraphView>(g: &G, perm: &VertexPermutation) -> usize {
        g.edges()
            .map(|(_, u, v)| {
                (perm.new_id(u).index() as isize - perm.new_id(v).index() as isize).unsigned_abs()
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn identity_round_trips() {
        let p = VertexPermutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.inverse(), p);
        for i in 0..5 {
            let v = VertexId::new(i);
            assert_eq!(p.new_id(v), v);
            assert_eq!(p.old_id(v), v);
        }
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_is_rejected() {
        VertexPermutation::from_new_order(vec![0, 0, 1]);
    }

    #[test]
    fn bfs_and_rcm_are_permutations() {
        let mut rng = StdRng::seed_from_u64(3);
        for g in [
            generators::path(20),
            generators::grid(5, 7),
            generators::planted_forest_union(40, 3, &mut rng),
            MultiGraph::new(0),
            MultiGraph::new(4),
        ] {
            for perm in [bfs_order(&g), rcm_order(&g)] {
                assert_eq!(perm.len(), g.num_vertices());
                let mut hit = vec![false; g.num_vertices()];
                for v in g.vertices() {
                    let new = perm.new_id(v);
                    assert!(!hit[new.index()]);
                    hit[new.index()] = true;
                    assert_eq!(perm.old_id(new), v);
                }
            }
        }
    }

    #[test]
    fn rcm_reduces_bandwidth_of_a_shuffled_grid() {
        // A grid whose vertex ids are scrambled: the identity order has huge
        // bandwidth, RCM restores a banded layout.
        let g = generators::grid(12, 12);
        let n = g.num_vertices();
        let mut rng = StdRng::seed_from_u64(9);
        let mut shuffle: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..i + 1);
            shuffle.swap(i, j);
        }
        let scramble = VertexPermutation::from_new_order(shuffle);
        let scrambled = permute(&crate::CsrGraph::from_multigraph(&g), &scramble);
        let identity = VertexPermutation::identity(n);
        let rcm = rcm_order(&scrambled);
        assert!(
            bandwidth(&scrambled, &rcm) < bandwidth(&scrambled, &identity) / 2,
            "rcm {} vs identity {}",
            bandwidth(&scrambled, &rcm),
            bandwidth(&scrambled, &identity)
        );
    }

    #[test]
    fn permute_preserves_edge_ids_and_structure() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::planted_forest_union(30, 2, &mut rng);
        let csr = crate::CsrGraph::from_multigraph(&g);
        let perm = rcm_order(&csr);
        let permuted = permute(&csr, &perm);
        assert_eq!(permuted.num_vertices(), g.num_vertices());
        assert_eq!(permuted.num_edges(), g.num_edges());
        for (e, u, v) in csr.edges() {
            let (pu, pv) = permuted.endpoints(e);
            assert_eq!((pu, pv), (perm.new_id(u), perm.new_id(v)));
        }
        // Degrees are carried along with the relabeling.
        for v in g.vertices() {
            assert_eq!(permuted.degree(perm.new_id(v)), g.degree(v));
        }
    }
}
