//! The [`GraphView`] abstraction: read-only topology access shared by every
//! graph representation in the workspace.
//!
//! All decomposition algorithms are round-synchronous scans over *static*
//! topology: they never add or remove edges while running. [`GraphView`]
//! captures exactly the read surface they need — vertex/edge counts,
//! endpoints, degrees and `(neighbor, edge)` incidence iteration — so that
//! each algorithm can run unchanged over the mutable adjacency-list
//! [`MultiGraph`](crate::MultiGraph) *or* the frozen cache-friendly
//! [`CsrGraph`](crate::CsrGraph).
//!
//! Implementations must agree on identifier semantics: vertices are
//! `0..num_vertices()`, edges `0..num_edges()`, and
//! [`incidences`](GraphView::incidences) yields each incident edge exactly
//! once per endpoint, in a deterministic order. `CsrGraph::from_multigraph`
//! preserves `MultiGraph`'s incidence order (ascending edge id per vertex),
//! so an algorithm produces *identical* output on both representations.

use crate::ids::{EdgeId, VertexId};

/// Read-only access to a frozen (or momentarily-frozen) graph topology.
///
/// The five required methods are the primitive accessors; everything else is
/// derived. Implementors with cheaper representations (e.g. slice-backed CSR)
/// should override the derived iterators where it matters.
pub trait GraphView {
    /// Number of vertices `n`; vertices are identified by `0..n`.
    fn num_vertices(&self) -> usize;

    /// Number of edges `m` (parallel edges counted individually); edges are
    /// identified by `0..m`.
    fn num_edges(&self) -> usize;

    /// Endpoints `(u, v)` of `e` in insertion order.
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId);

    /// Degree of `v` (parallel edges counted with multiplicity).
    fn degree(&self, v: VertexId) -> usize;

    /// Iterates over the `(neighbor, edge)` incidences of `v`, in the
    /// representation's canonical deterministic order.
    fn incidences(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_;

    /// Returns `true` if the graph has no vertices.
    fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// Iterates over the neighbors of `v` (with multiplicity).
    fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.incidences(v).map(|(u, _)| u)
    }

    /// Iterates over the incident edges of `v`.
    fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.incidences(v).map(|(_, e)| e)
    }

    /// Iterates over all vertices.
    fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices()).map(VertexId::new)
    }

    /// Iterates over all edge identifiers.
    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges()).map(EdgeId::new)
    }

    /// Iterates over all edges as `(edge, u, v)` triples.
    fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edge_ids().map(|e| {
            let (u, v) = self.endpoints(e);
            (e, u, v)
        })
    }

    /// The endpoint of `e` other than `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("vertex {v} is not an endpoint of edge {e}");
        }
    }

    /// Returns `true` if `v` is an endpoint of `e`.
    fn is_endpoint(&self, e: EdgeId, v: VertexId) -> bool {
        let (a, b) = self.endpoints(e);
        a == v || b == v
    }

    /// Maximum degree `Δ` (0 for an edgeless graph).
    fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Total number of incidences, i.e. `2m`.
    fn total_degree(&self) -> usize {
        2 * self.num_edges()
    }

    /// Average degree `2m / n` (0 for the empty graph).
    fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_degree() as f64 / self.num_vertices() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::multigraph::MultiGraph;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// A generic consumer: works identically over both representations.
    fn degree_sum<G: GraphView>(g: &G) -> usize {
        g.vertices().map(|x| g.degree(x)).sum()
    }

    #[test]
    fn derived_methods_agree_across_representations() {
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (0, 1), (2, 3)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(degree_sum(&g), degree_sum(&csr));
        assert_eq!(GraphView::max_degree(&g), GraphView::max_degree(&csr));
        assert_eq!(GraphView::total_degree(&csr), 8);
        assert!((GraphView::average_degree(&csr) - 2.0).abs() < 1e-9);
        assert!(GraphView::is_endpoint(&csr, EdgeId::new(0), v(1)));
        assert_eq!(GraphView::other_endpoint(&csr, EdgeId::new(3), v(3)), v(2));
        let edges_mg: Vec<_> = GraphView::edges(&g).collect();
        let edges_csr: Vec<_> = GraphView::edges(&csr).collect();
        assert_eq!(edges_mg, edges_csr);
        for x in GraphView::vertices(&g) {
            let inc_mg: Vec<_> = GraphView::incidences(&g, x).collect();
            let inc_csr: Vec<_> = GraphView::incidences(&csr, x).collect();
            assert_eq!(inc_mg, inc_csr, "incidence order must match at {x}");
        }
    }

    #[test]
    fn empty_view_edge_cases() {
        let g = MultiGraph::new(0);
        let csr = CsrGraph::from_multigraph(&g);
        assert!(GraphView::is_empty(&csr));
        assert_eq!(GraphView::max_degree(&csr), 0);
        assert_eq!(GraphView::average_degree(&csr), 0.0);
    }
}
