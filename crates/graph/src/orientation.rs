//! Edge orientations and exact minimum-out-degree orientations.
//!
//! A `k`-orientation (every vertex has out-degree at most `k`) is equivalent
//! to a `k`-pseudo-forest decomposition, and the minimum achievable `k` equals
//! the pseudo-arboricity `α*` of the graph (Picard–Queyranne). Corollary 1.1
//! of the paper produces `(1+ε)α`-orientations from bounded-diameter forest
//! decompositions; this module provides the representation plus an exact
//! flow-based reference orientation used as ground truth in tests and
//! benchmarks.

use crate::error::GraphError;
use crate::flow::FlowNetwork;
use crate::ids::{EdgeId, VertexId};
use crate::view::GraphView;

/// An orientation of every edge of a [`MultiGraph`]: each edge is directed
/// away from its *tail* vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Orientation {
    tail: Vec<VertexId>,
}

impl Orientation {
    /// Creates an orientation from an explicit tail vector (entry `i` is the
    /// origin of edge `i`).
    ///
    /// # Errors
    ///
    /// Returns an error if the vector length does not match the number of
    /// edges or some tail is not an endpoint of its edge.
    pub fn from_tails<G: GraphView>(g: &G, tails: Vec<VertexId>) -> Result<Self, GraphError> {
        if tails.len() != g.num_edges() {
            return Err(GraphError::EdgeOutOfRange {
                edge: EdgeId::new(tails.len()),
                num_edges: g.num_edges(),
            });
        }
        for (e, &t) in tails.iter().enumerate() {
            let id = EdgeId::new(e);
            if !g.is_endpoint(id, t) {
                return Err(GraphError::VertexOutOfRange {
                    vertex: t,
                    num_vertices: g.num_vertices(),
                });
            }
        }
        Ok(Orientation { tail: tails })
    }

    /// Creates an orientation by evaluating `choose_tail` on every edge.
    ///
    /// `choose_tail` receives the edge id and its endpoints and must return
    /// one of the two endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `choose_tail` returns a vertex that is not an endpoint.
    pub fn from_fn<G, F>(g: &G, mut choose_tail: F) -> Self
    where
        G: GraphView,
        F: FnMut(EdgeId, VertexId, VertexId) -> VertexId,
    {
        let tails: Vec<VertexId> = g
            .edges()
            .map(|(e, u, v)| {
                let t = choose_tail(e, u, v);
                assert!(t == u || t == v, "tail must be an endpoint of the edge");
                t
            })
            .collect();
        Orientation { tail: tails }
    }

    /// The vertex the edge points away from.
    #[inline]
    pub fn tail(&self, e: EdgeId) -> VertexId {
        self.tail[e.index()]
    }

    /// The vertex the edge points toward.
    #[inline]
    pub fn head<G: GraphView>(&self, g: &G, e: EdgeId) -> VertexId {
        g.other_endpoint(e, self.tail(e))
    }

    /// Returns `true` if `e` is oriented out of `v`.
    #[inline]
    pub fn is_out_edge(&self, e: EdgeId, v: VertexId) -> bool {
        self.tail(e) == v
    }

    /// Out-degree of every vertex.
    pub fn out_degrees<G: GraphView>(&self, g: &G) -> Vec<usize> {
        let mut deg = vec![0usize; g.num_vertices()];
        for &t in &self.tail {
            deg[t.index()] += 1;
        }
        deg
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree<G: GraphView>(&self, g: &G) -> usize {
        self.out_degrees(g).into_iter().max().unwrap_or(0)
    }

    /// Out-edges of `v`.
    pub fn out_edges<G: GraphView>(&self, g: &G, v: VertexId) -> Vec<EdgeId> {
        g.incident_edges(v)
            .filter(|&e| self.is_out_edge(e, v))
            .collect()
    }

    /// In-edges of `v`.
    pub fn in_edges<G: GraphView>(&self, g: &G, v: VertexId) -> Vec<EdgeId> {
        g.incident_edges(v)
            .filter(|&e| !self.is_out_edge(e, v))
            .collect()
    }

    /// Out-neighbors of `v` (with multiplicity).
    pub fn out_neighbors<G: GraphView>(&self, g: &G, v: VertexId) -> Vec<VertexId> {
        self.out_edges(g, v)
            .into_iter()
            .map(|e| g.other_endpoint(e, v))
            .collect()
    }

    /// Returns `true` if the directed graph induced by the orientation is
    /// acyclic (checked with Kahn's algorithm).
    pub fn is_acyclic<G: GraphView>(&self, g: &G) -> bool {
        self.topological_order(g).is_some()
    }

    /// Returns a topological order of the vertices in the oriented graph, or
    /// `None` if it contains a directed cycle.
    pub fn topological_order<G: GraphView>(&self, g: &G) -> Option<Vec<VertexId>> {
        let n = g.num_vertices();
        let mut indeg = vec![0usize; n];
        for e in g.edge_ids() {
            indeg[self.head(g, e).index()] += 1;
        }
        let mut queue: std::collections::VecDeque<VertexId> =
            g.vertices().filter(|v| indeg[v.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for e in self.out_edges(g, u) {
                let w = self.head(g, e);
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    queue.push_back(w);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Reverses the orientation of a single edge.
    pub fn flip<G: GraphView>(&mut self, g: &G, e: EdgeId) {
        self.tail[e.index()] = g.other_endpoint(e, self.tail[e.index()]);
    }
}

/// Tries to orient `g` so that every vertex has out-degree at most `k`, using
/// a bipartite edge/vertex flow gadget. Returns `None` if no such orientation
/// exists (i.e. `k` is below the pseudo-arboricity).
pub fn bounded_outdegree_orientation<G: GraphView>(g: &G, k: usize) -> Option<Orientation> {
    let m = g.num_edges();
    let n = g.num_vertices();
    if m == 0 {
        return Some(Orientation { tail: Vec::new() });
    }
    // Nodes: 0 = source, 1..=m edge nodes, m+1..=m+n vertex nodes, m+n+1 sink.
    let source = 0usize;
    let edge_node = |e: usize| 1 + e;
    let vertex_node = |v: usize| 1 + m + v;
    let sink = 1 + m + n;
    let mut net = FlowNetwork::new(sink + 1);
    let mut choice_handles = Vec::with_capacity(m);
    for (e, u, v) in g.edges() {
        net.add_edge(source, edge_node(e.index()), 1);
        let hu = net.add_edge(edge_node(e.index()), vertex_node(u.index()), 1);
        let hv = net.add_edge(edge_node(e.index()), vertex_node(v.index()), 1);
        choice_handles.push((hu, hv));
    }
    for v in 0..n {
        net.add_edge(vertex_node(v), sink, k as i64);
    }
    let flow = net.max_flow(source, sink);
    if flow < m as i64 {
        return None;
    }
    let mut tails = Vec::with_capacity(m);
    for (e, u, v) in g.edges() {
        let (hu, _hv) = choice_handles[e.index()];
        // Flow on the edge->u arc means u absorbs the edge, i.e. u is the tail.
        if net.flow_on(hu) > 0 {
            tails.push(u);
        } else {
            tails.push(v);
        }
    }
    Some(Orientation { tail: tails })
}

/// Computes an exact minimum-max-out-degree orientation and returns it along
/// with the optimum value, which equals the pseudo-arboricity `α*` of `g`
/// (0 for an edgeless graph).
pub fn min_max_outdegree_orientation<G: GraphView>(g: &G) -> (Orientation, usize) {
    if g.num_edges() == 0 {
        return (Orientation { tail: Vec::new() }, 0);
    }
    let mut lo = 1usize;
    let mut hi = g.max_degree();
    let mut best = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        match bounded_outdegree_orientation(g, mid) {
            Some(o) => {
                best = Some((o, mid));
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
            None => lo = mid + 1,
        }
    }
    best.expect("max_degree always admits an orientation")
}

/// Exact pseudo-arboricity `α*` (minimum `k` admitting a `k`-orientation).
pub fn pseudoarboricity<G: GraphView>(g: &G) -> usize {
    min_max_outdegree_orientation(g).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::MultiGraph;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn cycle(n: usize) -> MultiGraph {
        let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        MultiGraph::from_pairs(n, &pairs).unwrap()
    }

    #[test]
    fn from_tails_validates() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let o = Orientation::from_tails(&g, vec![v(0), v(2)]).unwrap();
        assert_eq!(o.tail(EdgeId::new(0)), v(0));
        assert_eq!(o.head(&g, EdgeId::new(0)), v(1));
        assert!(Orientation::from_tails(&g, vec![v(0)]).is_err());
        assert!(Orientation::from_tails(&g, vec![v(0), v(0)]).is_err());
    }

    #[test]
    fn out_degrees_and_edges() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let o = Orientation::from_fn(&g, |_, u, _| u);
        assert_eq!(o.out_degrees(&g), vec![2, 1, 0]);
        assert_eq!(o.max_out_degree(&g), 2);
        assert_eq!(o.out_edges(&g, v(0)).len(), 2);
        assert_eq!(o.in_edges(&g, v(2)).len(), 2);
        assert_eq!(o.out_neighbors(&g, v(1)), vec![v(2)]);
    }

    #[test]
    fn acyclicity_detection() {
        let g = cycle(3);
        // Orient around the cycle: cyclic.
        let o = Orientation::from_fn(&g, |_, u, _| u);
        assert!(!o.is_acyclic(&g));
        // Orient both edges of a path out of the middle: acyclic.
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let o = Orientation::from_fn(&g, |_, u, w| if u == v(1) { u } else { w });
        assert!(o.is_acyclic(&g));
        let order = o.topological_order(&g).unwrap();
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn flip_reverses_edge() {
        let g = MultiGraph::from_pairs(2, &[(0, 1)]).unwrap();
        let mut o = Orientation::from_fn(&g, |_, u, _| u);
        assert_eq!(o.tail(EdgeId::new(0)), v(0));
        o.flip(&g, EdgeId::new(0));
        assert_eq!(o.tail(EdgeId::new(0)), v(1));
    }

    #[test]
    fn bounded_orientation_on_cycle() {
        let g = cycle(5);
        // A cycle has pseudo-arboricity 1.
        let o = bounded_outdegree_orientation(&g, 1).unwrap();
        assert_eq!(o.max_out_degree(&g), 1);
        assert!(bounded_outdegree_orientation(&g, 0).is_none());
    }

    #[test]
    fn min_max_outdegree_on_complete_graph() {
        // K4 has 6 edges, 4 vertices: max density 6/4 = 1.5, so alpha* = 2.
        let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let g = MultiGraph::from_pairs(4, &pairs).unwrap();
        let (o, k) = min_max_outdegree_orientation(&g);
        assert_eq!(k, 2);
        assert_eq!(o.max_out_degree(&g), 2);
        assert_eq!(pseudoarboricity(&g), 2);
    }

    #[test]
    fn pseudoarboricity_of_tree_is_one() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(pseudoarboricity(&g), 1);
    }

    #[test]
    fn pseudoarboricity_of_multigraph_path() {
        // Fat path: 3 parallel edges between consecutive vertices.
        let mut g = MultiGraph::new(4);
        for i in 0..3usize {
            for _ in 0..3 {
                g.add_edge(v(i), v(i + 1)).unwrap();
            }
        }
        // Densest subgraph is the whole fat path: 9 edges / 4 vertices = 2.25,
        // so alpha* = ceil(2.25) = 3.
        assert_eq!(pseudoarboricity(&g), 3);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = MultiGraph::new(3);
        assert_eq!(pseudoarboricity(&g), 0);
        let (o, k) = min_max_outdegree_orientation(&g);
        assert_eq!(k, 0);
        assert_eq!(o.max_out_degree(&g), 0);
    }
}
