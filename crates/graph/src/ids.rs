//! Strongly-typed identifiers for vertices, edges and colors.
//!
//! All identifiers are thin wrappers around `u32` indices into the owning
//! [`MultiGraph`](crate::MultiGraph) (or into a color space). Using newtypes
//! keeps vertex, edge and color indices from being mixed up silently.

use std::fmt;

/// Audited narrowing of a dense index to `u32`.
///
/// Every identifier in the workspace is internally `u32` (graphs are bounded
/// at `u32::MAX` vertices/edges), so this conversion is lossless for every
/// reachable index; the debug assertion documents and enforces that bound.
/// Code outside this helper must not write bare `expr as u32` — the FL004
/// lint rejects it.
#[inline]
pub fn u32_of(index: usize) -> u32 {
    debug_assert!(index <= u32::MAX as usize, "index {index} overflows u32");
    // forest-lint: allow(FL004) the single audited usize->u32 narrowing; bound asserted above
    index as u32
}

/// Identifier of a vertex in a [`MultiGraph`](crate::MultiGraph).
///
/// Vertices are numbered densely from `0` to `n - 1`.
///
/// ```
/// use forest_graph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(u32);

/// Identifier of an edge in a [`MultiGraph`](crate::MultiGraph).
///
/// Edges are numbered densely from `0` to `m - 1` in insertion order. Parallel
/// edges receive distinct identifiers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

/// A color in a forest-decomposition / list-coloring color space.
///
/// Colors are abstract labels; the decomposition algorithms interpret a color
/// class as the set of edges assigned that color.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Color(u32);

macro_rules! impl_id {
    ($ty:ident, $name:expr) => {
        impl $ty {
            /// Creates an identifier from a dense index.
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize, "{} index overflow", $name);
                $ty(crate::ids::u32_of(index))
            }

            /// Returns the dense index wrapped by this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<usize> for $ty {
            fn from(index: usize) -> Self {
                $ty::new(index)
            }
        }

        impl From<$ty> for usize {
            fn from(id: $ty) -> usize {
                id.index()
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $name, self.0)
            }
        }
    };
}

impl_id!(VertexId, "v");
impl_id!(EdgeId, "e");
impl_id!(Color, "c");

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vertex_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(VertexId::from(42usize), v);
    }

    #[test]
    fn edge_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(EdgeId::from(7usize), e);
    }

    #[test]
    fn color_roundtrip() {
        let c = Color::new(0);
        assert_eq!(c.index(), 0);
        assert_eq!(Color::default(), c);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(VertexId::new(1));
        set.insert(VertexId::new(2));
        set.insert(VertexId::new(1));
        assert_eq!(set.len(), 2);
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(Color::new(3) > Color::new(1));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(VertexId::new(5).to_string(), "v5");
        assert_eq!(EdgeId::new(5).to_string(), "e5");
        assert_eq!(Color::new(5).to_string(), "c5");
    }
}
