//! Disjoint-set union (union-find) with path compression and union by rank.
//!
//! Used by spanning-forest extraction, forest validation and the matroid
//! partition baseline.

use crate::ids::u32_of;

/// A disjoint-set union structure over `0..n`.
///
/// ```
/// use forest_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already connected
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.num_components(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    /// Compact `u32` parents: half the memory traffic of `usize` — these
    /// arrays are the hot working set of the matroid fast path and shard
    /// stitching, so cache residency matters more than headroom (graphs are
    /// `u32`-indexed throughout the workspace anyway).
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates a structure with `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (the workspace's graphs are
    /// `u32`-indexed everywhere).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind is u32-indexed");
        UnionFind {
            parent: (0..u32_of(n)).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Builds a structure over `0..n` with every pair in `edges` unioned —
    /// the from-scratch ground truth the dynamic-connectivity tests compare
    /// against, and the one-liner behind per-color forest rebuilds.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut uf = UnionFind::new(n);
        for (x, y) in edges {
            uf.union(x, y);
        }
        uf
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = u32_of(x);
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = u32_of(x);
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merges the sets containing `x` and `y`.
    ///
    /// Returns `true` if the sets were previously distinct.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = u32_of(hi);
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Resets the structure to `n` singletons, reusing allocations.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = u32_of(i);
        }
        self.rank.fill(0);
        self.components = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert_eq!(uf.num_components(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_components() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.num_components(), 4);
    }

    #[test]
    fn chain_unions_produce_single_component() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.reset();
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
    }
}
