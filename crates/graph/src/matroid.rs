//! Exact centralized forest decomposition via matroid partition.
//!
//! Gabow and Westermann [GW92] showed that an exact `α`-forest decomposition
//! can be computed in polynomial time using matroid partition for the graphic
//! matroid. This module implements the classical augmenting-path matroid
//! partition algorithm: edges are inserted one at a time, and when an edge
//! cannot be placed directly into one of the `k` forests, a shortest
//! augmenting sequence of exchanges is found by BFS over the exchange graph.
//!
//! The paper's distributed algorithms are benchmarked against this exact
//! baseline, and [`arboricity`] (the minimum number of forests) serves as the
//! ground-truth `α` for every experiment. Everything here is generic over
//! [`GraphView`], so the same code runs on a mutable
//! [`MultiGraph`](crate::MultiGraph), an owned CSR, or a zero-copy
//! [`CsrRef`](crate::CsrRef) shard view — the thaw-free sharded pipeline
//! feeds shard views straight in.

use crate::connectivity::ColorConnectivity;
use crate::decomposition::{ForestDecomposition, PartialEdgeColoring};
use crate::ids::{Color, EdgeId, VertexId};
use crate::traversal::path_between;
use crate::view::GraphView;
use std::collections::VecDeque;

/// One applied exchange step: `edge` moved from `old` (`None` for the
/// freshly-inserted root of the search) to `new`.
pub type ExchangeStep = (EdgeId, Option<Color>, Color);

/// Attempts to color `edge` in the partial `k`-forest partition `coloring` by
/// finding a shortest augmenting sequence in the exchange graph, and reports
/// exactly which edges it recolored.
///
/// On success the coloring is updated in place (remaining a valid partial
/// forest partition) and the applied [`ExchangeStep`]s come back in
/// application order, `edge` first — callers maintaining per-color
/// connectivity replay them as cheap edits
/// ([`DynamicColorConnectivity::recolor`](crate::DynamicColorConnectivity))
/// or invalidate only the touched colors
/// ([`ColorConnectivity::rebuild_colors`]).
///
/// `max_visited` bounds the BFS (number of dequeued exchange-graph edges);
/// when the bound trips the search gives up with `None` and the coloring is
/// untouched, which makes bounded exchange passes (exact-α stitching) safe
/// to abort mid-workload. Pass `usize::MAX` for the exact search: then
/// `None` certifies that the colored edges plus `edge` cannot be
/// partitioned into `k` forests.
pub fn try_augment_traced<G: GraphView>(
    g: &G,
    coloring: &mut PartialEdgeColoring,
    edge: EdgeId,
    k: usize,
    max_visited: usize,
) -> Option<Vec<ExchangeStep>> {
    // BFS over edges of the exchange graph. `prev[e]` records the edge from
    // which `e` was reached.
    let m = g.num_edges();
    let mut visited = vec![false; m];
    let mut prev: Vec<Option<EdgeId>> = vec![None; m];
    let mut queue = VecDeque::new();
    visited[edge.index()] = true;
    queue.push_back(edge);
    let mut popped = 0usize;

    while let Some(f) = queue.pop_front() {
        popped += 1;
        if popped > max_visited {
            return None;
        }
        let (u, v) = g.endpoints(f);
        let f_color = coloring.color(f);
        for i in 0..k {
            let color = Color::new(i);
            if f_color == Some(color) {
                continue;
            }
            // The path between f's endpoints inside forest i (not using f,
            // which is not in forest i anyway).
            let path = path_between(g, u, v, |x| x != f && coloring.color(x) == Some(color));
            match path {
                None => {
                    // Sink: f can be added to forest i directly. Walk the BFS
                    // tree backwards performing the exchanges.
                    let mut steps = Vec::new();
                    let mut cur = f;
                    let mut target = color;
                    loop {
                        let old = coloring.color(cur);
                        coloring.set(cur, target);
                        steps.push((cur, old, target));
                        match (cur == edge, old) {
                            (true, _) => {
                                steps.reverse();
                                return Some(steps);
                            }
                            (false, Some(old_color)) => {
                                target = old_color;
                                cur = prev[cur.index()]
                                    .expect("every non-root BFS edge has a predecessor");
                            }
                            (false, None) => {
                                unreachable!("only the root of the BFS is uncolored")
                            }
                        }
                    }
                }
                Some(path_edges) => {
                    for x in path_edges {
                        if !visited[x.index()] {
                            visited[x.index()] = true;
                            prev[x.index()] = Some(f);
                            queue.push_back(x);
                        }
                    }
                }
            }
        }
    }
    None
}

/// [`try_augment_traced`] without the trace or the bound: returns `true` on
/// success, `false` certifying that the already-colored edges plus `edge`
/// cannot be partitioned into `k` forests.
pub fn try_augment<G: GraphView>(
    g: &G,
    coloring: &mut PartialEdgeColoring,
    edge: EdgeId,
    k: usize,
) -> bool {
    try_augment_traced(g, coloring, edge, k, usize::MAX).is_some()
}

/// The colors an exchange touched: every old and new color of its steps.
fn touched_colors(steps: &[ExchangeStep]) -> impl Iterator<Item = Color> + '_ {
    steps
        .iter()
        .flat_map(|&(_, old, new)| old.into_iter().chain(std::iter::once(new)))
}

/// Attempts to partition all edges of `g` into at most `k` forests.
///
/// Returns `None` if no such partition exists (i.e. `k < α(G)`), otherwise a
/// complete forest decomposition using colors `0..k`.
pub fn forest_partition_with<G: GraphView>(g: &G, k: usize) -> Option<ForestDecomposition> {
    if g.num_edges() == 0 {
        return Some(ForestDecomposition::from_colors(Vec::new()));
    }
    if k == 0 {
        return None;
    }
    let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
    let mut connectivity = ColorConnectivity::new(g.num_vertices());
    for (e, u, v) in g.edges() {
        // Fast path: some forest keeps u and v apart, so e slots right in.
        if let Some(c) = connectivity.first_free_color(g, &coloring, None, k, u, v) {
            coloring.set(e, c);
            connectivity.insert(c, u, v);
            continue;
        }
        match try_augment_traced(g, &mut coloring, e, k, usize::MAX) {
            None => return None,
            Some(steps) => {
                // Only the colors the exchange walked through are stale.
                connectivity.rebuild_colors(g, &coloring, None, touched_colors(&steps));
            }
        }
    }
    Some(
        coloring
            .into_complete()
            .expect("all edges colored by construction"),
    )
}

/// Result of the exact minimum forest partition.
#[derive(Clone, Debug)]
pub struct ExactForestDecomposition {
    /// The decomposition into `arboricity` forests.
    pub decomposition: ForestDecomposition,
    /// The arboricity `α(G)` (number of forests used).
    pub arboricity: usize,
    /// Per-color union-finds exactly covering
    /// [`ExactForestDecomposition::decomposition`] — the partition's own
    /// working cache, completed and handed back so shard pipelines stitch
    /// through it instead of re-unioning every edge.
    pub connectivity: ColorConnectivity,
}

/// Computes the exact arboricity `α(G)` and an `α(G)`-forest decomposition
/// using incremental matroid partition.
///
/// The search starts from the Nash-Williams lower bound `⌈m/(n-1)⌉` and
/// increases `k` only when an edge provably cannot be accommodated, so the
/// number of restarts is at most `α` minus the lower bound.
pub fn exact_forest_decomposition<G: GraphView>(g: &G) -> ExactForestDecomposition {
    let m = g.num_edges();
    let n = g.num_vertices();
    if m == 0 {
        return ExactForestDecomposition {
            decomposition: ForestDecomposition::from_colors(Vec::new()),
            arboricity: 0,
            connectivity: ColorConnectivity::new(n),
        };
    }
    // Whole-graph Nash-Williams lower bound. (The max over subgraphs can be
    // larger, but the incremental loop below will simply bump k when needed.)
    let mut k = m.div_ceil(n.saturating_sub(1).max(1)).max(1);
    let mut coloring = PartialEdgeColoring::new_uncolored(m);
    let mut connectivity = ColorConnectivity::new(n);
    for (e, u, v) in g.edges() {
        // Fast path: some forest keeps u and v apart, so e slots right in.
        if let Some(c) = connectivity.first_free_color(g, &coloring, None, k, u, v) {
            coloring.set(e, c);
            connectivity.insert(c, u, v);
            continue;
        }
        loop {
            match try_augment_traced(g, &mut coloring, e, k, usize::MAX) {
                Some(steps) => {
                    // Only the colors the exchange walked through are stale.
                    connectivity.rebuild_colors(g, &coloring, None, touched_colors(&steps));
                    break;
                }
                // Certified: the colored edges plus e need more than k
                // forests.
                None => k += 1,
            }
        }
    }
    // Complete the cache: colors the fast path never queried are built now,
    // so the returned forests exactly cover the final coloring.
    for c in 0..k {
        connectivity.forest(g, &coloring, None, Color::new(c));
    }
    let decomposition = coloring
        .into_complete()
        .expect("all edges colored by construction");
    ExactForestDecomposition {
        decomposition,
        arboricity: k,
        connectivity,
    }
}

/// Exact arboricity `α(G)` of a multigraph (0 for an edgeless graph).
///
/// By Nash-Williams, `α(G) = max_H ⌈|E(H)| / (|V(H)|-1)⌉` over subgraphs with
/// at least two vertices; this function computes it constructively via matroid
/// partition.
pub fn arboricity<G: GraphView>(g: &G) -> usize {
    exact_forest_decomposition(g).arboricity
}

/// Nash-Williams whole-graph lower bound `⌈m/(n-1)⌉` (0 when `m = 0`).
pub fn arboricity_lower_bound<G: GraphView>(g: &G) -> usize {
    let m = g.num_edges();
    let n = g.num_vertices();
    if m == 0 || n < 2 {
        0
    } else {
        m.div_ceil(n - 1)
    }
}

/// Decomposes the graph into the minimum number of forests and reports how
/// many vertices each rooted tree spans. Convenience wrapper used by examples.
pub fn minimum_forest_count<G: GraphView>(g: &G) -> usize {
    arboricity(g)
}

/// A vertex-labelled witness that the arboricity is at least `bound`:
/// a subgraph `H` with `|E(H)| > (bound - 1) * (|V(H)| - 1)`.
///
/// Searching all subgraphs is exponential in general, so this helper only
/// checks the whole graph and each connected component — enough for the
/// planted workloads used in tests. Returns `None` when no witness is found
/// at this granularity.
pub fn density_witness<G: GraphView>(g: &G, bound: usize) -> Option<Vec<VertexId>> {
    if bound == 0 {
        return Some(g.vertices().collect());
    }
    let check = |vertices: &[VertexId]| -> bool {
        if vertices.len() < 2 {
            return false;
        }
        let in_set: std::collections::HashSet<VertexId> = vertices.iter().copied().collect();
        let edges = g
            .edges()
            .filter(|(_, u, v)| in_set.contains(u) && in_set.contains(v))
            .count();
        edges > (bound - 1) * (vertices.len() - 1)
    };
    let all: Vec<VertexId> = g.vertices().collect();
    if check(&all) {
        return Some(all);
    }
    let (comp, num_comp) = crate::traversal::connected_components(g, |_| true);
    for c in 0..num_comp {
        let vertices: Vec<VertexId> = g.vertices().filter(|v| comp[v.index()] == c).collect();
        if check(&vertices) {
            return Some(vertices);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::validate_forest_decomposition;
    use crate::multigraph::MultiGraph;

    fn complete_graph(n: usize) -> MultiGraph {
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                pairs.push((i, j));
            }
        }
        MultiGraph::from_pairs(n, &pairs).unwrap()
    }

    #[test]
    fn tree_has_arboricity_one() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let exact = exact_forest_decomposition(&g);
        assert_eq!(exact.arboricity, 1);
        assert!(validate_forest_decomposition(&g, &exact.decomposition, Some(1)).is_ok());
    }

    #[test]
    fn cycle_has_arboricity_two() {
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(arboricity(&g), 2);
        assert!(forest_partition_with(&g, 1).is_none());
        let fd = forest_partition_with(&g, 2).unwrap();
        assert!(validate_forest_decomposition(&g, &fd, Some(2)).is_ok());
    }

    #[test]
    fn complete_graph_arboricity_matches_formula() {
        // alpha(K_n) = ceil(n/2).
        for n in 2..=7usize {
            let g = complete_graph(n);
            assert_eq!(arboricity(&g), n.div_ceil(2), "K_{n}");
        }
    }

    #[test]
    fn fat_path_arboricity_equals_multiplicity() {
        // Fat path with multiplicity 3: every pair of adjacent vertices is
        // joined by 3 parallel edges, so alpha = 3.
        let mut g = MultiGraph::new(5);
        for i in 0..4usize {
            for _ in 0..3 {
                g.add_edge(VertexId::new(i), VertexId::new(i + 1)).unwrap();
            }
        }
        let exact = exact_forest_decomposition(&g);
        assert_eq!(exact.arboricity, 3);
        assert!(validate_forest_decomposition(&g, &exact.decomposition, Some(3)).is_ok());
    }

    #[test]
    fn partition_with_extra_colors_succeeds() {
        let g = complete_graph(6);
        let fd = forest_partition_with(&g, 5).unwrap();
        assert!(validate_forest_decomposition(&g, &fd, Some(5)).is_ok());
        assert!(forest_partition_with(&g, 2).is_none());
    }

    #[test]
    fn partition_with_zero_colors_only_for_empty() {
        let g = MultiGraph::new(3);
        assert!(forest_partition_with(&g, 0).is_some());
        let g = MultiGraph::from_pairs(2, &[(0, 1)]).unwrap();
        assert!(forest_partition_with(&g, 0).is_none());
    }

    #[test]
    fn lower_bound_is_respected() {
        let g = complete_graph(6);
        assert!(arboricity_lower_bound(&g) <= arboricity(&g));
        assert_eq!(arboricity_lower_bound(&g), 3);
        let empty = MultiGraph::new(4);
        assert_eq!(arboricity_lower_bound(&empty), 0);
        assert_eq!(arboricity(&empty), 0);
    }

    #[test]
    fn density_witness_on_dense_graph() {
        let g = complete_graph(5);
        // alpha(K5) = 3, so a witness against 2 forests must exist.
        assert!(density_witness(&g, 3).is_some());
        assert!(density_witness(&g, 4).is_none());
        assert!(density_witness(&g, 0).is_some());
    }

    #[test]
    fn arboricity_of_disjoint_union_is_max() {
        // K4 union a long path: arboricity = max(2, 1) = 2.
        let mut g = complete_graph(4);
        let base = 4;
        for _ in 0..5 {
            g.add_vertex();
        }
        for i in 0..4usize {
            g.add_edge(VertexId::new(base + i), VertexId::new(base + i + 1))
                .unwrap();
        }
        assert_eq!(arboricity(&g), 2);
    }

    #[test]
    fn minimum_forest_count_alias() {
        let g = complete_graph(4);
        assert_eq!(minimum_forest_count(&g), 2);
    }
}
