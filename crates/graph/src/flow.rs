//! Dinic maximum-flow solver.
//!
//! This is the exact-computation substrate used by
//! [`density`](crate::density) (exact pseudo-arboricity / maximum density)
//! and [`orientation`](crate::orientation) (exact minimum-out-degree
//! orientations). Capacities are `i64`; the graphs involved are the
//! edge/vertex bipartite gadgets of the Nash-Williams density tests, so the
//! solver is tuned for simplicity and correctness rather than raw speed.

/// Sentinel for "no capacity limit" in gadget constructions.
pub const INF_CAPACITY: i64 = i64::MAX / 4;

#[derive(Clone, Debug)]
struct FlowEdge {
    to: usize,
    cap: i64,
    /// Index of the reverse edge in `to`'s adjacency list.
    rev: usize,
}

/// A max-flow network on `n` nodes solved with Dinic's algorithm.
///
/// ```
/// use forest_graph::FlowNetwork;
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 3);
/// net.add_edge(0, 2, 2);
/// net.add_edge(1, 3, 2);
/// net.add_edge(2, 3, 3);
/// net.add_edge(1, 2, 1);
/// assert_eq!(net.max_flow(0, 3), 5);
/// ```
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    adj: Vec<Vec<FlowEdge>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates an empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge `from -> to` with the given capacity and returns a
    /// handle `(from, index)` that can later be passed to [`Self::flow_on`].
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> (usize, usize) {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        assert!(cap >= 0, "capacity must be non-negative");
        let from_idx = self.adj[from].len();
        let to_idx = self.adj[to].len() + usize::from(from == to);
        self.adj[from].push(FlowEdge {
            to,
            cap,
            rev: to_idx,
        });
        self.adj[to].push(FlowEdge {
            to: from,
            cap: 0,
            rev: from_idx,
        });
        (from, from_idx)
    }

    /// Returns the amount of flow routed on the edge identified by `handle`
    /// (only meaningful after [`Self::max_flow`] has been called).
    pub fn flow_on(&self, handle: (usize, usize)) -> i64 {
        let (from, idx) = handle;
        let e = &self.adj[from][idx];
        // Flow pushed equals the capacity moved onto the reverse edge.
        self.adj[e.to][e.rev].cap
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in &self.adj[u] {
                if e.cap > 0 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: i64) -> i64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.adj[u].len() {
            let i = self.iter[u];
            let (to, cap, rev) = {
                let e = &self.adj[u][i];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.adj[u][i].cap -= d;
                    self.adj[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Computes the maximum `s`-`t` flow.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either node is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        assert!(
            s < self.adj.len() && t < self.adj.len(),
            "node out of range"
        );
        let mut flow = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let pushed = self.dfs(s, t, INF_CAPACITY);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After a call to [`Self::max_flow`], returns the set of nodes reachable
    /// from `s` in the residual network (the source side of a minimum cut).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for e in &self.adj[u] {
                if e.cap > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    queue.push_back(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_flow() {
        let mut net = FlowNetwork::new(2);
        let h = net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 1), 5);
        assert_eq!(net.flow_on(h), 5);
    }

    #[test]
    fn diamond_network() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 1);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS-style example with known max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 2);
        let f = net.max_flow(0, 3);
        assert_eq!(f, 2);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 1, 1);
        assert_eq!(net.max_flow(0, 1), 3);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_sink_panics() {
        let mut net = FlowNetwork::new(2);
        net.max_flow(1, 1);
    }
}
