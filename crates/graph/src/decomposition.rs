//! Edge colorings, forest decompositions and their validation.
//!
//! A *k-forest decomposition* assigns every edge one of `k` colors so that
//! each color class is a forest (Nash-Williams). A *star-forest
//! decomposition* additionally requires every tree to be a star. This module
//! holds the result types returned by every algorithm in the workspace plus
//! the validators used throughout the test suites and benchmarks.

use crate::error::ValidationError;
use crate::ids::{Color, EdgeId, VertexId};
use crate::palette::ListAssignment;
use crate::traversal;
use crate::union_find::UnionFind;
use crate::view::GraphView;
use std::collections::{BTreeMap, BTreeSet};

/// A partial edge coloring: some edges may still be uncolored.
///
/// This is the working state of the augmentation algorithms of Sections 3–4
/// of the paper: edges get colored one augmenting sequence at a time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialEdgeColoring {
    colors: Vec<Option<Color>>,
}

impl PartialEdgeColoring {
    /// Creates a coloring of `m` edges with every edge uncolored.
    pub fn new_uncolored(m: usize) -> Self {
        PartialEdgeColoring {
            colors: vec![None; m],
        }
    }

    /// Creates a partial coloring from an explicit vector.
    pub fn from_colors(colors: Vec<Option<Color>>) -> Self {
        PartialEdgeColoring { colors }
    }

    /// Number of edges covered by this coloring (colored or not).
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Returns `true` if the coloring covers no edges.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of `e`, if any.
    #[inline]
    pub fn color(&self, e: EdgeId) -> Option<Color> {
        self.colors[e.index()]
    }

    /// Extends the coloring with uncolored slots so it covers `m` edges
    /// (no-op when already that long) — the growth path of streaming graphs
    /// whose edge-id space only ever extends.
    pub fn grow_to(&mut self, m: usize) {
        if m > self.colors.len() {
            self.colors.resize(m, None);
        }
    }

    /// Assigns color `c` to edge `e`.
    pub fn set(&mut self, e: EdgeId, c: Color) {
        self.colors[e.index()] = Some(c);
    }

    /// Removes the color of edge `e`.
    pub fn clear(&mut self, e: EdgeId) {
        self.colors[e.index()] = None;
    }

    /// All currently uncolored edges.
    pub fn uncolored_edges(&self) -> Vec<EdgeId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| EdgeId::new(i))
            .collect()
    }

    /// Number of colored edges.
    pub fn colored_count(&self) -> usize {
        self.colors.iter().filter(|c| c.is_some()).count()
    }

    /// Returns `true` if every edge is colored.
    pub fn is_complete(&self) -> bool {
        self.colors.iter().all(Option::is_some)
    }

    /// The distinct colors in use.
    pub fn colors_used(&self) -> BTreeSet<Color> {
        self.colors.iter().flatten().copied().collect()
    }

    /// Number of distinct colors in use.
    pub fn num_colors_used(&self) -> usize {
        self.colors_used().len()
    }

    /// Edges currently assigned color `c`.
    pub fn edges_with_color(&self, c: Color) -> Vec<EdgeId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, x)| **x == Some(c))
            .map(|(i, _)| EdgeId::new(i))
            .collect()
    }

    /// Converts into a complete [`ForestDecomposition`].
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::UncoloredEdge`] if any edge is uncolored.
    /// Note this does **not** check the forest property; use
    /// [`validate_forest_decomposition`] for that.
    pub fn into_complete(self) -> Result<ForestDecomposition, ValidationError> {
        let mut colors = Vec::with_capacity(self.colors.len());
        for (i, c) in self.colors.into_iter().enumerate() {
            match c {
                Some(c) => colors.push(c),
                None => {
                    return Err(ValidationError::UncoloredEdge {
                        edge: EdgeId::new(i),
                    })
                }
            }
        }
        Ok(ForestDecomposition { colors })
    }
}

/// A complete assignment of a color to every edge of a graph.
///
/// The name reflects the intended invariant (each color class is a forest),
/// but the struct itself is just the color vector; call
/// [`validate_forest_decomposition`] to check the invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForestDecomposition {
    colors: Vec<Color>,
}

impl ForestDecomposition {
    /// Creates a decomposition from an explicit per-edge color vector.
    pub fn from_colors(colors: Vec<Color>) -> Self {
        ForestDecomposition { colors }
    }

    /// Number of edges covered.
    pub fn num_edges(&self) -> usize {
        self.colors.len()
    }

    /// Returns `true` if no edges are covered.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Color of edge `e`.
    #[inline]
    pub fn color(&self, e: EdgeId) -> Color {
        self.colors[e.index()]
    }

    /// Distinct colors in use.
    pub fn colors_used(&self) -> BTreeSet<Color> {
        self.colors.iter().copied().collect()
    }

    /// Number of distinct colors in use. Two linear scans over a dense
    /// bitmap — color ids are small — instead of an ordered-set build.
    pub fn num_colors_used(&self) -> usize {
        let Some(max) = self.colors.iter().map(|c| c.index()).max() else {
            return 0;
        };
        let mut seen = vec![false; max + 1];
        for c in &self.colors {
            seen[c.index()] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Edges assigned color `c`.
    pub fn edges_with_color(&self, c: Color) -> Vec<EdgeId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, x)| **x == c)
            .map(|(i, _)| EdgeId::new(i))
            .collect()
    }

    /// The per-edge color array (index = edge id) — the bulk-merge fast
    /// path over [`ForestDecomposition::color`].
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// View as a partial coloring (every edge colored).
    pub fn to_partial(&self) -> PartialEdgeColoring {
        PartialEdgeColoring {
            colors: self.colors.iter().map(|&c| Some(c)).collect(),
        }
    }

    /// Relabels colors to the dense range `0..k` (preserving the relative
    /// order of the original color labels) and returns `k`.
    pub fn relabel_colors_dense(&mut self) -> usize {
        let used: BTreeSet<Color> = self.colors.iter().copied().collect();
        let map: BTreeMap<Color, Color> = used
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, Color::new(i)))
            .collect();
        for c in &mut self.colors {
            *c = map[c];
        }
        map.len()
    }

    /// Sizes of each color class, keyed by color.
    pub fn class_sizes(&self) -> BTreeMap<Color, usize> {
        let mut sizes = BTreeMap::new();
        for &c in &self.colors {
            *sizes.entry(c).or_insert(0) += 1;
        }
        sizes
    }
}

fn check_length<G: GraphView>(g: &G, len: usize) -> Result<(), ValidationError> {
    if len != g.num_edges() {
        Err(ValidationError::LengthMismatch {
            coloring_len: len,
            num_edges: g.num_edges(),
        })
    } else {
        Ok(())
    }
}

fn group_by_color<G, F>(g: &G, color_of: F) -> BTreeMap<Color, Vec<EdgeId>>
where
    G: GraphView,
    F: Fn(EdgeId) -> Option<Color>,
{
    let mut classes: BTreeMap<Color, Vec<EdgeId>> = BTreeMap::new();
    for e in g.edge_ids() {
        if let Some(c) = color_of(e) {
            classes.entry(c).or_default().push(e);
        }
    }
    classes
}

/// Checks that every color class of a (possibly partial) coloring is a forest.
///
/// # Errors
///
/// Returns [`ValidationError::CycleInColorClass`] naming a cycle edge if some
/// color class contains a cycle, or a length mismatch error.
pub fn validate_partial_forest_decomposition<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
) -> Result<(), ValidationError> {
    check_length(g, coloring.len())?;
    let classes = group_by_color(g, |e| coloring.color(e));
    for (color, edges) in classes {
        let mut uf = UnionFind::new(g.num_vertices());
        for &e in &edges {
            let (u, v) = g.endpoints(e);
            if !uf.union(u.index(), v.index()) {
                return Err(ValidationError::CycleInColorClass { color, witness: e });
            }
        }
    }
    Ok(())
}

/// Checks that a complete coloring is a forest decomposition, optionally with
/// a bound on the number of colors used.
///
/// # Errors
///
/// Returns the first violation found (cycle or too many colors).
pub fn validate_forest_decomposition<G: GraphView>(
    g: &G,
    fd: &ForestDecomposition,
    max_colors: Option<usize>,
) -> Result<(), ValidationError> {
    check_length(g, fd.num_edges())?;
    if let Some(bound) = max_colors {
        let used = fd.num_colors_used();
        if used > bound {
            return Err(ValidationError::TooManyColors { used, bound });
        }
    }
    validate_partial_forest_decomposition(g, &fd.to_partial())
}

/// Checks that every color class is a *star* forest: every component of each
/// class is a star (equivalently, every edge has an endpoint whose degree in
/// the class is exactly 1).
///
/// # Errors
///
/// Returns [`ValidationError::NotAStarForest`] naming the middle vertex of a
/// three-edge path (or of a cycle).
pub fn validate_star_forest_decomposition<G: GraphView>(
    g: &G,
    fd: &ForestDecomposition,
    max_colors: Option<usize>,
) -> Result<(), ValidationError> {
    check_length(g, fd.num_edges())?;
    if let Some(bound) = max_colors {
        let used = fd.num_colors_used();
        if used > bound {
            return Err(ValidationError::TooManyColors { used, bound });
        }
    }
    let classes = group_by_color(g, |e| Some(fd.color(e)));
    for (color, edges) in classes {
        let mut class_degree = vec![0usize; g.num_vertices()];
        for &e in &edges {
            let (u, v) = g.endpoints(e);
            class_degree[u.index()] += 1;
            class_degree[v.index()] += 1;
        }
        for &e in &edges {
            let (u, v) = g.endpoints(e);
            if class_degree[u.index()] >= 2 && class_degree[v.index()] >= 2 {
                return Err(ValidationError::NotAStarForest { color, witness: u });
            }
        }
    }
    Ok(())
}

/// Checks that every colored edge's color belongs to its palette.
///
/// # Errors
///
/// Returns [`ValidationError::ColorNotInPalette`] for the first violation.
pub fn validate_list_coloring<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
    lists: &ListAssignment,
) -> Result<(), ValidationError> {
    check_length(g, coloring.len())?;
    for e in g.edge_ids() {
        if let Some(c) = coloring.color(e) {
            if !lists.contains(e, c) {
                return Err(ValidationError::ColorNotInPalette { edge: e, color: c });
            }
        }
    }
    Ok(())
}

/// Maximum strong diameter over all trees in all color classes of a (possibly
/// partial) coloring. The coloring must already be a valid (partial) forest
/// decomposition.
pub fn max_forest_diameter<G: GraphView>(g: &G, coloring: &PartialEdgeColoring) -> usize {
    let classes = group_by_color(g, |e| coloring.color(e));
    let mut in_class = vec![false; g.num_edges()];
    let mut max_diam = 0;
    for (_, edges) in classes {
        for &e in &edges {
            in_class[e.index()] = true;
        }
        let diam = traversal::forest_diameter(g, |e| in_class[e.index()]);
        max_diam = max_diam.max(diam);
        for &e in &edges {
            in_class[e.index()] = false;
        }
    }
    max_diam
}

/// Checks that every tree in every color class has diameter at most `bound`.
///
/// # Errors
///
/// Returns [`ValidationError::DiameterExceeded`] for the first violating
/// color class.
pub fn validate_diameter_bound<G: GraphView>(
    g: &G,
    coloring: &PartialEdgeColoring,
    bound: usize,
) -> Result<(), ValidationError> {
    let classes = group_by_color(g, |e| coloring.color(e));
    let mut in_class = vec![false; g.num_edges()];
    for (color, edges) in classes {
        for &e in &edges {
            in_class[e.index()] = true;
        }
        let measured = traversal::forest_diameter(g, |e| in_class[e.index()]);
        for &e in &edges {
            in_class[e.index()] = false;
        }
        if measured > bound {
            return Err(ValidationError::DiameterExceeded {
                color,
                measured,
                bound,
            });
        }
    }
    Ok(())
}

/// Summary statistics of a complete forest decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecompositionStats {
    /// Number of distinct colors used.
    pub num_colors: usize,
    /// Maximum tree diameter over all color classes.
    pub max_diameter: usize,
    /// Size of the largest color class.
    pub max_class_size: usize,
    /// `true` if every color class is a star-forest.
    pub is_star_forest: bool,
}

/// Computes [`DecompositionStats`] for a complete decomposition that is
/// already known to be a valid forest decomposition.
pub fn decomposition_stats<G: GraphView>(g: &G, fd: &ForestDecomposition) -> DecompositionStats {
    let num_colors = fd.num_colors_used();
    let max_diameter = max_forest_diameter(g, &fd.to_partial());
    let max_class_size = fd.class_sizes().values().copied().max().unwrap_or(0);
    let is_star_forest = validate_star_forest_decomposition(g, fd, None).is_ok();
    DecompositionStats {
        num_colors,
        max_diameter,
        max_class_size,
        is_star_forest,
    }
}

/// Merges two partial colorings over disjoint edge sets (used by
/// Proposition 4.8's combination step). Colors in `second` are shifted by
/// `color_offset` to keep the color spaces disjoint when desired (pass 0 to
/// keep original colors).
///
/// # Panics
///
/// Panics if both colorings assign a color to the same edge or their lengths
/// differ.
pub fn merge_disjoint_colorings(
    first: &PartialEdgeColoring,
    second: &PartialEdgeColoring,
    color_offset: usize,
) -> PartialEdgeColoring {
    assert_eq!(
        first.len(),
        second.len(),
        "colorings must cover the same edges"
    );
    let mut merged = PartialEdgeColoring::new_uncolored(first.len());
    for i in 0..first.len() {
        let e = EdgeId::new(i);
        match (first.color(e), second.color(e)) {
            (Some(c), None) => merged.set(e, c),
            (None, Some(c)) => merged.set(e, Color::new(c.index() + color_offset)),
            (None, None) => {}
            (Some(_), Some(_)) => panic!("edge {e} colored by both colorings"),
        }
    }
    merged
}

/// Finds a vertex witnessing that the color class of `color` is not a star,
/// or `None` if it is one. Used as a diagnostic helper in tests.
pub fn star_violation_witness<G: GraphView>(
    g: &G,
    fd: &ForestDecomposition,
    color: Color,
) -> Option<VertexId> {
    let edges = fd.edges_with_color(color);
    let mut class_degree = vec![0usize; g.num_vertices()];
    for &e in &edges {
        let (u, v) = g.endpoints(e);
        class_degree[u.index()] += 1;
        class_degree[v.index()] += 1;
    }
    for &e in &edges {
        let (u, v) = g.endpoints(e);
        if class_degree[u.index()] >= 2 && class_degree[v.index()] >= 2 {
            return Some(u);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::MultiGraph;

    fn c(i: usize) -> Color {
        Color::new(i)
    }

    fn e(i: usize) -> EdgeId {
        EdgeId::new(i)
    }

    fn triangle() -> MultiGraph {
        MultiGraph::from_pairs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn partial_coloring_basic_operations() {
        let mut pc = PartialEdgeColoring::new_uncolored(3);
        assert_eq!(pc.len(), 3);
        assert!(!pc.is_empty());
        assert!(!pc.is_complete());
        pc.set(e(0), c(1));
        pc.set(e(2), c(1));
        assert_eq!(pc.color(e(0)), Some(c(1)));
        assert_eq!(pc.color(e(1)), None);
        assert_eq!(pc.colored_count(), 2);
        assert_eq!(pc.uncolored_edges(), vec![e(1)]);
        assert_eq!(pc.edges_with_color(c(1)), vec![e(0), e(2)]);
        assert_eq!(pc.num_colors_used(), 1);
        pc.clear(e(0));
        assert_eq!(pc.color(e(0)), None);
        pc.set(e(0), c(0));
        pc.set(e(1), c(2));
        let fd = pc.into_complete().unwrap();
        assert_eq!(fd.num_colors_used(), 3);
    }

    #[test]
    fn into_complete_rejects_uncolored() {
        let pc = PartialEdgeColoring::new_uncolored(2);
        assert!(matches!(
            pc.into_complete(),
            Err(ValidationError::UncoloredEdge { .. })
        ));
    }

    #[test]
    fn forest_validation_accepts_proper_decomposition() {
        let g = triangle();
        // Two colors: edges 0,1 in color 0 (a path), edge 2 in color 1.
        let fd = ForestDecomposition::from_colors(vec![c(0), c(0), c(1)]);
        assert!(validate_forest_decomposition(&g, &fd, Some(2)).is_ok());
        assert!(matches!(
            validate_forest_decomposition(&g, &fd, Some(1)),
            Err(ValidationError::TooManyColors { .. })
        ));
    }

    #[test]
    fn forest_validation_rejects_cycles() {
        let g = triangle();
        let fd = ForestDecomposition::from_colors(vec![c(0), c(0), c(0)]);
        assert!(matches!(
            validate_forest_decomposition(&g, &fd, None),
            Err(ValidationError::CycleInColorClass { .. })
        ));
    }

    #[test]
    fn forest_validation_rejects_parallel_edges_same_color() {
        let g = MultiGraph::from_pairs(2, &[(0, 1), (0, 1)]).unwrap();
        let fd = ForestDecomposition::from_colors(vec![c(0), c(0)]);
        assert!(validate_forest_decomposition(&g, &fd, None).is_err());
        let fd = ForestDecomposition::from_colors(vec![c(0), c(1)]);
        assert!(validate_forest_decomposition(&g, &fd, None).is_ok());
    }

    #[test]
    fn length_mismatch_detected() {
        let g = triangle();
        let fd = ForestDecomposition::from_colors(vec![c(0), c(0)]);
        assert!(matches!(
            validate_forest_decomposition(&g, &fd, None),
            Err(ValidationError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn star_forest_validation() {
        // Path of 3 edges in a single color: not a star forest.
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let fd = ForestDecomposition::from_colors(vec![c(0), c(0), c(0)]);
        assert!(validate_forest_decomposition(&g, &fd, None).is_ok());
        assert!(validate_star_forest_decomposition(&g, &fd, None).is_err());
        assert!(star_violation_witness(&g, &fd, c(0)).is_some());
        // Split the middle edge into its own color: both classes become stars.
        let fd = ForestDecomposition::from_colors(vec![c(0), c(1), c(0)]);
        assert!(validate_star_forest_decomposition(&g, &fd, None).is_ok());
        assert!(star_violation_witness(&g, &fd, c(0)).is_none());
        // A star with many leaves is fine in one color.
        let g = MultiGraph::from_pairs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let fd = ForestDecomposition::from_colors(vec![c(0); 4]);
        assert!(validate_star_forest_decomposition(&g, &fd, None).is_ok());
    }

    #[test]
    fn list_coloring_validation() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let lists = ListAssignment::uniform(2, 2);
        let mut pc = PartialEdgeColoring::new_uncolored(2);
        pc.set(e(0), c(1));
        assert!(validate_list_coloring(&g, &pc, &lists).is_ok());
        pc.set(e(1), c(5));
        assert!(matches!(
            validate_list_coloring(&g, &pc, &lists),
            Err(ValidationError::ColorNotInPalette { .. })
        ));
    }

    #[test]
    fn diameter_measurement_and_bound() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let fd = ForestDecomposition::from_colors(vec![c(0); 4]);
        assert_eq!(max_forest_diameter(&g, &fd.to_partial()), 4);
        assert!(validate_diameter_bound(&g, &fd.to_partial(), 4).is_ok());
        assert!(matches!(
            validate_diameter_bound(&g, &fd.to_partial(), 3),
            Err(ValidationError::DiameterExceeded { .. })
        ));
        // Alternate colors: diameter drops to 1 per class.
        let fd = ForestDecomposition::from_colors(vec![c(0), c(1), c(0), c(1)]);
        assert_eq!(max_forest_diameter(&g, &fd.to_partial()), 1);
    }

    #[test]
    fn stats_summarize_decomposition() {
        let g = triangle();
        let fd = ForestDecomposition::from_colors(vec![c(0), c(0), c(1)]);
        let stats = decomposition_stats(&g, &fd);
        assert_eq!(stats.num_colors, 2);
        assert_eq!(stats.max_diameter, 2);
        assert_eq!(stats.max_class_size, 2);
        assert!(stats.is_star_forest);
    }

    #[test]
    fn relabeling_compresses_colors() {
        let mut fd = ForestDecomposition::from_colors(vec![c(7), c(3), c(7)]);
        let k = fd.relabel_colors_dense();
        assert_eq!(k, 2);
        assert_eq!(fd.color(e(0)), c(1));
        assert_eq!(fd.color(e(1)), c(0));
        assert_eq!(fd.color(e(2)), c(1));
    }

    #[test]
    fn class_sizes_counts_edges() {
        let fd = ForestDecomposition::from_colors(vec![c(0), c(1), c(0), c(0)]);
        let sizes = fd.class_sizes();
        assert_eq!(sizes[&c(0)], 3);
        assert_eq!(sizes[&c(1)], 1);
        assert_eq!(fd.edges_with_color(c(1)), vec![e(1)]);
    }

    #[test]
    fn merge_disjoint_colorings_combines() {
        let mut a = PartialEdgeColoring::new_uncolored(3);
        a.set(e(0), c(0));
        let mut b = PartialEdgeColoring::new_uncolored(3);
        b.set(e(1), c(0));
        b.set(e(2), c(1));
        let merged = merge_disjoint_colorings(&a, &b, 10);
        assert_eq!(merged.color(e(0)), Some(c(0)));
        assert_eq!(merged.color(e(1)), Some(c(10)));
        assert_eq!(merged.color(e(2)), Some(c(11)));
    }

    #[test]
    #[should_panic(expected = "colored by both")]
    fn merge_panics_on_overlap() {
        let mut a = PartialEdgeColoring::new_uncolored(1);
        a.set(e(0), c(0));
        let mut b = PartialEdgeColoring::new_uncolored(1);
        b.set(e(0), c(1));
        merge_disjoint_colorings(&a, &b, 0);
    }
}
