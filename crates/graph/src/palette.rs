//! Per-edge color palettes for list-forest decompositions.
//!
//! In a *k-list-forest decomposition* every edge `e` carries a palette
//! `Q(e)` of at least `k` allowed colors, and the chosen color must come from
//! the palette while every color class stays a forest (Section 1 of the
//! paper; Seymour showed `α(G)`-LFD always exists).

use crate::ids::{Color, EdgeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A list (palette) assignment: one sorted, deduplicated palette per edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListAssignment {
    palettes: Vec<Vec<Color>>,
}

impl ListAssignment {
    /// Every edge receives the uniform palette `{0, .., k-1}`.
    ///
    /// This models ordinary (non-list) `k`-forest decomposition as the
    /// special case `Q(e) = C = [k]`.
    pub fn uniform(num_edges: usize, k: usize) -> Self {
        let palette: Vec<Color> = (0..k).map(Color::new).collect();
        ListAssignment {
            palettes: vec![palette; num_edges],
        }
    }

    /// Builds an assignment from explicit palettes (they are sorted and
    /// deduplicated).
    pub fn from_palettes(mut palettes: Vec<Vec<Color>>) -> Self {
        for p in &mut palettes {
            p.sort_unstable();
            p.dedup();
        }
        ListAssignment { palettes }
    }

    /// Every edge receives a uniformly random `palette_size`-subset of the
    /// color space `{0, .., colorspace - 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `palette_size > colorspace`.
    pub fn random<R: Rng + ?Sized>(
        num_edges: usize,
        colorspace: usize,
        palette_size: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            palette_size <= colorspace,
            "palette size cannot exceed the color space"
        );
        let all: Vec<Color> = (0..colorspace).map(Color::new).collect();
        let palettes = (0..num_edges)
            .map(|_| {
                let mut p: Vec<Color> = all.choose_multiple(rng, palette_size).copied().collect();
                p.sort_unstable();
                p
            })
            .collect();
        ListAssignment { palettes }
    }

    /// Number of edges covered.
    pub fn num_edges(&self) -> usize {
        self.palettes.len()
    }

    /// Returns `true` if no edges are covered.
    pub fn is_empty(&self) -> bool {
        self.palettes.is_empty()
    }

    /// The palette of edge `e`.
    #[inline]
    pub fn palette(&self, e: EdgeId) -> &[Color] {
        &self.palettes[e.index()]
    }

    /// Returns `true` if color `c` is in the palette of `e`.
    #[inline]
    pub fn contains(&self, e: EdgeId, c: Color) -> bool {
        self.palettes[e.index()].binary_search(&c).is_ok()
    }

    /// Size of the smallest palette (`usize::MAX` when there are no edges).
    pub fn min_palette_size(&self) -> usize {
        self.palettes
            .iter()
            .map(Vec::len)
            .min()
            .unwrap_or(usize::MAX)
    }

    /// Size of the largest palette (0 when there are no edges).
    pub fn max_palette_size(&self) -> usize {
        self.palettes.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of distinct colors appearing in any palette.
    pub fn colorspace_size(&self) -> usize {
        let mut all: Vec<Color> = self.palettes.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// Returns a new assignment keeping only the `(edge, color)` pairs
    /// accepted by `keep`. Used to build the induced palettes `Q_0`, `Q_1` of
    /// a vertex-color-splitting (Definition 4.7).
    pub fn filter<F>(&self, mut keep: F) -> ListAssignment
    where
        F: FnMut(EdgeId, Color) -> bool,
    {
        let palettes = self
            .palettes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let e = EdgeId::new(i);
                p.iter().copied().filter(|&c| keep(e, c)).collect()
            })
            .collect();
        ListAssignment { palettes }
    }

    /// Replaces the palette of a single edge (sorted and deduplicated).
    pub fn set_palette(&mut self, e: EdgeId, mut palette: Vec<Color>) {
        palette.sort_unstable();
        palette.dedup();
        self.palettes[e.index()] = palette;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(i: usize) -> Color {
        Color::new(i)
    }

    fn e(i: usize) -> EdgeId {
        EdgeId::new(i)
    }

    #[test]
    fn uniform_palettes() {
        let lists = ListAssignment::uniform(3, 4);
        assert_eq!(lists.num_edges(), 3);
        assert!(!lists.is_empty());
        assert_eq!(lists.palette(e(1)).len(), 4);
        assert!(lists.contains(e(0), c(3)));
        assert!(!lists.contains(e(0), c(4)));
        assert_eq!(lists.min_palette_size(), 4);
        assert_eq!(lists.max_palette_size(), 4);
        assert_eq!(lists.colorspace_size(), 4);
    }

    #[test]
    fn from_palettes_sorts_and_dedups() {
        let lists = ListAssignment::from_palettes(vec![vec![c(3), c(1), c(3)], vec![c(0)]]);
        assert_eq!(lists.palette(e(0)), &[c(1), c(3)]);
        assert_eq!(lists.min_palette_size(), 1);
        assert_eq!(lists.colorspace_size(), 3);
    }

    #[test]
    fn random_palettes_have_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let lists = ListAssignment::random(20, 10, 4, &mut rng);
        assert_eq!(lists.num_edges(), 20);
        for i in 0..20 {
            assert_eq!(lists.palette(e(i)).len(), 4);
            for &col in lists.palette(e(i)) {
                assert!(col.index() < 10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "palette size cannot exceed")]
    fn random_palettes_reject_oversized_request() {
        let mut rng = StdRng::seed_from_u64(7);
        ListAssignment::random(1, 3, 5, &mut rng);
    }

    #[test]
    fn filter_restricts_palettes() {
        let lists = ListAssignment::uniform(2, 4);
        let even = lists.filter(|_, col| col.index() % 2 == 0);
        assert_eq!(even.palette(e(0)), &[c(0), c(2)]);
        assert_eq!(even.min_palette_size(), 2);
        let nothing = lists.filter(|_, _| false);
        assert_eq!(nothing.min_palette_size(), 0);
    }

    #[test]
    fn set_palette_replaces_single_edge() {
        let mut lists = ListAssignment::uniform(2, 2);
        lists.set_palette(e(1), vec![c(9), c(5), c(9)]);
        assert_eq!(lists.palette(e(1)), &[c(5), c(9)]);
        assert_eq!(lists.palette(e(0)), &[c(0), c(1)]);
    }

    #[test]
    fn empty_assignment() {
        let lists = ListAssignment::uniform(0, 3);
        assert!(lists.is_empty());
        assert_eq!(lists.min_palette_size(), usize::MAX);
        assert_eq!(lists.max_palette_size(), 0);
    }
}
