//! Flat-array scan kernels written for auto-vectorization.
//!
//! The decomposition hot loops spend much of their time in dense linear
//! scans over per-vertex or per-edge arrays: "largest degree", "all active
//! vertices whose degree dropped below the peel threshold", "reset exactly
//! the entries this cluster touched". These kernels centralize those scans
//! over flat `u32` / `u8` arrays in a shape LLVM reliably vectorizes:
//! fixed-width [`chunks_exact`](slice::chunks_exact) bodies with branchless
//! per-lane masks, and a scalar tail for the remainder. Callers keep their
//! data as structure-of-arrays (`Vec<u32>` degrees, `Vec<u8>` masks) and
//! call in here instead of writing ad-hoc `iter().filter()` chains.
//!
//! The module also provides [`StampSet`], the epoch-stamped membership set
//! behind the "no `O(n)` clears" idiom used by the ball-local cluster
//! pipeline: a `Vec<u32>` of stamps plus a current epoch, where resetting
//! the set is a single integer increment and membership is one load plus a
//! compare. Algorithms that probe thousands of small neighborhoods over one
//! large graph reuse a single `StampSet` instead of allocating (and
//! clearing) a fresh `vec![false; n]` per probe.

/// Lane width for the chunked scan loops. Wide enough to fill 256-bit
/// vector units after unrolling; the exact value only affects performance,
/// never results.
const LANES: usize = 16;

/// Maximum of a `u32` slice (`0` for an empty slice).
///
/// Equivalent to `values.iter().copied().max().unwrap_or(0)` but folded
/// through per-lane accumulators so the loop vectorizes.
pub fn max_value(values: &[u32]) -> u32 {
    let mut acc = [0u32; LANES];
    let chunks = values.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (a, &v) in acc.iter_mut().zip(chunk) {
            *a = (*a).max(v);
        }
    }
    let mut best = acc.iter().copied().fold(0, u32::max);
    for &v in tail {
        best = best.max(v);
    }
    best
}

/// Histogram of a `u32` slice: `hist[d]` counts the entries equal to `d`.
///
/// The histogram has `max_value(values) + 1` buckets (a single zero bucket
/// for an empty slice), so degree arrays map to degree histograms without
/// the caller sizing anything.
pub fn degree_histogram(values: &[u32]) -> Vec<u32> {
    let mut hist = vec![0u32; max_value(values) as usize + 1];
    for &v in values {
        hist[v as usize] += 1;
    }
    hist
}

/// Collects the indices `i` with `active[i] != 0` and
/// `values[i] <= threshold` into `out` (cleared first), in ascending order.
///
/// This is the H-partition peel-candidate selection: `values` are the
/// current active degrees, `active` the not-yet-peeled mask. The chunk body
/// computes a branchless per-lane flag vector and skips index
/// materialization entirely for all-miss chunks, so sparse late rounds scan
/// at memory bandwidth.
///
/// # Panics
///
/// Panics if `values` and `active` have different lengths.
pub fn select_le_masked(values: &[u32], active: &[u8], threshold: u32, out: &mut Vec<u32>) {
    assert_eq!(
        values.len(),
        active.len(),
        "values/active length mismatch in select_le_masked"
    );
    out.clear();
    let mut base = 0usize;
    let value_chunks = values.chunks_exact(LANES);
    let value_tail = value_chunks.remainder();
    let mut active_chunks = active.chunks_exact(LANES);
    for chunk in value_chunks {
        let act = active_chunks.next().expect("equal lengths");
        let mut flags = [0u8; LANES];
        let mut any = 0u32;
        for i in 0..LANES {
            let hit = u8::from(act[i] != 0) & u8::from(chunk[i] <= threshold);
            flags[i] = hit;
            any += u32::from(hit);
        }
        if any != 0 {
            for (i, &hit) in flags.iter().enumerate() {
                if hit != 0 {
                    out.push((base + i) as u32);
                }
            }
        }
        base += LANES;
    }
    let active_tail = active_chunks.remainder();
    for (i, (&v, &a)) in value_tail.iter().zip(active_tail).enumerate() {
        if a != 0 && v <= threshold {
            out.push((base + i) as u32);
        }
    }
}

/// Deduplicating gather: appends the first occurrence of every id across
/// `runs` to `out` (cleared first), then sorts ascending.
///
/// This is the incidence-union scan of the cluster pipeline ("all edges
/// incident to these vertices, ascending, each once"): instead of the
/// `extend` + `sort_unstable` + `dedup` chain — which sorts every duplicate
/// before squeezing it out — duplicates are dropped up front by the
/// epoch-stamped `seen` set (cleared on entry, must have a slot for every
/// id `key` can produce), so the sort runs over unique ids only. The item
/// type stays generic so id newtypes (`EdgeId`, `VertexId`) pass through
/// without re-encoding.
pub fn gather_unique_sorted<T, R, RS, K>(runs: RS, key: K, seen: &mut StampSet, out: &mut Vec<T>)
where
    T: Copy + Ord,
    R: IntoIterator<Item = T>,
    RS: IntoIterator<Item = R>,
    K: Fn(T) -> usize,
{
    out.clear();
    seen.clear();
    for run in runs {
        for item in run {
            if seen.insert(key(item)) {
                out.push(item);
            }
        }
    }
    out.sort_unstable();
}

/// Selects the `(item, u, v)` entries whose endpoint pair passes the
/// two-mask rule `required[u] && required[v] && !(excluded[u] &&
/// excluded[v])`, then the per-item predicate `keep`, into `out` (cleared
/// first; input order is preserved).
///
/// This is the CUT eligible-edge filter shape: `required` is the view mask,
/// `excluded` the core mask (an eligible edge lies inside the view but must
/// leave the core). The mask tests fold branchlessly (`&` on `bool`s, one
/// load per endpoint) and short-circuit the — typically costlier — `keep`
/// lookup.
pub fn select_edges_masked<T, I, P>(
    edges: I,
    required: &[bool],
    excluded: &[bool],
    mut keep: P,
    out: &mut Vec<T>,
) where
    T: Copy,
    I: IntoIterator<Item = (T, usize, usize)>,
    P: FnMut(T) -> bool,
{
    out.clear();
    for (item, u, v) in edges {
        let masked = required[u] & required[v] & !(excluded[u] & excluded[v]);
        if masked && keep(item) {
            out.push(item);
        }
    }
}

/// Number of nonzero entries of a `u8` mask.
pub fn count_nonzero(mask: &[u8]) -> usize {
    let mut acc = [0u32; LANES];
    let chunks = mask.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (a, &b) in acc.iter_mut().zip(chunk) {
            *a += u32::from(b != 0);
        }
    }
    acc.iter().map(|&a| a as usize).sum::<usize>() + tail.iter().filter(|&&b| b != 0).count()
}

/// Sets `mask[i] = 1` for every index in `indices`.
///
/// Paired with [`clear_indices`], this is the sparse-touch discipline the
/// cluster pipeline uses for its reusable dense masks: mark exactly the
/// entries a cluster reaches, run over the mask, then clear exactly those
/// entries again — never an `O(n)` `fill(false)` between clusters.
pub fn mark_indices(mask: &mut [u8], indices: &[u32]) {
    for &i in indices {
        mask[i as usize] = 1;
    }
}

/// Resets `mask[i] = 0` for every index in `indices` (see [`mark_indices`]).
pub fn clear_indices(mask: &mut [u8], indices: &[u32]) {
    for &i in indices {
        mask[i as usize] = 0;
    }
}

/// An epoch-stamped membership set over ids `0..len`: `O(1)` logical clear,
/// one load per membership test, no per-reset allocation.
///
/// Instead of a `vec![false; len]` that must be zeroed between uses, every
/// slot holds the epoch at which it was last inserted; a slot is a member
/// exactly when its stamp equals the current epoch, so [`StampSet::clear`]
/// is a single increment. When the `u32` epoch would wrap, the stamps are
/// rewritten once — amortized cost zero.
#[derive(Clone, Debug)]
pub struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Default for StampSet {
    /// An empty zero-slot set (same as `StampSet::new(0)`); grow with
    /// [`StampSet::resize`]. A derived default would set `epoch` to `0`,
    /// which the zeroed stamps would read as "everything is a member".
    fn default() -> Self {
        StampSet::new(0)
    }
}

impl StampSet {
    /// An empty set over ids `0..len`.
    pub fn new(len: usize) -> Self {
        StampSet {
            stamp: vec![0; len],
            epoch: 1,
        }
    }

    /// Number of id slots.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// `true` when the set has no slots at all (note: *slots*, not members).
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Grows the slot space to at least `len` ids (never shrinks).
    pub fn resize(&mut self, len: usize) {
        if len > self.stamp.len() {
            self.stamp.resize(len, 0);
        }
    }

    /// Removes every member in `O(1)` by advancing the epoch.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Inserts `id`; returns `true` if it was not yet a member.
    pub fn insert(&mut self, id: usize) -> bool {
        let fresh = self.stamp[id] != self.epoch;
        self.stamp[id] = self.epoch;
        fresh
    }

    /// Membership test.
    pub fn contains(&self, id: usize) -> bool {
        self.stamp[id] == self.epoch
    }

    /// Removes `id` (idempotent).
    pub fn remove(&mut self, id: usize) {
        self.stamp[id] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_value_matches_iterator_max() {
        assert_eq!(max_value(&[]), 0);
        assert_eq!(max_value(&[7]), 7);
        let values: Vec<u32> = (0..1000)
            .map(|i| (i * 2654435761u64 % 997) as u32)
            .collect();
        assert_eq!(
            max_value(&values),
            values.iter().copied().max().unwrap_or(0)
        );
    }

    #[test]
    fn degree_histogram_counts_every_entry() {
        assert_eq!(degree_histogram(&[]), vec![0]);
        let values = [3u32, 0, 3, 1, 3];
        assert_eq!(degree_histogram(&values), vec![1, 1, 0, 3]);
        let total: u32 = degree_histogram(&values).iter().sum();
        assert_eq!(total as usize, values.len());
    }

    #[test]
    fn select_le_masked_matches_filter() {
        let n = 531; // exercises both the chunked body and the tail
        let values: Vec<u32> = (0..n).map(|i| (i * 37 % 100) as u32).collect();
        let active: Vec<u8> = (0..n).map(|i| u8::from(i % 3 != 0)).collect();
        let mut out = Vec::new();
        select_le_masked(&values, &active, 42, &mut out);
        let expect: Vec<u32> = (0..n as u32)
            .filter(|&i| active[i as usize] != 0 && values[i as usize] <= 42)
            .collect();
        assert_eq!(out, expect);
        // `out` is cleared on entry.
        select_le_masked(&values, &active, 0, &mut out);
        assert!(out.iter().all(|&i| values[i as usize] == 0));
    }

    #[test]
    fn gather_unique_sorted_matches_sort_dedup() {
        // Overlapping runs with duplicates within and across runs.
        let runs: Vec<Vec<u32>> = vec![vec![5, 1, 9, 1], vec![], vec![9, 3, 5], vec![0]];
        let mut seen = StampSet::new(10);
        let mut out: Vec<u32> = vec![42]; // must be cleared on entry
        gather_unique_sorted(
            runs.iter().map(|r| r.iter().copied()),
            |v| v as usize,
            &mut seen,
            &mut out,
        );
        let mut expect: Vec<u32> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(out, expect);
        // The seen set is cleared on entry, so back-to-back calls work.
        gather_unique_sorted(
            runs.iter().map(|r| r.iter().copied()),
            |v| v as usize,
            &mut seen,
            &mut out,
        );
        assert_eq!(out, expect);
    }

    #[test]
    fn select_edges_masked_matches_filter() {
        let required = [true, true, true, false, true];
        let excluded = [true, true, false, false, false];
        let edges = [(0u32, 0usize, 1usize), (1, 0, 2), (2, 2, 4), (3, 1, 3)];
        let mut out: Vec<u32> = vec![7]; // must be cleared on entry
        select_edges_masked(
            edges.iter().copied(),
            &required,
            &excluded,
            |e| e != 2,
            &mut out,
        );
        let expect: Vec<u32> = edges
            .iter()
            .filter(|&&(e, u, v)| {
                required[u] && required[v] && !(excluded[u] && excluded[v]) && e != 2
            })
            .map(|&(e, _, _)| e)
            .collect();
        assert_eq!(out, expect);
        // Edge (0,1) is core-internal, (1,3) leaves the view, (2,4) is
        // filtered by the predicate: only edge 1 (0,2) survives.
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn count_nonzero_matches_filter_count() {
        let mask: Vec<u8> = (0..321).map(|i| u8::from(i % 7 == 0)).collect();
        assert_eq!(
            count_nonzero(&mask),
            mask.iter().filter(|&&b| b != 0).count()
        );
        assert_eq!(count_nonzero(&[]), 0);
    }

    #[test]
    fn mark_and_clear_round_trip() {
        let mut mask = vec![0u8; 10];
        let touched = [2u32, 5, 9];
        mark_indices(&mut mask, &touched);
        assert_eq!(count_nonzero(&mask), 3);
        assert_eq!(mask[5], 1);
        clear_indices(&mut mask, &touched);
        assert_eq!(mask, vec![0u8; 10]);
    }

    #[test]
    fn stamp_set_clear_is_logical() {
        let mut set = StampSet::new(5);
        assert!(set.insert(3));
        assert!(!set.insert(3));
        assert!(set.contains(3));
        set.clear();
        assert!(!set.contains(3));
        assert!(set.insert(3));
        set.remove(3);
        assert!(!set.contains(3));
        set.resize(8);
        assert_eq!(set.len(), 8);
        assert!(set.insert(7));
    }

    #[test]
    fn stamp_set_survives_epoch_wrap() {
        let mut set = StampSet::new(3);
        set.epoch = u32::MAX - 1;
        set.insert(0);
        set.clear(); // epoch hits u32::MAX
        set.insert(1);
        set.clear(); // wrap: stamps rewritten
        assert!(!set.contains(0));
        assert!(!set.contains(1));
        set.insert(2);
        assert!(set.contains(2));
    }
}
