//! Fully-dynamic connectivity: Euler-tour trees and the
//! Holm–de Lichtenberg–Thorup level structure.
//!
//! Every other structure in this crate answers connectivity questions over a
//! topology that only *grows* (union-find) or is frozen outright (CSR). This
//! module is the subsystem for graphs that **mutate**: edges arrive and
//! depart between queries, and the structures stay consistent in amortized
//! polylogarithmic time instead of invalidate-and-rebuild.
//!
//! * [`DynamicForest`] — a forest under `link` / `cut`, each tree maintained
//!   as the Euler tour of its edges in a splay tree (sequence order, no
//!   keys). `connected` and `component_size` are answered from the splay
//!   roots in amortized `O(log n)`.
//! * [`DynamicConnectivity`] — fully-dynamic connectivity for general
//!   (multi-)graphs [HDT01]: a hierarchy of `O(log n)` Euler-tour forests,
//!   one per level, with non-tree edges kept in per-level incidence lists.
//!   `insert_edge` is amortized `O(log n)`; `delete_edge` is amortized
//!   `O(log² n)` — a deleted tree edge searches for a replacement by pushing
//!   the smaller side's edges one level down the hierarchy, so each edge
//!   pays for at most `log n` promotions over its lifetime.
//!
//! Edges are identified by the opaque [`EdgeKey`] handed out by
//! [`DynamicConnectivity::insert_edge`], so parallel edges are first-class
//! (each insertion is its own key) — matching the multigraph semantics of
//! the rest of the workspace.
//!
//! [`DynamicGraph`] rounds out the subsystem: a mutable adjacency container
//! with *stable* edge ids under deletion, implementing [`GraphView`] over
//! its live edges, so the augmenting-path searches (`path_between`, the
//! matroid exchange BFS) run unchanged over a streaming topology.
//!
//! The per-color wrapper that rides decompositions on this subsystem lives
//! in [`crate::connectivity::DynamicColorConnectivity`]; the streaming
//! decomposition facade (`DynamicDecomposer`) lives in `forest_decomp::api`.
//!
//! ```
//! use forest_graph::dynamic::DynamicConnectivity;
//! let mut dc = DynamicConnectivity::new(4);
//! let ab = dc.insert_edge(0.into(), 1.into());
//! let bc = dc.insert_edge(1.into(), 2.into());
//! let ca = dc.insert_edge(2.into(), 0.into()); // closes a cycle
//! assert!(dc.connected(0.into(), 2.into()));
//! dc.delete_edge(bc); // tree edge; the cycle edge takes over
//! assert!(dc.connected(1.into(), 2.into()));
//! dc.delete_edge(ab);
//! dc.delete_edge(ca);
//! assert!(!dc.connected(0.into(), 1.into()));
//! ```
//!
//! [HDT01]: Holm, de Lichtenberg, Thorup. *Poly-logarithmic deterministic
//! fully-dynamic algorithms for connectivity, minimum spanning tree,
//! 2-edge, and biconnectivity.* J. ACM 48(4), 2001.

use crate::error::GraphError;
use crate::ids::{u32_of, EdgeId, VertexId};
use crate::view::GraphView;

/// Sentinel for "no node" in the splay arena.
const NIL: u32 = u32::MAX;

/// Node flag: this node is a vertex (loop) node, not an arc.
const IS_LOOP: u8 = 1;
/// Node flag: this vertex has a non-tree edge at this structure's level.
const VERTEX_MARK: u8 = 1 << 1;
/// Node flag: this arc's tree edge has level exactly this structure's level.
const EDGE_MARK: u8 = 1 << 2;
/// Subtree aggregate of [`VERTEX_MARK`].
const SUB_VERTEX_MARK: u8 = 1 << 3;
/// Subtree aggregate of [`EDGE_MARK`].
const SUB_EDGE_MARK: u8 = 1 << 4;

#[derive(Clone, Debug)]
struct Node {
    parent: u32,
    left: u32,
    right: u32,
    /// Nodes in this subtree (loops + arcs), for sequence positions.
    size: u32,
    /// Loop nodes in this subtree: each vertex appears exactly once in its
    /// tour, so the root's count is the component size.
    loops: u32,
    /// For arc nodes: the [`DynamicConnectivity`] edge slot this arc belongs
    /// to (`NIL` for plain [`DynamicForest`] use and for loop nodes).
    edge: u32,
    flags: u8,
}

impl Node {
    fn loop_node(flags: u8) -> Node {
        Node {
            parent: NIL,
            left: NIL,
            right: NIL,
            size: 1,
            loops: 1,
            edge: NIL,
            flags: flags | IS_LOOP,
        }
    }

    fn arc(edge: u32) -> Node {
        Node {
            parent: NIL,
            left: NIL,
            right: NIL,
            size: 1,
            loops: 0,
            edge,
            flags: 0,
        }
    }
}

/// A tree edge inside a [`DynamicForest`]: the pair of Euler-tour arcs the
/// `link` created. Pass it back to [`DynamicForest::cut`] to remove the
/// edge. Handles are invalidated by the `cut` that consumes them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ForestEdge {
    /// The marked arc (`u → v`); level marks live on this one.
    a: u32,
    /// The partner arc (`v → u`).
    b: u32,
}

/// A forest under `link` / `cut`: each tree is maintained as the Euler tour
/// of its edges in a splay tree, so `connected` and `component_size` are
/// amortized `O(log n)` regardless of how the forest was edited.
///
/// The structure is deliberately minimal — it does not check that `link`
/// keeps the forest acyclic beyond a debug assertion, because its one
/// production consumer ([`DynamicConnectivity`]) guards every `link` with a
/// `connected` query. Use [`DynamicForest::try_link`] when the caller does
/// not already know.
///
/// ```
/// use forest_graph::dynamic::DynamicForest;
/// let mut f = DynamicForest::new(4);
/// let ab = f.link(0.into(), 1.into());
/// f.link(1.into(), 2.into());
/// assert!(f.connected(0.into(), 2.into()));
/// assert_eq!(f.component_size(2.into()), 3);
/// f.cut(ab);
/// assert!(!f.connected(0.into(), 2.into()));
/// assert_eq!(f.component_size(0.into()), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DynamicForest {
    /// Arena: slots `0..n` are the per-vertex loop nodes, later slots are
    /// arc nodes (recycled through `free`).
    nodes: Vec<Node>,
    free: Vec<u32>,
    n: usize,
}

impl DynamicForest {
    /// An edgeless forest over `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n < NIL as usize, "DynamicForest is u32-indexed");
        DynamicForest {
            nodes: (0..n).map(|_| Node::loop_node(0)).collect(),
            free: Vec::new(),
            n,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    // --- splay machinery -------------------------------------------------

    fn pull(&mut self, x: u32) {
        let node = &self.nodes[x as usize];
        let (l, r) = (node.left, node.right);
        let own = node.flags;
        let mut size = 1u32;
        let mut loops = u32::from(own & IS_LOOP != 0);
        let mut sub = own & (VERTEX_MARK | EDGE_MARK);
        for c in [l, r] {
            if c != NIL {
                let child = &self.nodes[c as usize];
                size += child.size;
                loops += child.loops;
                if child.flags & (SUB_VERTEX_MARK | VERTEX_MARK) != 0 {
                    sub |= VERTEX_MARK;
                }
                if child.flags & (SUB_EDGE_MARK | EDGE_MARK) != 0 {
                    sub |= EDGE_MARK;
                }
            }
        }
        let node = &mut self.nodes[x as usize];
        node.size = size;
        node.loops = loops;
        node.flags = (node.flags & (IS_LOOP | VERTEX_MARK | EDGE_MARK))
            | (if sub & VERTEX_MARK != 0 {
                SUB_VERTEX_MARK
            } else {
                0
            })
            | (if sub & EDGE_MARK != 0 {
                SUB_EDGE_MARK
            } else {
                0
            });
    }

    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        let g = self.nodes[p as usize].parent;
        let x_is_left = self.nodes[p as usize].left == x;
        let b = if x_is_left {
            self.nodes[x as usize].right
        } else {
            self.nodes[x as usize].left
        };
        if x_is_left {
            self.nodes[p as usize].left = b;
            self.nodes[x as usize].right = p;
        } else {
            self.nodes[p as usize].right = b;
            self.nodes[x as usize].left = p;
        }
        if b != NIL {
            self.nodes[b as usize].parent = p;
        }
        self.nodes[p as usize].parent = x;
        self.nodes[x as usize].parent = g;
        if g != NIL {
            if self.nodes[g as usize].left == p {
                self.nodes[g as usize].left = x;
            } else {
                self.nodes[g as usize].right = x;
            }
        }
        self.pull(p);
        self.pull(x);
    }

    fn splay(&mut self, x: u32) {
        loop {
            let p = self.nodes[x as usize].parent;
            if p == NIL {
                return;
            }
            let g = self.nodes[p as usize].parent;
            if g != NIL {
                let zig_zig =
                    (self.nodes[g as usize].left == p) == (self.nodes[p as usize].left == x);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    /// Joins two tours (either may be `NIL`); returns the new root.
    fn join(&mut self, l: u32, r: u32) -> u32 {
        if l == NIL {
            return r;
        }
        if r == NIL {
            return l;
        }
        let mut max = l;
        while self.nodes[max as usize].right != NIL {
            max = self.nodes[max as usize].right;
        }
        self.splay(max);
        self.nodes[max as usize].right = r;
        self.nodes[r as usize].parent = max;
        self.pull(max);
        max
    }

    /// Splits into (everything before `x`, the tour starting at `x`).
    fn split_before(&mut self, x: u32) -> (u32, u32) {
        self.splay(x);
        let l = self.nodes[x as usize].left;
        if l != NIL {
            self.nodes[l as usize].parent = NIL;
            self.nodes[x as usize].left = NIL;
            self.pull(x);
        }
        (l, x)
    }

    /// Splits into (the tour ending at `x`, everything after `x`).
    fn split_after(&mut self, x: u32) -> (u32, u32) {
        self.splay(x);
        let r = self.nodes[x as usize].right;
        if r != NIL {
            self.nodes[r as usize].parent = NIL;
            self.nodes[x as usize].right = NIL;
            self.pull(x);
        }
        (x, r)
    }

    /// Sequence position of `x` within its tour (0-based).
    fn position(&mut self, x: u32) -> usize {
        self.splay(x);
        let l = self.nodes[x as usize].left;
        if l == NIL {
            0
        } else {
            self.nodes[l as usize].size as usize
        }
    }

    fn alloc_arc(&mut self, edge: u32) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node::arc(edge);
                slot
            }
            None => {
                self.nodes.push(Node::arc(edge));
                u32_of(self.nodes.len() - 1)
            }
        }
    }

    /// Rotates the tour of `v`'s tree so it starts at `v`'s loop node;
    /// returns the root of the rotated tour.
    fn reroot(&mut self, v: VertexId) -> u32 {
        let s = v.raw();
        let (l, r) = self.split_before(s);
        self.join(r, l)
    }

    // --- public forest operations ---------------------------------------

    /// Whether `u` and `v` are in the same tree. Amortized `O(log n)`.
    pub fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        let (a, b) = (u.raw(), v.raw());
        self.splay(a);
        self.splay(b);
        // Splaying `b` only touches `b`'s tree: `a` regained a parent iff it
        // was in it.
        self.nodes[a as usize].parent != NIL
    }

    /// Number of vertices in `v`'s tree. Amortized `O(log n)`.
    pub fn component_size(&mut self, v: VertexId) -> usize {
        let s = v.raw();
        self.splay(s);
        self.nodes[s as usize].loops as usize
    }

    /// Links `u` and `v` (which must be in different trees) and returns the
    /// handle for the created tree edge.
    ///
    /// # Panics
    ///
    /// Debug-panics if `u` and `v` are already connected (the forest would
    /// stop being one); use [`DynamicForest::try_link`] when unsure.
    pub fn link(&mut self, u: VertexId, v: VertexId) -> ForestEdge {
        self.link_keyed(u, v, NIL)
    }

    /// [`DynamicForest::link`] that refuses (returning `None`) when `u` and
    /// `v` are already connected.
    pub fn try_link(&mut self, u: VertexId, v: VertexId) -> Option<ForestEdge> {
        if self.connected(u, v) {
            None
        } else {
            Some(self.link_keyed(u, v, NIL))
        }
    }

    pub(crate) fn link_keyed(&mut self, u: VertexId, v: VertexId, edge: u32) -> ForestEdge {
        debug_assert!(u != v, "forests have no self-loops");
        debug_assert!(!self.connected(u, v), "link would close a cycle");
        let a = self.alloc_arc(edge);
        let b = self.alloc_arc(edge);
        // Tour: tour(u) ++ (u→v) ++ tour(v) ++ (v→u), both tours rotated to
        // start at their endpoint.
        let tu = self.reroot(u);
        let tv = self.reroot(v);
        let t = self.join(tu, a);
        let t = self.join(t, tv);
        self.join(t, b);
        ForestEdge { a, b }
    }

    /// Removes the tree edge `e`, splitting its tree in two. Amortized
    /// `O(log n)`.
    pub fn cut(&mut self, e: ForestEdge) {
        // Order the two arcs along the tour: the segment strictly between
        // them is exactly one side of the edge (an Euler-tour invariant that
        // survives rerooting, which is a cyclic rotation).
        let (first, second) = if self.position(e.a) < self.position(e.b) {
            (e.a, e.b)
        } else {
            (e.b, e.a)
        };
        let (prefix, _rest) = self.split_before(first);
        let (mid, suffix) = self.split_after(second);
        debug_assert_eq!(mid, second);
        // `first` is the minimum of `mid`: drop it off the front.
        self.splay(first);
        debug_assert_eq!(self.nodes[first as usize].left, NIL);
        let inner = self.nodes[first as usize].right;
        if inner != NIL {
            self.nodes[inner as usize].parent = NIL;
            self.nodes[first as usize].right = NIL;
        }
        // `second` is the maximum of what remains: drop it off the back.
        self.splay(second);
        debug_assert_eq!(self.nodes[second as usize].right, NIL);
        let between = self.nodes[second as usize].left;
        if between != NIL {
            self.nodes[between as usize].parent = NIL;
            self.nodes[second as usize].left = NIL;
        }
        // `between` is one component's tour; prefix ++ suffix is the other.
        self.join(prefix, suffix);
        self.free.push(first);
        self.free.push(second);
    }

    // --- level marks (the HDT search structure) --------------------------

    /// Sets/clears the "has a non-tree edge at this level" mark of `v`.
    pub(crate) fn set_vertex_mark(&mut self, v: VertexId, on: bool) {
        let s = v.raw();
        self.splay(s);
        if on {
            self.nodes[s as usize].flags |= VERTEX_MARK;
        } else {
            self.nodes[s as usize].flags &= !VERTEX_MARK;
        }
        self.pull(s);
    }

    /// Sets the "tree edge of exactly this level" mark on `e`'s primary arc.
    pub(crate) fn set_edge_mark(&mut self, e: ForestEdge, on: bool) {
        self.splay(e.a);
        if on {
            self.nodes[e.a as usize].flags |= EDGE_MARK;
        } else {
            self.nodes[e.a as usize].flags &= !EDGE_MARK;
        }
        self.pull(e.a);
    }

    /// Finds any marked vertex in `v`'s tree, following subtree aggregates
    /// from the root. Amortized `O(log n)`.
    pub(crate) fn find_marked_vertex(&mut self, v: VertexId) -> Option<VertexId> {
        self.find_marked(v, VERTEX_MARK, SUB_VERTEX_MARK)
            .map(|x| VertexId::new(x as usize))
    }

    /// Finds any arc whose tree edge is marked in `v`'s tree; returns the
    /// edge slot stored on the arc. Amortized `O(log n)`.
    pub(crate) fn find_marked_edge(&mut self, v: VertexId) -> Option<u32> {
        self.find_marked(v, EDGE_MARK, SUB_EDGE_MARK)
            .map(|x| self.nodes[x as usize].edge)
    }

    fn find_marked(&mut self, v: VertexId, own: u8, sub: u8) -> Option<u32> {
        let root = v.raw();
        self.splay(root);
        let mut x = root;
        if self.nodes[x as usize].flags & (own | sub) == 0 {
            return None;
        }
        loop {
            let node = &self.nodes[x as usize];
            let l = node.left;
            if l != NIL && self.nodes[l as usize].flags & (own | sub) != 0 {
                x = l;
                continue;
            }
            if node.flags & own != 0 {
                // Splaying the hit keeps the amortized analysis honest for
                // repeated searches down the same path.
                self.splay(x);
                return Some(x);
            }
            x = node.right;
            debug_assert_ne!(x, NIL, "subtree mark without a marked descendant");
        }
    }

    #[cfg(test)]
    fn tour_len(&mut self, v: VertexId) -> usize {
        let s = v.raw();
        self.splay(s);
        self.nodes[s as usize].size as usize
    }
}

/// Opaque identifier of one live edge inside a [`DynamicConnectivity`],
/// returned by [`DynamicConnectivity::insert_edge`]. Keys are recycled after
/// [`DynamicConnectivity::delete_edge`], so holding on to a deleted key is a
/// logic error (debug-asserted where detectable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeKey(u32);

#[derive(Clone, Debug)]
struct EdgeSlot {
    u: u32,
    v: u32,
    level: u32,
    /// Tree-edge handles, one per forest `0..=level`; empty for non-tree
    /// edges (whose positions in the incidence lists are below).
    tree: Vec<ForestEdge>,
    pos_u: u32,
    pos_v: u32,
    live: bool,
}

/// Fully-dynamic connectivity [HDT01]: `insert_edge` / `delete_edge` /
/// `connected` / `component_size` over a mutating multigraph in amortized
/// polylogarithmic time.
///
/// Levels `0..=L` (`L = ⌈log₂ n⌉`) each hold an Euler-tour forest
/// ([`DynamicForest`]) of the spanning-forest edges at that level or above,
/// plus per-vertex incidence lists of the non-tree edges parked at the
/// level. A deleted tree edge looks for a replacement from its level
/// downward, promoting the smaller side's edges one level up so each edge
/// is promoted at most `⌈log₂ n⌉` times — the classical amortization.
/// Levels (and their `O(n)` forests) are materialized lazily, so a workload
/// that never deletes pays for level 0 only.
///
/// [HDT01]: Holm, de Lichtenberg, Thorup, J. ACM 48(4), 2001.
#[derive(Clone, Debug)]
pub struct DynamicConnectivity {
    n: usize,
    max_level: usize,
    /// `forests[i]` holds tree edges of level ≥ i; `forests[0]` is the
    /// spanning forest queries run against.
    forests: Vec<DynamicForest>,
    /// `nontree[i][v]`: non-tree edges of level exactly `i` incident to `v`.
    nontree: Vec<Vec<Vec<u32>>>,
    slots: Vec<EdgeSlot>,
    free_slots: Vec<u32>,
    components: usize,
    num_edges: usize,
}

impl DynamicConnectivity {
    /// An edgeless structure over `n` vertices (`n` components).
    pub fn new(n: usize) -> Self {
        let max_level = if n <= 2 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        DynamicConnectivity {
            n,
            max_level,
            forests: vec![DynamicForest::new(n)],
            nontree: vec![vec![Vec::new(); n]],
            slots: Vec::new(),
            free_slots: Vec::new(),
            components: n,
            num_edges: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of connected components (isolated vertices included).
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Whether `u` and `v` are currently connected. Amortized `O(log n)`.
    pub fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        self.forests[0].connected(u, v)
    }

    /// Number of vertices in `v`'s component. Amortized `O(log n)`.
    pub fn component_size(&mut self, v: VertexId) -> usize {
        self.forests[0].component_size(v)
    }

    /// Endpoints of a live edge.
    pub fn endpoints(&self, key: EdgeKey) -> (VertexId, VertexId) {
        let slot = &self.slots[key.0 as usize];
        debug_assert!(slot.live, "endpoints of a deleted edge");
        (
            VertexId::new(slot.u as usize),
            VertexId::new(slot.v as usize),
        )
    }

    fn alloc_slot(&mut self, u: VertexId, v: VertexId) -> u32 {
        let slot = EdgeSlot {
            u: u.raw(),
            v: v.raw(),
            level: 0,
            tree: Vec::new(),
            pos_u: 0,
            pos_v: 0,
            live: true,
        };
        match self.free_slots.pop() {
            Some(idx) => {
                self.slots[idx as usize] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                u32_of(self.slots.len() - 1)
            }
        }
    }

    fn ensure_level(&mut self, level: usize) {
        while self.forests.len() <= level {
            self.forests.push(DynamicForest::new(self.n));
            self.nontree.push(vec![Vec::new(); self.n]);
        }
    }

    /// Parks non-tree edge `idx` at `level`, maintaining positions and the
    /// per-vertex marks in that level's forest.
    fn insert_nontree(&mut self, level: usize, idx: u32) {
        self.ensure_level(level);
        let (u, v) = {
            let slot = &self.slots[idx as usize];
            (slot.u as usize, slot.v as usize)
        };
        for (x, is_u) in [(u, true), (v, false)] {
            let list = &mut self.nontree[level][x];
            let pos = u32_of(list.len());
            list.push(idx);
            let slot = &mut self.slots[idx as usize];
            if is_u {
                slot.pos_u = pos;
            } else {
                slot.pos_v = pos;
            }
            if pos == 0 {
                self.forests[level].set_vertex_mark(VertexId::new(x), true);
            }
        }
    }

    /// Removes non-tree edge `idx` from `level`'s incidence lists
    /// (swap-remove with position fix-up), clearing emptied vertex marks.
    fn remove_nontree(&mut self, level: usize, idx: u32) {
        let (u, v, pos_u, pos_v) = {
            let slot = &self.slots[idx as usize];
            (slot.u as usize, slot.v as usize, slot.pos_u, slot.pos_v)
        };
        for (x, pos) in [(u, pos_u), (v, pos_v)] {
            let list = &mut self.nontree[level][x];
            let pos = pos as usize;
            debug_assert_eq!(list[pos], idx);
            list.swap_remove(pos);
            if let Some(&moved) = list.get(pos) {
                let moved_slot = &mut self.slots[moved as usize];
                if moved_slot.u as usize == x {
                    moved_slot.pos_u = u32_of(pos);
                } else {
                    debug_assert_eq!(moved_slot.v as usize, x);
                    moved_slot.pos_v = u32_of(pos);
                }
            }
            if list.is_empty() {
                self.forests[level].set_vertex_mark(VertexId::new(x), false);
            }
        }
    }

    /// Inserts an edge between `u` and `v` and returns its key. Parallel
    /// edges are allowed (each insertion is its own key). Amortized
    /// `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v` (self-loops never
    /// appear in forest decompositions, so the structure rejects them).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> EdgeKey {
        assert!(u.index() < self.n && v.index() < self.n, "vertex in range");
        assert!(u != v, "self-loops are not supported");
        let idx = self.alloc_slot(u, v);
        self.num_edges += 1;
        if self.forests[0].connected(u, v) {
            self.insert_nontree(0, idx);
        } else {
            let fe = self.forests[0].link_keyed(u, v, idx);
            self.forests[0].set_edge_mark(fe, true);
            self.slots[idx as usize].tree.push(fe);
            self.components -= 1;
        }
        EdgeKey(idx)
    }

    /// Deletes the edge behind `key`. Returns `true` when the deletion
    /// split a component (no replacement edge existed). Amortized
    /// `O(log² n)`.
    ///
    /// # Panics
    ///
    /// Panics if `key` was already deleted.
    pub fn delete_edge(&mut self, key: EdgeKey) -> bool {
        let idx = key.0;
        let slot = &mut self.slots[idx as usize];
        assert!(slot.live, "delete of an already-deleted edge key");
        slot.live = false;
        self.num_edges -= 1;
        let level = slot.level as usize;
        let tree = std::mem::take(&mut slot.tree);
        let (u, v) = (
            VertexId::new(slot.u as usize),
            VertexId::new(slot.v as usize),
        );
        self.free_slots.push(idx);
        if tree.is_empty() {
            self.remove_nontree(level, idx);
            return false;
        }
        // A tree edge: cut it out of every forest it participates in, then
        // search the levels top-down for a replacement.
        for (i, fe) in tree.into_iter().enumerate() {
            self.forests[i].cut(fe);
        }
        self.components += 1;
        for i in (0..=level).rev() {
            if self.replace_at_level(i, u, v) {
                self.components -= 1;
                return false;
            }
        }
        true
    }

    /// One level of the HDT replacement search: promote the smaller side's
    /// level-`i` tree edges, then scan its level-`i` non-tree edges for one
    /// that reconnects the two sides. Returns `true` if a replacement was
    /// found (and linked into forests `0..=i`).
    fn replace_at_level(&mut self, i: usize, u: VertexId, v: VertexId) -> bool {
        let small = if self.forests[i].component_size(u) <= self.forests[i].component_size(v) {
            u
        } else {
            v
        };
        // Promote the small side's tree edges of level exactly `i`: its
        // component is at most half the level-`i` bound, so the level-`i+1`
        // size invariant holds and each edge pays one of its ≤ log n
        // promotions.
        if i < self.max_level {
            self.ensure_level(i + 1);
            while let Some(edge_idx) = self.forests[i].find_marked_edge(small) {
                let (eu, ev) = {
                    let slot = &mut self.slots[edge_idx as usize];
                    debug_assert_eq!(slot.level as usize, i);
                    slot.level = u32_of(i + 1);
                    (
                        VertexId::new(slot.u as usize),
                        VertexId::new(slot.v as usize),
                    )
                };
                let old = self.slots[edge_idx as usize].tree[i];
                self.forests[i].set_edge_mark(old, false);
                let fe = self.forests[i + 1].link_keyed(eu, ev, edge_idx);
                self.forests[i + 1].set_edge_mark(fe, true);
                self.slots[edge_idx as usize].tree.push(fe);
            }
        }
        // Scan the small side's non-tree edges at level `i`. Every examined
        // edge is either promoted (both endpoints inside) or is the
        // replacement, so each examination is paid for by a level increase.
        while let Some(x) = self.forests[i].find_marked_vertex(small) {
            let mut cursor = 0usize;
            while let Some(&edge_idx) = self.nontree[i][x.index()].get(cursor) {
                let (a, b) = {
                    let slot = &self.slots[edge_idx as usize];
                    (
                        VertexId::new(slot.u as usize),
                        VertexId::new(slot.v as usize),
                    )
                };
                let y = if a == x { b } else { a };
                if self.forests[i].connected(x, y) {
                    if i < self.max_level {
                        self.remove_nontree(i, edge_idx);
                        self.slots[edge_idx as usize].level = u32_of(i + 1);
                        self.insert_nontree(i + 1, edge_idx);
                        // The swap-remove refilled `cursor`; do not advance.
                    } else {
                        // Unreachable by the size invariant (level-L
                        // components are singletons); skip defensively
                        // rather than loop.
                        debug_assert!(false, "non-promotable edge at the top level");
                        cursor += 1;
                    }
                } else {
                    // Replacement found: it becomes a tree edge at its own
                    // level, linked into every forest below.
                    self.remove_nontree(i, edge_idx);
                    let mut handles = Vec::with_capacity(i + 1);
                    for j in 0..=i {
                        handles.push(self.forests[j].link_keyed(a, b, edge_idx));
                    }
                    self.forests[i].set_edge_mark(handles[i], true);
                    self.slots[edge_idx as usize].tree = handles;
                    return true;
                }
            }
            if !self.nontree[i][x.index()].is_empty() {
                // Only reachable through the defensive skip above.
                break;
            }
        }
        false
    }
}

/// A mutable multigraph with **stable edge ids** under deletion: the
/// adjacency container behind streaming decomposition.
///
/// [`MultiGraph`](crate::MultiGraph) assigns dense ids `0..m` and cannot
/// delete; `DynamicGraph` assigns each inserted edge the next id *forever*
/// (ids of deleted edges are never reused), so colorings, palettes and
/// connectivity caches indexed by [`EdgeId`] stay valid across deletions.
///
/// The price of stable ids is that per-edge state scales with the id
/// *span* (total inserts ever), not the live edge count: dense arrays
/// sized by [`GraphView::num_edges`] — including the visited/parent
/// scratch of the exchange searches — grow monotonically over the life of
/// the stream. Workloads that churn for very long without restarting
/// should periodically rebuild via
/// [`to_multigraph`](DynamicGraph::to_multigraph) (an id-space compaction
/// hook is a filed follow-on).
///
/// It implements [`GraphView`] over its **live** edges with one documented
/// deviation from the trait's dense-id contract:
/// [`num_edges`](GraphView::num_edges) returns the edge-id *span* (live +
/// dead slots) so that dense per-edge arrays sized by it stay indexable,
/// while [`edge_ids`](GraphView::edge_ids) / [`edges`](GraphView::edges) /
/// [`incidences`](GraphView::incidences) yield live edges only and
/// [`endpoints`](GraphView::endpoints) panics on dead ids. The augmenting
/// searches (`path_between`, the matroid exchange BFS) only ever touch
/// edges reached through adjacency, so they run unchanged.
#[derive(Clone, Debug, Default)]
pub struct DynamicGraph {
    /// Slot per ever-inserted edge; `None` = deleted.
    endpoints: Vec<Option<(VertexId, VertexId)>>,
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    live: usize,
}

impl DynamicGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            endpoints: Vec::new(),
            adj: vec![Vec::new(); n],
            live: 0,
        }
    }

    /// Inserts an edge and returns its permanent id.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] / [`GraphError::SelfLoop`] exactly
    /// like [`MultiGraph::add_edge`](crate::MultiGraph::add_edge).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        for x in [u, v] {
            if x.index() >= self.adj.len() {
                return Err(GraphError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: self.adj.len(),
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let id = EdgeId::new(self.endpoints.len());
        self.endpoints.push(Some((u, v)));
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        self.live += 1;
        Ok(id)
    }

    /// Deletes a live edge, returning its endpoints. The id is retired, not
    /// recycled.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeOutOfRange`] when `e` is unknown or already
    /// deleted.
    pub fn delete_edge(&mut self, e: EdgeId) -> Result<(VertexId, VertexId), GraphError> {
        let slot = self
            .endpoints
            .get_mut(e.index())
            .and_then(Option::take)
            .ok_or(GraphError::EdgeOutOfRange {
                edge: e,
                num_edges: self.endpoints.len(),
            })?;
        let (u, v) = slot;
        for x in [u, v] {
            let list = &mut self.adj[x.index()];
            let pos = list
                .iter()
                .position(|&(_, id)| id == e)
                .expect("live edge is in both adjacency lists");
            list.swap_remove(pos);
        }
        self.live -= 1;
        Ok((u, v))
    }

    /// Whether `e` names a live edge.
    pub fn is_live(&self, e: EdgeId) -> bool {
        matches!(self.endpoints.get(e.index()), Some(Some(_)))
    }

    /// Number of live edges (the span of ever-assigned ids is
    /// [`GraphView::num_edges`]).
    pub fn num_live_edges(&self) -> usize {
        self.live
    }

    /// The span of ever-assigned edge ids (live + dead).
    pub fn edge_id_span(&self) -> usize {
        self.endpoints.len()
    }

    /// Live edges in ascending id (= insertion) order.
    pub fn live_edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|(u, v)| (EdgeId::new(i), u, v)))
    }

    /// Compacts the live edges into a fresh [`MultiGraph`] (ascending id
    /// order) plus the map from compact ids back to this graph's stable ids.
    /// This is the canonical "final graph" a cold decomposition runs on.
    pub fn to_multigraph(&self) -> (crate::MultiGraph, Vec<EdgeId>) {
        let mut g = crate::MultiGraph::new(self.adj.len());
        let mut ids = Vec::with_capacity(self.live);
        for (e, u, v) in self.live_edges() {
            g.add_edge(u, v).expect("live edges are valid");
            ids.push(e);
        }
        (g, ids)
    }

    /// Compacts the edge-id space in place: live edges are renumbered
    /// `0..num_live_edges()` in ascending old-id (= insertion) order, dead
    /// slots are dropped, and the adjacency lists are rewritten to the new
    /// ids. This caps the per-edge-array leak on unbounded update streams
    /// — after compaction, dense arrays sized by [`GraphView::num_edges`]
    /// shrink back to the live count.
    ///
    /// Because the renumbering preserves insertion order, the compact
    /// graph's [`to_multigraph`](DynamicGraph::to_multigraph) output — the
    /// canonical "final graph" the snapshot contract is defined against —
    /// is unchanged. Returns the [`EdgeIdRemap`] callers need to translate
    /// ids they handed out before the compaction.
    pub fn compact_ids(&mut self) -> EdgeIdRemap {
        let mut new_to_old = Vec::with_capacity(self.live);
        let mut old_to_new = vec![None; self.endpoints.len()];
        let mut endpoints = Vec::with_capacity(self.live);
        for (i, slot) in self.endpoints.iter().enumerate() {
            if let Some((u, v)) = *slot {
                old_to_new[i] = Some(EdgeId::new(new_to_old.len()));
                new_to_old.push(EdgeId::new(i));
                endpoints.push(Some((u, v)));
            }
        }
        self.endpoints = endpoints;
        for list in &mut self.adj {
            for entry in list.iter_mut() {
                entry.1 = old_to_new[entry.1.index()].expect("adjacency holds live edges only");
            }
        }
        EdgeIdRemap {
            new_to_old,
            old_to_new,
        }
    }
}

/// The id translation returned by [`DynamicGraph::compact_ids`]: live
/// edges keep their relative (insertion) order but move to the dense id
/// range `0..new_span()`.
#[derive(Clone, Debug, Default)]
pub struct EdgeIdRemap {
    /// `new_to_old[new.index()]` = the id the edge carried before.
    new_to_old: Vec<EdgeId>,
    /// `old_to_new[old.index()]` = the compact id (`None` = was dead).
    old_to_new: Vec<Option<EdgeId>>,
}

impl EdgeIdRemap {
    /// The edge-id span before compaction.
    pub fn old_span(&self) -> usize {
        self.old_to_new.len()
    }

    /// The edge-id span after compaction (= the live edge count).
    pub fn new_span(&self) -> usize {
        self.new_to_old.len()
    }

    /// The compact id of a pre-compaction id (`None` when the old id was
    /// dead or out of range).
    pub fn new_id(&self, old: EdgeId) -> Option<EdgeId> {
        self.old_to_new.get(old.index()).copied().flatten()
    }

    /// The pre-compaction id of a compact id (`None` when out of range).
    pub fn old_id(&self, new: EdgeId) -> Option<EdgeId> {
        self.new_to_old.get(new.index()).copied()
    }

    /// `(new, old)` pairs in ascending (= insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, EdgeId)> + '_ {
        self.new_to_old
            .iter()
            .enumerate()
            .map(|(i, &old)| (EdgeId::new(i), old))
    }
}

impl GraphView for DynamicGraph {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// The edge-id **span** (see the type docs): dense per-edge arrays
    /// sized by this stay indexable by every live id.
    fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e.index()].expect("endpoints of a deleted edge")
    }

    fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    fn incidences(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.adj[v.index()].iter().copied()
    }

    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        self.endpoints
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|_| EdgeId::new(i)))
    }

    fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.live_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::UnionFind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn forest_link_cut_path() {
        let mut f = DynamicForest::new(5);
        let edges: Vec<ForestEdge> = (0..4).map(|i| f.link(v(i), v(i + 1))).collect();
        assert!(f.connected(v(0), v(4)));
        assert_eq!(f.component_size(v(2)), 5);
        assert_eq!(f.tour_len(v(0)), 5 + 2 * 4);
        f.cut(edges[1]); // 0-1 | 2-3-4
        assert!(f.connected(v(0), v(1)));
        assert!(f.connected(v(2), v(4)));
        assert!(!f.connected(v(1), v(2)));
        assert_eq!(f.component_size(v(0)), 2);
        assert_eq!(f.component_size(v(3)), 3);
        // Relink across the gap elsewhere.
        let e = f.link(v(0), v(4));
        assert!(f.connected(v(1), v(3)));
        f.cut(e);
        assert!(!f.connected(v(1), v(3)));
    }

    #[test]
    fn forest_try_link_refuses_cycles() {
        let mut f = DynamicForest::new(3);
        assert!(f.try_link(v(0), v(1)).is_some());
        assert!(f.try_link(v(1), v(2)).is_some());
        assert!(f.try_link(v(0), v(2)).is_none());
    }

    #[test]
    fn forest_random_link_cut_agrees_with_rebuild() {
        // Maintain a forest under random link/cut; after every operation,
        // compare `connected` on random pairs against a from-scratch
        // union-find over the current edge set.
        let n = 40;
        let mut rng = StdRng::seed_from_u64(7);
        let mut f = DynamicForest::new(n);
        let mut edges: Vec<(usize, usize, ForestEdge)> = Vec::new();
        for _ in 0..400 {
            let cut_now = !edges.is_empty() && rng.gen_bool(0.45);
            if cut_now {
                let k = rng.gen_range(0..edges.len());
                let (_, _, handle) = edges.swap_remove(k);
                f.cut(handle);
            } else {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a != b && !f.connected(v(a), v(b)) {
                    let handle = f.link(v(a), v(b));
                    edges.push((a, b, handle));
                }
            }
            let mut uf = UnionFind::from_edges(n, edges.iter().map(|&(a, b, _)| (a, b)));
            for _ in 0..30 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                assert_eq!(f.connected(v(a), v(b)), uf.connected(a, b));
            }
            // Component sizes agree too.
            let probe = rng.gen_range(0..n);
            let root = uf.find(probe);
            let size = (0..n).filter(|&x| uf.find(x) == root).count();
            assert_eq!(f.component_size(v(probe)), size);
        }
    }

    #[test]
    fn connectivity_insert_delete_cycle() {
        let mut dc = DynamicConnectivity::new(4);
        assert_eq!(dc.num_components(), 4);
        let ab = dc.insert_edge(v(0), v(1));
        let bc = dc.insert_edge(v(1), v(2));
        let ca = dc.insert_edge(v(2), v(0));
        assert_eq!(dc.num_components(), 2);
        assert!(dc.connected(v(0), v(2)));
        // Deleting a tree edge with a replacement keeps the component.
        assert!(!dc.delete_edge(ab));
        assert!(dc.connected(v(0), v(1)));
        // With the cycle gone, vertex 1 hangs off `bc` alone.
        assert!(dc.delete_edge(bc));
        assert!(!dc.connected(v(1), v(2)));
        assert!(dc.connected(v(0), v(2)));
        assert!(dc.delete_edge(ca));
        assert_eq!(dc.num_edges(), 0);
        assert_eq!(dc.num_components(), 4);
    }

    #[test]
    fn connectivity_parallel_edges_are_distinct() {
        let mut dc = DynamicConnectivity::new(2);
        let e1 = dc.insert_edge(v(0), v(1));
        let e2 = dc.insert_edge(v(0), v(1));
        assert_ne!(e1, e2);
        assert!(!dc.delete_edge(e1)); // the parallel edge replaces it
        assert!(dc.connected(v(0), v(1)));
        assert!(dc.delete_edge(e2));
        assert!(!dc.connected(v(0), v(1)));
        assert_eq!(dc.num_components(), 2);
    }

    #[test]
    fn connectivity_random_matches_union_find() {
        let n = 48;
        let mut rng = StdRng::seed_from_u64(23);
        let mut dc = DynamicConnectivity::new(n);
        let mut live: Vec<(usize, usize, EdgeKey)> = Vec::new();
        for step in 0..1200 {
            let delete = !live.is_empty() && rng.gen_bool(0.48);
            if delete {
                let k = rng.gen_range(0..live.len());
                let (_, _, key) = live.swap_remove(k);
                dc.delete_edge(key);
            } else {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a == b {
                    continue;
                }
                let key = dc.insert_edge(v(a), v(b));
                live.push((a, b, key));
            }
            let mut uf = UnionFind::from_edges(n, live.iter().map(|&(a, b, _)| (a, b)));
            assert_eq!(dc.num_components(), uf.num_components(), "step {step}");
            assert_eq!(dc.num_edges(), live.len());
            for _ in 0..25 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                assert_eq!(dc.connected(v(a), v(b)), uf.connected(a, b), "step {step}");
            }
        }
    }

    #[test]
    fn connectivity_component_sizes() {
        let mut dc = DynamicConnectivity::new(6);
        dc.insert_edge(v(0), v(1));
        dc.insert_edge(v(1), v(2));
        let e = dc.insert_edge(v(3), v(4));
        assert_eq!(dc.component_size(v(2)), 3);
        assert_eq!(dc.component_size(v(3)), 2);
        assert_eq!(dc.component_size(v(5)), 1);
        assert!(dc.delete_edge(e));
        assert_eq!(dc.component_size(v(3)), 1);
    }

    #[test]
    fn connectivity_deep_level_promotion() {
        // A dense-ish graph whose spanning tree is repeatedly shredded:
        // exercises multi-level promotions. Compare against union-find.
        let n = 32;
        let mut dc = DynamicConnectivity::new(n);
        let mut keys = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if (i + j) % 3 != 0 {
                    keys.push((i, j, dc.insert_edge(v(i), v(j))));
                }
            }
        }
        // Delete in waves, checking connectivity after each wave.
        let mut rng = StdRng::seed_from_u64(5);
        while !keys.is_empty() {
            for _ in 0..keys.len().div_ceil(3).max(1) {
                if keys.is_empty() {
                    break;
                }
                let k = rng.gen_range(0..keys.len());
                let (_, _, key) = keys.swap_remove(k);
                dc.delete_edge(key);
            }
            let mut uf = UnionFind::from_edges(n, keys.iter().map(|&(a, b, _)| (a, b)));
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(dc.connected(v(a), v(b)), uf.connected(a, b));
                }
            }
        }
        assert_eq!(dc.num_components(), n);
    }

    #[test]
    fn dynamic_graph_stable_ids_and_views() {
        let mut g = DynamicGraph::new(4);
        let e0 = g.insert_edge(v(0), v(1)).unwrap();
        let e1 = g.insert_edge(v(1), v(2)).unwrap();
        let e2 = g.insert_edge(v(2), v(3)).unwrap();
        assert_eq!(g.num_live_edges(), 3);
        g.delete_edge(e1).unwrap();
        assert_eq!(g.num_live_edges(), 2);
        assert_eq!(GraphView::num_edges(&g), 3, "span keeps dead slots");
        assert!(g.is_live(e0) && !g.is_live(e1) && g.is_live(e2));
        assert!(matches!(
            g.delete_edge(e1),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
        let live: Vec<EdgeId> = GraphView::edge_ids(&g).collect();
        assert_eq!(live, vec![e0, e2]);
        assert_eq!(g.degree(v(1)), 1);
        // A re-insert gets a fresh id; the dead id is never reused.
        let e3 = g.insert_edge(v(1), v(2)).unwrap();
        assert_eq!(e3.index(), 3);
        let (mg, ids) = g.to_multigraph();
        assert_eq!(mg.num_edges(), 3);
        assert_eq!(ids, vec![e0, e2, e3]);
        assert_eq!(
            mg.endpoints(EdgeId::new(1)),
            g.endpoints[e2.index()].unwrap()
        );
    }

    #[test]
    fn dynamic_graph_rejects_bad_updates() {
        let mut g = DynamicGraph::new(2);
        assert!(matches!(
            g.insert_edge(v(0), v(5)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.insert_edge(v(1), v(1)),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn compact_ids_renumbers_live_edges_in_insertion_order() {
        let mut g = DynamicGraph::new(5);
        let mut ids = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
            ids.push(g.insert_edge(v(a), v(b)).unwrap());
        }
        g.delete_edge(ids[1]).unwrap();
        g.delete_edge(ids[4]).unwrap();
        let (before, survivors) = g.to_multigraph();
        let remap = g.compact_ids();
        assert_eq!(remap.old_span(), 6);
        assert_eq!(remap.new_span(), 4);
        assert_eq!(GraphView::num_edges(&g), 4, "span shrank to live count");
        assert_eq!(g.num_live_edges(), 4);
        // Surviving edges keep their insertion order under the new ids.
        for (new, old) in remap.iter() {
            assert_eq!(remap.new_id(old), Some(new));
            assert_eq!(remap.old_id(new), Some(old));
            assert_eq!(g.endpoints(new), before.endpoints(EdgeId::new(new.index())));
        }
        assert_eq!(
            remap.iter().map(|(_, old)| old).collect::<Vec<_>>(),
            survivors
        );
        assert_eq!(remap.new_id(ids[1]), None, "dead ids have no new id");
        // The canonical compacted multigraph is unchanged.
        let (after, after_ids) = g.to_multigraph();
        assert_eq!(after.num_edges(), before.num_edges());
        for e in 0..after.num_edges() {
            assert_eq!(
                after.endpoints(EdgeId::new(e)),
                before.endpoints(EdgeId::new(e))
            );
        }
        assert_eq!(after_ids, (0..4).map(EdgeId::new).collect::<Vec<_>>());
        // Adjacency was rewritten consistently: degrees survive.
        assert_eq!(g.degree(v(0)), 2);
        // Further inserts extend the compact id space.
        let e = g.insert_edge(v(1), v(4)).unwrap();
        assert_eq!(e.index(), 4);
    }
}
