//! External-sort construction of the on-disk CSR format from raw edge files:
//! the front half of the out-of-core pipeline.
//!
//! [`build_csr_from_edge_file`] reads a binary or text edge list in
//! fixed-size chunks, never holding more than a configurable number of bytes
//! of incidence records in memory, and writes the exact bytes
//! `CsrGraph::from_multigraph(&g).save(path)` would produce — without ever
//! constructing a [`MultiGraph`](crate::MultiGraph) (or any other `O(n + m)`
//! in-memory structure beyond the sort buffer). The pipeline is the classic
//! external merge sort, specialized to CSR assembly:
//!
//! 1. **Chunked read + run spill.** Every edge `i = (u, v)` becomes two
//!    12-byte incidence records `(u, i, v)` and `(v, i, u)`; the interleaved
//!    `endpoints` section is streamed to a temp file in edge order as a side
//!    effect of the same pass. When the record buffer reaches the memory
//!    ceiling it is sorted by `(endpoint, edge id)` — exactly the incidence
//!    order `MultiGraph` insertion produces — and spilled to a run file.
//! 2. **K-way merge.** The sorted runs are heap-merged straight into the
//!    `offsets` / `neighbors` / `edge_ids` section files; no two records
//!    share a `(endpoint, edge id)` key (self-loops are rejected), so the
//!    merge order — and therefore the output — is deterministic.
//! 3. **Concatenate.** The 32-byte versioned header and the four section
//!    files are streamed into the destination file.
//!
//! The merge also computes the **degree/density watermark** in the same
//! pass: the maximum degree falls out of the per-vertex run lengths, and the
//! Nash-Williams lower bound `⌈m/(n−1)⌉` from the edge and vertex counts —
//! the simple counting argument of Reiher–Sauermann, which needs nothing
//! beyond `m` and `n` and is therefore free in a streaming build. The
//! resulting [`BuildStats`] is the out-of-core driver's first estimate of
//! how many forests the file will need before any decomposition runs.
//!
//! Peak memory is `memory_budget_bytes` for the sort buffer plus a fixed
//! small number of buffered file handles (one per run during the merge);
//! [`BuildStats::peak_buffer_bytes`] reports what the buffer actually
//! reached so callers can assert their ceiling held.

use crate::csr::{FORMAT_MAGIC, FORMAT_VERSION, HEADER_BYTES};
use forest_obs::{clock::Stopwatch, LazyCounter, Span};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Typed mirrors of the [`BuildStats`] timing/spill fields in the
/// `forest-obs` registry (cumulative across builds).
static READ_SPILL_NANOS: LazyCounter = LazyCounter::new("extsort.read_spill_nanos_total");
static MERGE_NANOS: LazyCounter = LazyCounter::new("extsort.merge_nanos_total");
static SPILLED_RUNS: LazyCounter = LazyCounter::new("extsort.spilled_runs_total");
static EDGES_READ: LazyCounter = LazyCounter::new("extsort.edges_read_total");
static BUILDS: LazyCounter = LazyCounter::new("extsort.builds_total");

/// Bytes of one incidence record `(endpoint, edge_id, other)` on disk and in
/// the sort buffer.
const RECORD_BYTES: usize = 12;

/// Floor on the sort-buffer capacity in records: below this, run files
/// degenerate to a handful of edges each and the merge heap dominates.
const MIN_BUFFER_RECORDS: usize = 64;

/// Buffered-reader capacity per run during the merge (not part of the
/// configurable sort budget; a fixed per-run cost like the file handle).
const RUN_READER_BYTES: usize = 64 * 1024;

/// Distinguishes concurrent builders' temp directories within one process.
static TEMP_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Input encodings [`build_csr_from_edge_file`] understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeListFormat {
    /// Interleaved little-endian `u32` pairs, one `(u, v)` per edge; the
    /// file length must be a multiple of 8. [`write_binary_edge_file`]
    /// produces this.
    BinaryU32,
    /// One `u v` pair per line (any ASCII whitespace between them); blank
    /// lines and lines starting with `#` are skipped.
    Text,
}

/// Configuration of one external-sort build.
#[derive(Clone, Debug)]
pub struct ExtsortConfig {
    /// Hard ceiling on the in-memory sort buffer, in bytes. The buffer is
    /// spilled to a sorted run file whenever it would exceed this.
    pub memory_budget_bytes: usize,
    /// Explicit vertex count (needed when trailing vertices are isolated);
    /// `None` infers `max endpoint + 1`.
    pub num_vertices: Option<usize>,
    /// Directory for spill files; `None` uses a fresh directory next to the
    /// output file (same filesystem, so no cross-device copies).
    pub temp_dir: Option<PathBuf>,
}

impl ExtsortConfig {
    /// A config with the given sort-buffer ceiling and everything else
    /// defaulted.
    pub fn with_budget(memory_budget_bytes: usize) -> Self {
        ExtsortConfig {
            memory_budget_bytes,
            num_vertices: None,
            temp_dir: None,
        }
    }

    /// Sets the explicit vertex count.
    pub fn num_vertices(mut self, n: usize) -> Self {
        self.num_vertices = Some(n);
        self
    }

    /// Sets the spill directory.
    pub fn temp_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.temp_dir = Some(dir.into());
        self
    }
}

/// What one external-sort build measured: the degree/density watermark and
/// the phase accounting the out-of-core benchmarks report.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Vertices in the output CSR.
    pub num_vertices: usize,
    /// Edges in the output CSR.
    pub num_edges: usize,
    /// Sorted runs spilled to disk (0 when everything fit the buffer).
    pub spilled_runs: usize,
    /// Maximum vertex degree, computed from the merge's per-vertex run
    /// lengths.
    pub max_degree: usize,
    /// The Nash-Williams arboricity lower bound `⌈m/(n−1)⌉` — the
    /// Reiher–Sauermann counting watermark, free in one streaming pass.
    pub nash_williams_watermark: usize,
    /// Largest size the sort buffer reached, in bytes (≤ the configured
    /// ceiling, modulo the [`MIN_BUFFER_RECORDS`] floor).
    pub peak_buffer_bytes: usize,
    /// Wall-clock of the read + sort + spill pass, nanoseconds.
    pub read_spill_nanos: u64,
    /// Wall-clock of the k-way merge + concatenation, nanoseconds.
    pub merge_nanos: u64,
    /// Size of the finished CSR file in bytes.
    pub output_bytes: u64,
}

/// One incidence record: the sort key is `(endpoint, edge)`.
#[derive(Clone, Copy, Debug)]
struct Record {
    endpoint: u32,
    edge: u32,
    other: u32,
}

impl Record {
    #[inline]
    fn key(&self) -> u64 {
        (u64::from(self.endpoint) << 32) | u64::from(self.edge)
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes `edges` as a [`EdgeListFormat::BinaryU32`] file and returns the
/// number of edges written — the generator side of the pipeline, used by
/// tests and benchmarks to fabricate inputs without a `MultiGraph`.
///
/// # Errors
///
/// Propagates any I/O error.
pub fn write_binary_edge_file<P, I>(path: P, edges: I) -> io::Result<u64>
where
    P: AsRef<Path>,
    I: IntoIterator<Item = (u32, u32)>,
{
    let mut w = BufWriter::new(File::create(path)?);
    let mut count = 0u64;
    for (u, v) in edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// Streaming edge-pair source over either input format.
enum EdgeSource {
    Binary(BufReader<File>),
    Text {
        reader: BufReader<File>,
        line: String,
        lineno: usize,
    },
}

impl EdgeSource {
    fn open(path: &Path, format: EdgeListFormat) -> io::Result<Self> {
        let reader = BufReader::with_capacity(256 * 1024, File::open(path)?);
        Ok(match format {
            EdgeListFormat::BinaryU32 => EdgeSource::Binary(reader),
            EdgeListFormat::Text => EdgeSource::Text {
                reader,
                line: String::new(),
                lineno: 0,
            },
        })
    }

    /// The next `(u, v)` pair, or `None` at end of input.
    fn next_edge(&mut self) -> io::Result<Option<(u32, u32)>> {
        match self {
            EdgeSource::Binary(reader) => {
                let mut pair = [0u8; 8];
                let mut filled = 0;
                while filled < 8 {
                    let read = reader.read(&mut pair[filled..])?;
                    if read == 0 {
                        break;
                    }
                    filled += read;
                }
                match filled {
                    0 => Ok(None),
                    8 => Ok(Some((
                        u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]),
                        u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]),
                    ))),
                    _ => Err(invalid(
                        "binary edge file length is not a multiple of 8 bytes",
                    )),
                }
            }
            EdgeSource::Text {
                reader,
                line,
                lineno,
            } => loop {
                line.clear();
                if reader.read_line(line)? == 0 {
                    return Ok(None);
                }
                *lineno += 1;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                let mut parts = trimmed.split_whitespace();
                let parse = |tok: Option<&str>, lineno: usize| -> io::Result<u32> {
                    tok.and_then(|t| t.parse::<u32>().ok()).ok_or_else(|| {
                        invalid(format!(
                            "edge file line {lineno}: expected two u32 endpoints"
                        ))
                    })
                };
                let u = parse(parts.next(), *lineno)?;
                let v = parse(parts.next(), *lineno)?;
                if parts.next().is_some() {
                    return Err(invalid(format!(
                        "edge file line {lineno}: trailing tokens after the endpoint pair"
                    )));
                }
                return Ok(Some((u, v)));
            },
        }
    }
}

/// A sorted run the merge consumes: a spilled file or the final in-memory
/// buffer (which never needs to touch disk).
enum RunSource {
    Disk(BufReader<File>),
    Mem(std::vec::IntoIter<Record>),
}

impl RunSource {
    fn next_record(&mut self) -> io::Result<Option<Record>> {
        match self {
            RunSource::Disk(reader) => {
                let mut raw = [0u8; RECORD_BYTES];
                let mut filled = 0;
                while filled < RECORD_BYTES {
                    let read = reader.read(&mut raw[filled..])?;
                    if read == 0 {
                        break;
                    }
                    filled += read;
                }
                match filled {
                    0 => Ok(None),
                    RECORD_BYTES => Ok(Some(Record {
                        endpoint: u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]),
                        edge: u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]),
                        other: u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]),
                    })),
                    _ => Err(invalid("truncated spill run (torn record)")),
                }
            }
            RunSource::Mem(iter) => Ok(iter.next()),
        }
    }
}

/// Best-effort removal of the spill directory, including on error paths.
struct TempDirGuard {
    dir: PathBuf,
}

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Streams an edge file into the versioned on-disk CSR format at `output`
/// under the configured memory ceiling, returning the build's
/// [`BuildStats`]. The output is byte-identical to freezing the same edge
/// list through `CsrGraph::from_multigraph(&g).save(output)` (same header,
/// same section bytes) — pinned by the `extsort` proptests.
///
/// # Errors
///
/// Propagates I/O errors; returns [`io::ErrorKind::InvalidData`] for
/// malformed input (torn binary pairs, unparsable text lines), self-loops
/// (a forest decomposition input never contains them, matching
/// `MultiGraph`), an explicit `num_vertices` smaller than `max endpoint +
/// 1`, or a graph whose incidence count overflows the format's 32-bit
/// offsets.
pub fn build_csr_from_edge_file<P, Q>(
    input: P,
    format: EdgeListFormat,
    output: Q,
    config: &ExtsortConfig,
) -> io::Result<BuildStats>
where
    P: AsRef<Path>,
    Q: AsRef<Path>,
{
    let input = input.as_ref();
    let output = output.as_ref();
    let mut stats = BuildStats::default();

    // Spill directory: same filesystem as the output unless overridden.
    let temp_root = config
        .temp_dir
        .clone()
        .or_else(|| output.parent().map(Path::to_path_buf))
        .unwrap_or_else(std::env::temp_dir);
    let temp_dir = temp_root.join(format!(
        "extsort-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&temp_dir)?;
    let guard = TempDirGuard {
        dir: temp_dir.clone(),
    };

    let buffer_records = (config.memory_budget_bytes / RECORD_BYTES).max(MIN_BUFFER_RECORDS);

    // --- pass 1: chunked read, run spill, endpoints side-stream ---------
    let read_span = Span::enter("extsort.read_spill");
    let read_start = Stopwatch::start();
    let mut source = EdgeSource::open(input, format)?;
    let endpoints_path = temp_dir.join("endpoints.sec");
    let mut endpoints_out = BufWriter::new(File::create(&endpoints_path)?);
    let mut buffer: Vec<Record> = Vec::new();
    let mut run_paths: Vec<PathBuf> = Vec::new();
    let mut num_edges = 0u64;
    let mut max_endpoint: Option<u32> = None;

    let spill = |buffer: &mut Vec<Record>,
                 run_paths: &mut Vec<PathBuf>,
                 temp_dir: &Path|
     -> io::Result<()> {
        buffer.sort_unstable_by_key(Record::key);
        let path = temp_dir.join(format!("run-{}.bin", run_paths.len()));
        let mut w = BufWriter::with_capacity(RUN_READER_BYTES, File::create(&path)?);
        for r in buffer.iter() {
            w.write_all(&r.endpoint.to_le_bytes())?;
            w.write_all(&r.edge.to_le_bytes())?;
            w.write_all(&r.other.to_le_bytes())?;
        }
        w.flush()?;
        run_paths.push(path);
        buffer.clear();
        Ok(())
    };

    while let Some((u, v)) = source.next_edge()? {
        if u == v {
            return Err(invalid(format!(
                "edge {num_edges} is a self-loop at vertex {u}"
            )));
        }
        if num_edges >= u64::from(u32::MAX) {
            return Err(invalid("edge count exceeds the format's u32 edge ids"));
        }
        let id = u32::try_from(num_edges).expect("checked against u32::MAX above");
        num_edges += 1;
        max_endpoint = Some(max_endpoint.map_or(u.max(v), |m| m.max(u).max(v)));
        endpoints_out.write_all(&u.to_le_bytes())?;
        endpoints_out.write_all(&v.to_le_bytes())?;
        for (endpoint, other) in [(u, v), (v, u)] {
            buffer.push(Record {
                endpoint,
                edge: id,
                other,
            });
            if buffer.len() >= buffer_records {
                stats.peak_buffer_bytes = stats.peak_buffer_bytes.max(buffer.len() * RECORD_BYTES);
                spill(&mut buffer, &mut run_paths, &temp_dir)?;
            }
        }
    }
    endpoints_out.flush()?;
    drop(endpoints_out);
    stats.peak_buffer_bytes = stats.peak_buffer_bytes.max(buffer.len() * RECORD_BYTES);
    stats.spilled_runs = run_paths.len();
    stats.read_spill_nanos = read_start.elapsed_nanos();
    drop(read_span);
    READ_SPILL_NANOS.add(stats.read_spill_nanos);
    SPILLED_RUNS.add(stats.spilled_runs as u64);
    EDGES_READ.add(num_edges);

    let m = num_edges as usize;
    if 2 * (m as u64) > u64::from(u32::MAX) {
        return Err(invalid(
            "incidence count exceeds the format's 32-bit offsets",
        ));
    }
    let observed_n = max_endpoint.map_or(0, |m| m as usize + 1);
    let n = match config.num_vertices {
        Some(n) if n < observed_n => {
            return Err(invalid(format!(
                "explicit num_vertices {n} is smaller than max endpoint + 1 = {observed_n}"
            )))
        }
        Some(n) => n,
        None => observed_n,
    };
    stats.num_vertices = n;
    stats.num_edges = m;
    stats.nash_williams_watermark = if m == 0 || n < 2 {
        0
    } else {
        m.div_ceil(n - 1)
    };

    // --- pass 2: k-way merge into the section files ----------------------
    let merge_span = Span::enter("extsort.merge");
    let merge_start = Stopwatch::start();
    // Sort the last buffer in place; it participates as the in-memory run.
    buffer.sort_unstable_by_key(Record::key);
    let mut runs: Vec<RunSource> = Vec::with_capacity(run_paths.len() + 1);
    for path in &run_paths {
        runs.push(RunSource::Disk(BufReader::with_capacity(
            RUN_READER_BYTES,
            File::open(path)?,
        )));
    }
    runs.push(RunSource::Mem(std::mem::take(&mut buffer).into_iter()));

    // Min-heap over (key, run index); keys are unique across records (a
    // non-loop edge meets each endpoint once), so the merge is a total
    // deterministic order.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(runs.len());
    let mut heads: Vec<Option<Record>> = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter_mut().enumerate() {
        let head = run.next_record()?;
        if let Some(r) = head {
            heap.push(Reverse((r.key(), i)));
        }
        heads.push(head);
    }

    let offsets_path = temp_dir.join("offsets.sec");
    let neighbors_path = temp_dir.join("neighbors.sec");
    let edge_ids_path = temp_dir.join("edge_ids.sec");
    let mut offsets_out = BufWriter::new(File::create(&offsets_path)?);
    let mut neighbors_out = BufWriter::new(File::create(&neighbors_path)?);
    let mut edge_ids_out = BufWriter::new(File::create(&edge_ids_path)?);

    offsets_out.write_all(&0u32.to_le_bytes())?; // offsets[0]
    let mut next_vertex = 0usize; // offsets written so far: next_vertex + 1
    let mut incidences = 0u32;
    let mut current_degree = 0usize;
    while let Some(Reverse((_, run_idx))) = heap.pop() {
        let record = heads[run_idx].take().expect("heap entry has a head record");
        let replacement = runs[run_idx].next_record()?;
        if let Some(r) = replacement {
            heap.push(Reverse((r.key(), run_idx)));
        }
        heads[run_idx] = replacement;

        let w = record.endpoint as usize;
        while next_vertex < w {
            // Vertices up to `w` are finished (records arrive in ascending
            // endpoint order); their closing offsets are all `incidences`.
            offsets_out.write_all(&incidences.to_le_bytes())?;
            next_vertex += 1;
            current_degree = 0;
        }
        neighbors_out.write_all(&record.other.to_le_bytes())?;
        edge_ids_out.write_all(&record.edge.to_le_bytes())?;
        incidences += 1;
        current_degree += 1;
        stats.max_degree = stats.max_degree.max(current_degree);
    }
    while next_vertex < n {
        offsets_out.write_all(&incidences.to_le_bytes())?;
        next_vertex += 1;
    }
    debug_assert_eq!(incidences as usize, 2 * m);
    offsets_out.flush()?;
    neighbors_out.flush()?;
    edge_ids_out.flush()?;
    drop((offsets_out, neighbors_out, edge_ids_out));

    // --- concatenate: header + offsets + neighbors + edge_ids + endpoints
    let mut out = BufWriter::with_capacity(256 * 1024, File::create(output)?);
    for header_word in [FORMAT_MAGIC, FORMAT_VERSION, n as u64, m as u64] {
        out.write_all(&header_word.to_le_bytes())?;
    }
    for section in [
        &offsets_path,
        &neighbors_path,
        &edge_ids_path,
        &endpoints_path,
    ] {
        let mut reader = File::open(section)?;
        io::copy(&mut reader, &mut out)?;
    }
    out.flush()?;
    stats.merge_nanos = merge_start.elapsed_nanos();
    drop(merge_span);
    MERGE_NANOS.add(stats.merge_nanos);
    BUILDS.inc();
    stats.output_bytes = (HEADER_BYTES + 4 * ((n + 1) + 6 * m)) as u64;
    debug_assert_eq!(stats.output_bytes, std::fs::metadata(output)?.len());
    drop(guard);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::multigraph::MultiGraph;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "forest-graph-extsort-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn build_and_compare(pairs: &[(u32, u32)], n: usize, budget: usize) -> BuildStats {
        let edge_path = temp_path("edges");
        let out_path = temp_path("out");
        write_binary_edge_file(&edge_path, pairs.iter().copied()).unwrap();
        let stats = build_csr_from_edge_file(
            &edge_path,
            EdgeListFormat::BinaryU32,
            &out_path,
            &ExtsortConfig::with_budget(budget).num_vertices(n),
        )
        .unwrap();
        let g = MultiGraph::from_pairs(
            n,
            &pairs
                .iter()
                .map(|&(u, v)| (u as usize, v as usize))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let expect = CsrGraph::from_multigraph(&g).to_bytes();
        let got = std::fs::read(&out_path).unwrap();
        assert_eq!(got, expect, "extsort bytes must match from_multigraph");
        assert_eq!(stats.num_vertices, n);
        assert_eq!(stats.num_edges, pairs.len());
        assert_eq!(stats.max_degree, g.max_degree());
        assert_eq!(stats.output_bytes, got.len() as u64);
        std::fs::remove_file(&edge_path).unwrap();
        std::fs::remove_file(&out_path).unwrap();
        stats
    }

    #[test]
    fn small_graph_is_byte_identical() {
        let stats = build_and_compare(&[(0, 1), (1, 2), (0, 1), (3, 4), (2, 0)], 5, 1 << 20);
        assert_eq!(stats.spilled_runs, 0, "five edges fit any sane buffer");
        assert_eq!(stats.nash_williams_watermark, 2); // ceil(5/4)
    }

    #[test]
    fn tiny_budget_forces_spills_and_stays_identical() {
        // 400 edges -> 800 records; the 64-record floor forces ~12 runs.
        let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i % 97, (i * 7 + 1) % 101)).collect();
        let pairs: Vec<(u32, u32)> = pairs
            .into_iter()
            .map(|(u, v)| if u == v { (u, v + 1) } else { (u, v) })
            .collect();
        let stats = build_and_compare(&pairs, 102, 1);
        assert!(
            stats.spilled_runs >= 2,
            "a 1-byte budget must spill: got {} runs",
            stats.spilled_runs
        );
        assert!(stats.peak_buffer_bytes <= MIN_BUFFER_RECORDS * RECORD_BYTES);
    }

    #[test]
    fn text_format_parses_comments_and_blank_lines() {
        let edge_path = temp_path("text");
        let out_path = temp_path("text-out");
        std::fs::write(&edge_path, "# a comment\n0 1\n\n  2 3 \n1 2\n").unwrap();
        build_csr_from_edge_file(
            &edge_path,
            EdgeListFormat::Text,
            &out_path,
            &ExtsortConfig::with_budget(1 << 16),
        )
        .unwrap();
        let g = MultiGraph::from_pairs(4, &[(0, 1), (2, 3), (1, 2)]).unwrap();
        assert_eq!(
            std::fs::read(&out_path).unwrap(),
            CsrGraph::from_multigraph(&g).to_bytes()
        );
        std::fs::remove_file(&edge_path).unwrap();
        std::fs::remove_file(&out_path).unwrap();
    }

    #[test]
    fn empty_input_builds_the_empty_graph() {
        let edge_path = temp_path("empty");
        let out_path = temp_path("empty-out");
        write_binary_edge_file(&edge_path, std::iter::empty()).unwrap();
        let stats = build_csr_from_edge_file(
            &edge_path,
            EdgeListFormat::BinaryU32,
            &out_path,
            &ExtsortConfig::with_budget(1 << 16),
        )
        .unwrap();
        assert_eq!(stats.num_vertices, 0);
        assert_eq!(stats.num_edges, 0);
        assert_eq!(stats.nash_williams_watermark, 0);
        assert_eq!(
            std::fs::read(&out_path).unwrap(),
            CsrGraph::from_multigraph(&MultiGraph::new(0)).to_bytes()
        );
        std::fs::remove_file(&edge_path).unwrap();
        std::fs::remove_file(&out_path).unwrap();
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let out_path = temp_path("err-out");
        // Self-loop.
        let loop_path = temp_path("err-loop");
        write_binary_edge_file(&loop_path, [(3u32, 3u32)]).unwrap();
        let err = build_csr_from_edge_file(
            &loop_path,
            EdgeListFormat::BinaryU32,
            &out_path,
            &ExtsortConfig::with_budget(1 << 16),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Torn binary pair.
        let torn_path = temp_path("err-torn");
        std::fs::write(&torn_path, [1u8, 0, 0, 0, 2, 0]).unwrap();
        assert!(build_csr_from_edge_file(
            &torn_path,
            EdgeListFormat::BinaryU32,
            &out_path,
            &ExtsortConfig::with_budget(1 << 16),
        )
        .is_err());
        // Unparsable text.
        let bad_text = temp_path("err-text");
        std::fs::write(&bad_text, "0 one\n").unwrap();
        assert!(build_csr_from_edge_file(
            &bad_text,
            EdgeListFormat::Text,
            &out_path,
            &ExtsortConfig::with_budget(1 << 16),
        )
        .is_err());
        // num_vertices too small.
        let small_path = temp_path("err-small");
        write_binary_edge_file(&small_path, [(0u32, 9u32)]).unwrap();
        assert!(build_csr_from_edge_file(
            &small_path,
            EdgeListFormat::BinaryU32,
            &out_path,
            &ExtsortConfig::with_budget(1 << 16).num_vertices(4),
        )
        .is_err());
        for p in [loop_path, torn_path, bad_text, small_path] {
            std::fs::remove_file(p).unwrap();
        }
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn isolated_trailing_vertices_survive() {
        build_and_compare(&[(0, 1)], 6, 1 << 16);
    }
}
