//! Exact density and sparsity measures: densest subgraph, pseudo-arboricity
//! and the Nash-Williams quantities.
//!
//! These are the ground-truth measurements the benchmark harness compares the
//! distributed algorithms against. The densest subgraph is computed exactly
//! with Goldberg's flow construction; pseudo-arboricity comes from the
//! minimum-out-degree orientation in [`crate::orientation`].

use crate::flow::{FlowNetwork, INF_CAPACITY};
use crate::ids::VertexId;
use crate::view::GraphView;

/// Result of an exact densest-subgraph computation.
#[derive(Clone, Debug)]
pub struct DensestSubgraph {
    /// Vertices of a subgraph achieving the maximum density.
    pub vertices: Vec<VertexId>,
    /// Number of edges induced by `vertices`.
    pub num_edges: usize,
    /// The maximum density `max_H |E(H)| / |V(H)|`.
    pub density: f64,
}

fn induced_edge_count<G: GraphView>(g: &G, in_set: &[bool]) -> usize {
    g.edges()
        .filter(|(_, u, v)| in_set[u.index()] && in_set[v.index()])
        .count()
}

/// Tests whether some non-empty subgraph `H` satisfies
/// `|E(H)| > guess * |V(H)|`, and if so returns its vertex set.
///
/// Uses the standard edge/vertex flow gadget: the source feeds each edge one
/// unit, edges feed their endpoints with infinite capacity, and each vertex
/// pays `guess` to the sink. Capacities are scaled by `scale` so that
/// `guess` can be rational with denominator `scale`.
fn denser_than<G: GraphView>(g: &G, guess_num: i64, scale: i64) -> Option<Vec<VertexId>> {
    let m = g.num_edges();
    let n = g.num_vertices();
    if m == 0 {
        return None;
    }
    let source = 0usize;
    let edge_node = |e: usize| 1 + e;
    let vertex_node = |v: usize| 1 + m + v;
    let sink = 1 + m + n;
    let mut net = FlowNetwork::new(sink + 1);
    for (e, u, v) in g.edges() {
        net.add_edge(source, edge_node(e.index()), scale);
        net.add_edge(edge_node(e.index()), vertex_node(u.index()), INF_CAPACITY);
        net.add_edge(edge_node(e.index()), vertex_node(v.index()), INF_CAPACITY);
    }
    for v in 0..n {
        net.add_edge(vertex_node(v), sink, guess_num);
    }
    let flow = net.max_flow(source, sink);
    // max_H (scale*|E(H)| - guess_num*|V(H)|) = scale*m - mincut.
    let surplus = scale * m as i64 - flow;
    if surplus <= 0 {
        return None;
    }
    let side = net.min_cut_source_side(source);
    let vertices: Vec<VertexId> = g
        .vertices()
        .filter(|v| side[vertex_node(v.index())])
        .collect();
    if vertices.is_empty() {
        None
    } else {
        Some(vertices)
    }
}

/// Computes the exact maximum subgraph density `max_H |E(H)| / |V(H)|` and a
/// witnessing subgraph. Returns a density of 0 with all vertices for an
/// edgeless graph.
pub fn densest_subgraph<G: GraphView>(g: &G) -> DensestSubgraph {
    let n = g.num_vertices();
    let m = g.num_edges();
    if m == 0 {
        return DensestSubgraph {
            vertices: g.vertices().collect(),
            num_edges: 0,
            density: 0.0,
        };
    }
    // Binary search over guesses with denominator n*(n) is enough to separate
    // distinct densities p/q with q <= n: two distinct densities differ by at
    // least 1/(n*(n-1)) > 1/n^2.
    let scale = (n as i64) * (n as i64);
    let mut lo = 0i64; // density guess numerator, denominator = scale
    let mut hi = (m as i64) * (n as i64); // density <= m <= this/scale
    let mut best: Option<Vec<VertexId>> = None;
    while lo < hi {
        let mid = (lo + hi + 1) / 2;
        match denser_than(g, mid, scale) {
            Some(witness) => {
                best = Some(witness);
                lo = mid;
            }
            None => hi = mid - 1,
        }
    }
    let vertices = best.unwrap_or_else(|| g.vertices().collect());
    let mut in_set = vec![false; n];
    for &v in &vertices {
        in_set[v.index()] = true;
    }
    let num_edges = induced_edge_count(g, &in_set);
    let density = num_edges as f64 / vertices.len() as f64;
    DensestSubgraph {
        vertices,
        num_edges,
        density,
    }
}

/// Exact maximum density `max_H |E(H)| / |V(H)|`.
pub fn maximum_density<G: GraphView>(g: &G) -> f64 {
    densest_subgraph(g).density
}

/// Exact pseudo-arboricity `α* = ⌈max_H |E(H)| / |V(H)|⌉`, computed from the
/// minimum-out-degree orientation (cross-validated against
/// [`densest_subgraph`] in tests).
pub fn pseudoarboricity<G: GraphView>(g: &G) -> usize {
    crate::orientation::pseudoarboricity(g)
}

/// Exact arboricity (delegates to the matroid-partition baseline).
pub fn arboricity<G: GraphView>(g: &G) -> usize {
    crate::matroid::arboricity(g)
}

/// The full set of exact sparsity measures of a graph, computed once and
/// reported by the benchmark harness.
#[derive(Clone, Debug, PartialEq)]
pub struct SparsityProfile {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Exact arboricity `α`.
    pub arboricity: usize,
    /// Exact pseudo-arboricity `α*`.
    pub pseudoarboricity: usize,
    /// Exact maximum subgraph density.
    pub max_density: f64,
}

/// Computes a [`SparsityProfile`] (exact; intended for bench-scale graphs).
pub fn sparsity_profile<G: GraphView>(g: &G) -> SparsityProfile {
    SparsityProfile {
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        max_degree: g.max_degree(),
        arboricity: arboricity(g),
        pseudoarboricity: pseudoarboricity(g),
        max_density: maximum_density(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::MultiGraph;

    fn complete_graph(n: usize) -> MultiGraph {
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                pairs.push((i, j));
            }
        }
        MultiGraph::from_pairs(n, &pairs).unwrap()
    }

    #[test]
    fn densest_subgraph_of_clique_plus_path() {
        // K4 (density 6/4 = 1.5) plus a pendant path (density < 1).
        let mut g = complete_graph(4);
        for _ in 0..4 {
            g.add_vertex();
        }
        for i in 3..7usize {
            g.add_edge(VertexId::new(i), VertexId::new(i + 1)).unwrap();
        }
        let ds = densest_subgraph(&g);
        assert!((ds.density - 1.5).abs() < 1e-9, "density = {}", ds.density);
        assert_eq!(ds.vertices.len(), 4);
        assert_eq!(ds.num_edges, 6);
    }

    #[test]
    fn densest_subgraph_of_edgeless_graph() {
        let g = MultiGraph::new(5);
        let ds = densest_subgraph(&g);
        assert_eq!(ds.density, 0.0);
        assert_eq!(ds.num_edges, 0);
    }

    #[test]
    fn max_density_of_cycle_is_one() {
        let pairs: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = MultiGraph::from_pairs(6, &pairs).unwrap();
        assert!((maximum_density(&g) - 1.0).abs() < 1e-9);
        assert_eq!(pseudoarboricity(&g), 1);
    }

    #[test]
    fn pseudoarboricity_matches_ceiling_of_density() {
        for n in 2..=6usize {
            let g = complete_graph(n);
            let d = maximum_density(&g);
            assert_eq!(pseudoarboricity(&g), d.ceil() as usize, "K_{n}");
        }
    }

    #[test]
    fn arboricity_sandwich_inequalities() {
        // alpha* <= alpha <= 2 alpha* for multigraphs, alpha <= alpha* + 1 for simple.
        for n in 2..=6usize {
            let g = complete_graph(n);
            let a = arboricity(&g);
            let ps = pseudoarboricity(&g);
            assert!(ps <= a);
            assert!(a <= 2 * ps);
            assert!(a <= ps + 1, "simple graph bound");
        }
    }

    #[test]
    fn sparsity_profile_is_consistent() {
        let g = complete_graph(5);
        let p = sparsity_profile(&g);
        assert_eq!(p.num_vertices, 5);
        assert_eq!(p.num_edges, 10);
        assert_eq!(p.max_degree, 4);
        assert_eq!(p.arboricity, 3);
        assert_eq!(p.pseudoarboricity, 2);
        assert!((p.max_density - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fat_path_density() {
        let mut g = MultiGraph::new(3);
        for i in 0..2usize {
            for _ in 0..4 {
                g.add_edge(VertexId::new(i), VertexId::new(i + 1)).unwrap();
            }
        }
        // Densest subgraph is the whole fat path: 8 edges / 3 vertices.
        let ds = densest_subgraph(&g);
        assert!((ds.density - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(pseudoarboricity(&g), 3);
        assert_eq!(arboricity(&g), 4);
    }
}
