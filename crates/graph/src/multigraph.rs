//! Multi-graph and simple-graph containers.
//!
//! [`MultiGraph`] is the workhorse container used by every algorithm in this
//! workspace: an undirected graph that allows parallel edges (but not
//! self-loops, since forests never contain them). [`SimpleGraph`] is a thin
//! validating wrapper that additionally rejects parallel edges; the
//! star-forest results of the paper (Section 5) only hold for simple graphs.

use crate::error::GraphError;
use crate::ids::{EdgeId, VertexId};
use crate::view::GraphView;

/// An undirected multi-graph with `n` vertices and `m` edges.
///
/// Vertices are identified by [`VertexId`]s `0..n` and edges by [`EdgeId`]s
/// `0..m` in insertion order. Parallel edges are allowed; self-loops are not.
///
/// ```
/// use forest_graph::MultiGraph;
/// let mut g = MultiGraph::new(3);
/// let e0 = g.add_edge(0.into(), 1.into())?;
/// let e1 = g.add_edge(1.into(), 2.into())?;
/// // parallel edge: allowed in a multigraph
/// let e2 = g.add_edge(0.into(), 1.into())?;
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1.into()), 3);
/// assert_ne!(e0, e2);
/// assert_eq!(g.endpoints(e1), (1.into(), 2.into()));
/// # Ok::<(), forest_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiGraph {
    /// Endpoints of each edge, in insertion order.
    edges: Vec<(VertexId, VertexId)>,
    /// Adjacency lists: for each vertex, the (neighbor, edge) incidences.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
}

impl MultiGraph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        MultiGraph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` vertices and the given edges.
    ///
    /// # Errors
    ///
    /// Returns an error if any endpoint is out of range or an edge is a
    /// self-loop.
    pub fn with_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = MultiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Convenience constructor taking raw `usize` endpoint pairs.
    ///
    /// # Errors
    ///
    /// Same as [`MultiGraph::with_edges`].
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Result<Self, GraphError> {
        Self::with_edges(
            n,
            pairs
                .iter()
                .map(|&(u, v)| (VertexId::new(u), VertexId::new(v))),
        )
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (counting parallel edges individually).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge between `u` and `v` and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::VertexOutOfRange`] if either endpoint does not exist.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push((u, v));
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        Ok(id)
    }

    /// Adds a fresh isolated vertex and returns its identifier.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::new(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// Returns the endpoints `(u, v)` of `e` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Returns the endpoint of `e` other than `v`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("vertex {v} is not an endpoint of edge {e}");
        }
    }

    /// Returns `true` if `v` is an endpoint of `e`.
    #[inline]
    pub fn is_endpoint(&self, e: EdgeId, v: VertexId) -> bool {
        let (a, b) = self.endpoints(e);
        a == v || b == v
    }

    /// Degree of `v` (parallel edges counted with multiplicity).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree `Δ` of the graph (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over `(neighbor, edge)` incidences of `v`.
    pub fn incidences(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// Iterates over the neighbors of `v` (with multiplicity for parallel edges).
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[v.index()].iter().map(|&(u, _)| u)
    }

    /// Iterates over the incident edges of `v`.
    pub fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adj[v.index()].iter().map(|&(_, e)| e)
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices()).map(VertexId::new)
    }

    /// Iterates over all edges as `(edge, u, v)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), u, v))
    }

    /// Iterates over all edge identifiers.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges()).map(EdgeId::new)
    }

    /// Returns `true` if the graph has no parallel edges (it can never have
    /// self-loops by construction).
    pub fn is_simple(&self) -> bool {
        use std::collections::HashSet;
        let mut seen = HashSet::with_capacity(self.num_edges());
        for &(u, v) in &self.edges {
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                return false;
            }
        }
        true
    }

    /// Returns the subgraph induced by keeping only the edges for which
    /// `keep` returns `true`. Vertex identifiers are preserved; the returned
    /// vector maps new edge identifiers back to the original ones.
    pub fn edge_subgraph<F>(&self, keep: F) -> (MultiGraph, Vec<EdgeId>)
    where
        F: FnMut(EdgeId) -> bool,
    {
        edge_subgraph(self, keep)
    }

    /// Returns the subgraph induced by the given vertex set.
    ///
    /// Vertices are renumbered densely in the order given by `vertices`;
    /// the returned maps translate new vertex ids to old ones and new edge
    /// ids to old ones.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> InducedSubgraph {
        let mut old_of_new = Vec::with_capacity(vertices.len());
        let mut new_of_old = vec![usize::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            new_of_old[v.index()] = i;
            old_of_new.push(v);
        }
        let mut graph = MultiGraph::new(vertices.len());
        let mut edge_map = Vec::new();
        for (e, u, v) in self.edges() {
            let nu = new_of_old[u.index()];
            let nv = new_of_old[v.index()];
            if nu != usize::MAX && nv != usize::MAX {
                graph
                    .add_edge(VertexId::new(nu), VertexId::new(nv))
                    .expect("induced endpoints valid");
                edge_map.push(e);
            }
        }
        InducedSubgraph {
            graph,
            original_vertex: old_of_new,
            original_edge: edge_map,
        }
    }

    /// Total number of incidences, i.e. `2m`.
    pub fn total_degree(&self) -> usize {
        2 * self.num_edges()
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.total_degree() as f64 / self.num_vertices() as f64
        }
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if v.index() >= self.num_vertices() {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.num_vertices(),
            })
        } else {
            Ok(())
        }
    }
}

impl GraphView for MultiGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        MultiGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        MultiGraph::num_edges(self)
    }

    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        MultiGraph::endpoints(self, e)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        MultiGraph::degree(self, v)
    }

    #[inline]
    fn incidences(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        MultiGraph::incidences(self, v)
    }
}

/// The subgraph of any [`GraphView`] keeping only the edges for which `keep`
/// returns `true`, as a fresh [`MultiGraph`] (vertex identifiers preserved)
/// plus the map from new edge ids back to the original ones. This is the
/// leftover/residue extraction step every recoloring phase uses; taking a
/// view means it works on CSR and shard inputs without a thaw.
pub fn edge_subgraph<G: GraphView, F>(g: &G, mut keep: F) -> (MultiGraph, Vec<EdgeId>)
where
    F: FnMut(EdgeId) -> bool,
{
    let mut sub = MultiGraph::new(g.num_vertices());
    let mut back = Vec::new();
    for (e, u, v) in g.edges() {
        if keep(e) {
            sub.add_edge(u, v).expect("endpoints already validated");
            back.push(e);
        }
    }
    (sub, back)
}

/// Result of [`MultiGraph::induced_subgraph`]: the subgraph plus id mappings
/// back to the original graph.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced subgraph with dense vertex ids.
    pub graph: MultiGraph,
    /// `original_vertex[new_vertex]` is the vertex id in the original graph.
    pub original_vertex: Vec<VertexId>,
    /// `original_edge[new_edge]` is the edge id in the original graph.
    pub original_edge: Vec<EdgeId>,
}

/// A simple graph: no self-loops, no parallel edges.
///
/// The star-forest decomposition results of the paper (Section 5) require a
/// simple graph, so those algorithms accept a `SimpleGraph` to make the
/// precondition explicit in the type system.
///
/// ```
/// use forest_graph::SimpleGraph;
/// let mut g = SimpleGraph::new(3);
/// g.add_edge(0.into(), 1.into())?;
/// assert!(g.add_edge(1.into(), 0.into()).is_err()); // parallel edge rejected
/// assert_eq!(g.graph().num_edges(), 1);
/// # Ok::<(), forest_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimpleGraph {
    inner: MultiGraph,
    present: std::collections::HashSet<(VertexId, VertexId)>,
}

impl SimpleGraph {
    /// Creates an edgeless simple graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        SimpleGraph {
            inner: MultiGraph::new(n),
            present: std::collections::HashSet::new(),
        }
    }

    /// Creates a simple graph with `n` vertices and the given edges.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops or duplicate
    /// edges.
    pub fn with_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = SimpleGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds an edge, rejecting duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ParallelEdge`] if the edge already exists, plus
    /// the errors of [`MultiGraph::add_edge`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        let key = if u < v { (u, v) } else { (v, u) };
        if self.present.contains(&key) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        let id = self.inner.add_edge(u, v)?;
        self.present.insert(key);
        Ok(id)
    }

    /// Returns `true` if the edge `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.present.contains(&key)
    }

    /// Borrows the underlying multigraph view (which is guaranteed simple).
    pub fn graph(&self) -> &MultiGraph {
        &self.inner
    }

    /// Consumes the wrapper and returns the underlying multigraph.
    pub fn into_multigraph(self) -> MultiGraph {
        self.inner
    }

    /// Attempts to reinterpret a multigraph as a simple graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ParallelEdge`] if the multigraph contains
    /// parallel edges.
    pub fn try_from_multigraph(g: MultiGraph) -> Result<Self, GraphError> {
        let mut present = std::collections::HashSet::with_capacity(g.num_edges());
        for (_, u, v) in g.edges() {
            let key = if u < v { (u, v) } else { (v, u) };
            if !present.insert(key) {
                return Err(GraphError::ParallelEdge { u, v });
            }
        }
        Ok(SimpleGraph { inner: g, present })
    }
}

impl From<SimpleGraph> for MultiGraph {
    fn from(g: SimpleGraph) -> MultiGraph {
        g.into_multigraph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn build_and_query_multigraph() {
        let mut g = MultiGraph::new(4);
        let e0 = g.add_edge(v(0), v(1)).unwrap();
        let e1 = g.add_edge(v(1), v(2)).unwrap();
        let e2 = g.add_edge(v(0), v(1)).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(v(1)), 3);
        assert_eq!(g.degree(v(3)), 0);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.endpoints(e1), (v(1), v(2)));
        assert_eq!(g.other_endpoint(e0, v(0)), v(1));
        assert_eq!(g.other_endpoint(e0, v(1)), v(0));
        assert!(!g.is_simple());
        assert!(g.is_endpoint(e2, v(0)));
        assert!(!g.is_endpoint(e2, v(2)));
        assert_eq!(g.total_degree(), 6);
        assert!((g.average_degree() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = MultiGraph::new(2);
        assert_eq!(
            g.add_edge(v(1), v(1)),
            Err(GraphError::SelfLoop { vertex: v(1) })
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = MultiGraph::new(2);
        assert!(matches!(
            g.add_edge(v(0), v(5)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn add_vertex_extends_graph() {
        let mut g = MultiGraph::new(1);
        let nv = g.add_vertex();
        assert_eq!(nv, v(1));
        assert_eq!(g.num_vertices(), 2);
        g.add_edge(v(0), nv).unwrap();
        assert_eq!(g.degree(nv), 1);
    }

    #[test]
    fn from_pairs_builds_expected_graph() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_simple());
    }

    #[test]
    fn edge_subgraph_preserves_vertices_and_maps_edges() {
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let (sub, back) = g.edge_subgraph(|e| e.index() % 2 == 0);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(back, vec![EdgeId::new(0), EdgeId::new(2)]);
    }

    #[test]
    fn induced_subgraph_renumbers_vertices() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let sub = g.induced_subgraph(&[v(1), v(2), v(3)]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.original_vertex, vec![v(1), v(2), v(3)]);
        assert_eq!(sub.original_edge.len(), 2);
    }

    #[test]
    fn iterators_cover_all_elements() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.vertices().count(), 3);
        assert_eq!(g.edges().count(), 2);
        assert_eq!(g.edge_ids().count(), 2);
        assert_eq!(g.neighbors(v(1)).count(), 2);
        assert_eq!(g.incident_edges(v(1)).count(), 2);
        assert_eq!(g.incidences(v(0)).count(), 1);
    }

    #[test]
    fn simple_graph_rejects_duplicates() {
        let mut g = SimpleGraph::new(3);
        g.add_edge(v(0), v(1)).unwrap();
        assert!(matches!(
            g.add_edge(v(1), v(0)),
            Err(GraphError::ParallelEdge { .. })
        ));
        assert!(g.has_edge(v(0), v(1)));
        assert!(g.has_edge(v(1), v(0)));
        assert!(!g.has_edge(v(1), v(2)));
    }

    #[test]
    fn simple_graph_from_multigraph() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let s = SimpleGraph::try_from_multigraph(g).unwrap();
        assert_eq!(s.graph().num_edges(), 2);

        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 0)]).unwrap();
        assert!(SimpleGraph::try_from_multigraph(g).is_err());
    }

    #[test]
    fn empty_graph_properties() {
        let g = MultiGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.is_simple());
    }
}
