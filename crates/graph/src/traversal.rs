//! Graph traversal utilities: BFS, connected components, distances, diameters
//! and filtered traversals restricted to a subset of edges.
//!
//! The decomposition algorithms constantly need to answer questions such as
//! "what is the path between `u` and `v` inside the color-`c` forest?" or
//! "how deep is this tree?". These helpers all accept an optional edge filter
//! so that a single [`MultiGraph`] can be traversed per color class without
//! materializing subgraphs.

use crate::ids::{u32_of, EdgeId, VertexId};
use crate::view::GraphView;
use std::collections::VecDeque;

/// Distance value meaning "unreachable".
pub const UNREACHABLE: usize = usize::MAX;

/// Reusable scratch for bounded-radius BFS sweeps: epoch-stamped visited
/// marks (`O(1)` reset, no per-sweep allocation) and a flat queue that
/// doubles as the list of reached vertices.
///
/// The cluster pipeline of Algorithm 2 and the lazy power-graph view both
/// probe thousands of small neighborhoods of one large graph; allocating
/// (and zeroing) `vec![UNREACHABLE; n]` per probe would dominate the probe
/// itself. One `BfsScratch` amortizes all of it: stamps invalidate by
/// epoch bump, and the BFS queue is an append-only `Vec` whose final
/// content *is* the visited set in BFS order (distances nondecreasing).
#[derive(Clone, Debug)]
pub struct BfsScratch {
    stamp: Vec<u32>,
    dist: Vec<u32>,
    epoch: u32,
    order: Vec<VertexId>,
}

impl BfsScratch {
    /// Scratch for graphs of at most `n` vertices (grows on demand).
    pub fn new(n: usize) -> Self {
        BfsScratch {
            stamp: vec![0; n],
            dist: vec![0; n],
            epoch: 0,
            order: Vec::new(),
        }
    }

    fn begin(&mut self, n: usize) {
        if n > self.stamp.len() {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.order.clear();
    }

    /// Runs a multi-source BFS from `sources` out to distance `radius`
    /// (inclusive), visiting only edges accepted by `edge_filter`.
    /// Duplicate sources are ignored. Results are read back through
    /// [`visited`](BfsScratch::visited) and
    /// [`distance`](BfsScratch::distance) until the next run.
    pub fn run_bounded<G, F>(
        &mut self,
        g: &G,
        sources: &[VertexId],
        radius: usize,
        mut edge_filter: F,
    ) where
        G: GraphView,
        F: FnMut(EdgeId) -> bool,
    {
        self.begin(g.num_vertices());
        for &s in sources {
            if self.stamp[s.index()] != self.epoch {
                self.stamp[s.index()] = self.epoch;
                self.dist[s.index()] = 0;
                self.order.push(s);
            }
        }
        let mut head = 0usize;
        while head < self.order.len() {
            let u = self.order[head];
            head += 1;
            let du = self.dist[u.index()] as usize;
            if du == radius {
                continue;
            }
            for (w, e) in g.incidences(u) {
                if self.stamp[w.index()] != self.epoch && edge_filter(e) {
                    self.stamp[w.index()] = self.epoch;
                    self.dist[w.index()] = u32_of(du + 1);
                    self.order.push(w);
                }
            }
        }
    }

    /// The vertices reached by the last run, in BFS order (distances
    /// nondecreasing; sources first).
    pub fn visited(&self) -> &[VertexId] {
        &self.order
    }

    /// Distance of `v` in the last run, or [`UNREACHABLE`] if the sweep did
    /// not reach it.
    pub fn distance(&self, v: VertexId) -> usize {
        if self.stamp[v.index()] == self.epoch {
            self.dist[v.index()] as usize
        } else {
            UNREACHABLE
        }
    }
}

/// Breadth-first search from `source`, visiting only edges accepted by
/// `edge_filter`. Returns distances (in edges) with [`UNREACHABLE`] for
/// vertices that were not reached.
pub fn bfs_distances<G, F>(g: &G, source: VertexId, mut edge_filter: F) -> Vec<usize>
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
{
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for (w, e) in g.incidences(u) {
            if dist[w.index()] == UNREACHABLE && edge_filter(e) {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Multi-source BFS: every vertex in `sources` starts at distance 0.
pub fn multi_source_bfs<G, F>(g: &G, sources: &[VertexId], mut edge_filter: F) -> Vec<usize>
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
{
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] == UNREACHABLE {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for (w, e) in g.incidences(u) {
            if dist[w.index()] == UNREACHABLE && edge_filter(e) {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Returns all vertices within distance `radius` of `source` (the closed
/// `radius`-neighborhood `N^r(source)` of the paper's Section 1.1).
pub fn ball<G: GraphView>(g: &G, source: VertexId, radius: usize) -> Vec<VertexId> {
    let dist = bfs_distances(g, source, |_| true);
    g.vertices()
        .filter(|v| dist[v.index()] != UNREACHABLE && dist[v.index()] <= radius)
        .collect()
}

/// Returns all vertices within distance `radius` of any vertex in `sources`.
pub fn ball_of_set<G: GraphView>(g: &G, sources: &[VertexId], radius: usize) -> Vec<VertexId> {
    let dist = multi_source_bfs(g, sources, |_| true);
    g.vertices()
        .filter(|v| dist[v.index()] != UNREACHABLE && dist[v.index()] <= radius)
        .collect()
}

/// Finds the (edge, vertex) path from `u` to `v` using only edges accepted by
/// `edge_filter`. Returns the edge ids of the path, or `None` if `v` is not
/// reachable from `u`. The empty path is returned when `u == v`.
pub fn path_between<G, F>(
    g: &G,
    u: VertexId,
    v: VertexId,
    mut edge_filter: F,
) -> Option<Vec<EdgeId>>
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
{
    if u == v {
        return Some(Vec::new());
    }
    let n = g.num_vertices();
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[u.index()] = true;
    queue.push_back(u);
    'outer: while let Some(x) = queue.pop_front() {
        for (w, e) in g.incidences(x) {
            if !visited[w.index()] && edge_filter(e) {
                visited[w.index()] = true;
                parent_edge[w.index()] = Some(e);
                if w == v {
                    break 'outer;
                }
                queue.push_back(w);
            }
        }
    }
    if !visited[v.index()] {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = v;
    while cur != u {
        let e = parent_edge[cur.index()].expect("path reconstruction");
        path.push(e);
        cur = g.other_endpoint(e, cur);
    }
    path.reverse();
    Some(path)
}

/// Connected components of the subgraph spanned by edges accepted by
/// `edge_filter` (isolated vertices each form their own component).
///
/// Returns `(component_of, num_components)`.
pub fn connected_components<G, F>(g: &G, mut edge_filter: F) -> (Vec<usize>, usize)
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
{
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    let mut queue = VecDeque::new();
    for start in g.vertices() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        comp[start.index()] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for (w, e) in g.incidences(u) {
                if comp[w.index()] == usize::MAX && edge_filter(e) {
                    comp[w.index()] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Returns `true` if the subgraph spanned by the accepted edges is acyclic
/// (i.e. a forest). Parallel accepted edges between the same pair count as a
/// cycle.
pub fn is_forest<G, F>(g: &G, mut edge_filter: F) -> bool
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
{
    let mut uf = crate::union_find::UnionFind::new(g.num_vertices());
    for (e, u, v) in g.edges() {
        if edge_filter(e) && !uf.union(u.index(), v.index()) {
            return false;
        }
    }
    true
}

/// Computes, for every vertex, the eccentricity *within its own component* of
/// the forest spanned by the accepted edges, i.e. the length of the longest
/// path starting at that vertex. The filtered subgraph **must** be a forest.
///
/// # Panics
///
/// Panics in debug builds if the filtered subgraph contains a cycle.
pub fn forest_eccentricities<G, F>(g: &G, mut edge_filter: F) -> Vec<usize>
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
{
    // Standard trick: within each tree, the farthest vertex from any vertex is
    // an endpoint of a diameter, so two BFS sweeps identify a diameter path
    // and a third gives every vertex's eccentricity as the max distance to
    // the two endpoints. Every sweep is restricted to the component's own
    // vertices (shared scratch arrays, reset per component), so the whole
    // computation is `O(n + m)` even when the forest has thousands of tiny
    // trees — star-forest classes are exactly that shape.
    let n = g.num_vertices();
    let accepted: Vec<bool> = g.edge_ids().map(&mut edge_filter).collect();
    debug_assert!(is_forest(g, |e| accepted[e.index()]));
    let (comp, num_comp) = connected_components(g, |e| accepted[e.index()]);
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_comp];
    for v in g.vertices() {
        members[comp[v.index()]].push(v);
    }
    let mut ecc = vec![0usize; n];
    let mut dist_a = vec![UNREACHABLE; n];
    let mut dist_b = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    // One BFS sweep touching only the source's component; returns the
    // farthest vertex found. `dist` entries must be reset by the caller.
    let sweep = |source: VertexId, dist: &mut Vec<usize>, queue: &mut VecDeque<VertexId>| {
        dist[source.index()] = 0;
        queue.push_back(source);
        let mut farthest = source;
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du > dist[farthest.index()] {
                farthest = u;
            }
            for (w, e) in g.incidences(u) {
                if dist[w.index()] == UNREACHABLE && accepted[e.index()] {
                    dist[w.index()] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        farthest
    };
    for component in &members {
        let repr = component[0];
        if component.len() == 1 {
            continue; // isolated vertex: eccentricity 0
        }
        // First sweep: find one endpoint `a` of a diameter of this tree.
        let a = sweep(repr, &mut dist_a, &mut queue);
        for &v in component {
            dist_a[v.index()] = UNREACHABLE;
        }
        // Second sweep from `a` finds the other endpoint `b`.
        let b = sweep(a, &mut dist_a, &mut queue);
        let _ = sweep(b, &mut dist_b, &mut queue);
        for &v in component {
            ecc[v.index()] = dist_a[v.index()].max(dist_b[v.index()]);
            dist_a[v.index()] = UNREACHABLE;
            dist_b[v.index()] = UNREACHABLE;
        }
    }
    ecc
}

/// Maximum diameter over the trees of the forest spanned by the accepted
/// edges. Returns 0 for an edgeless selection. The filtered subgraph must be
/// a forest.
pub fn forest_diameter<G, F>(g: &G, edge_filter: F) -> usize
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
{
    forest_eccentricities(g, edge_filter)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// A rooting of the forest spanned by a set of edges: per-vertex parent edge,
/// parent vertex, depth and root.
#[derive(Clone, Debug)]
pub struct RootedForest {
    /// Parent edge of each vertex (`None` for roots and vertices outside the forest).
    pub parent_edge: Vec<Option<EdgeId>>,
    /// Parent vertex of each vertex (`None` for roots).
    pub parent_vertex: Vec<Option<VertexId>>,
    /// Depth of each vertex below its root (roots have depth 0).
    pub depth: Vec<usize>,
    /// Root of the tree containing each vertex (itself for isolated vertices).
    pub root: Vec<VertexId>,
}

impl RootedForest {
    /// Children lists derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<VertexId>> {
        let n = self.parent_vertex.len();
        let mut ch = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = self.parent_vertex[v] {
                ch[p.index()].push(VertexId::new(v));
            }
        }
        ch
    }

    /// Maximum depth over all vertices.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

/// Roots every tree of the forest spanned by the accepted edges.
///
/// Roots are chosen by `prefer_root`: within each component the vertex
/// minimizing `(prefer_root(v), v)` becomes the root, so passing `|_| 0`
/// simply roots at the smallest vertex id. The filtered subgraph must be a
/// forest.
pub fn root_forest<G, F, P>(g: &G, mut edge_filter: F, mut prefer_root: P) -> RootedForest
where
    G: GraphView,
    F: FnMut(EdgeId) -> bool,
    P: FnMut(VertexId) -> usize,
{
    let n = g.num_vertices();
    let accepted: Vec<bool> = g.edge_ids().map(&mut edge_filter).collect();
    let filter = |e: EdgeId| accepted[e.index()];
    let (comp, num_comp) = connected_components(g, filter);
    let mut best: Vec<Option<(usize, VertexId)>> = vec![None; num_comp];
    for v in g.vertices() {
        let key = (prefer_root(v), v);
        let slot = &mut best[comp[v.index()]];
        if slot.is_none() || key < slot.unwrap() {
            *slot = Some(key);
        }
    }
    let mut parent_edge = vec![None; n];
    let mut parent_vertex = vec![None; n];
    let mut depth = vec![0usize; n];
    let mut root = vec![VertexId::new(0); n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    for slot in &best {
        let (_, r) = slot.expect("component representative");
        visited[r.index()] = true;
        root[r.index()] = r;
        queue.push_back(r);
        while let Some(u) = queue.pop_front() {
            for (w, e) in g.incidences(u) {
                if !visited[w.index()] && filter(e) {
                    visited[w.index()] = true;
                    parent_edge[w.index()] = Some(e);
                    parent_vertex[w.index()] = Some(u);
                    depth[w.index()] = depth[u.index()] + 1;
                    root[w.index()] = r;
                    queue.push_back(w);
                }
            }
        }
    }
    RootedForest {
        parent_edge,
        parent_vertex,
        depth,
        root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::MultiGraph;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn path_graph(n: usize) -> MultiGraph {
        let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        MultiGraph::from_pairs(n, &pairs).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, v(0), |_| true);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, v(2), |_| true);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_respects_edge_filter() {
        let g = path_graph(5);
        // Block the middle edge (1-2).
        let d = bfs_distances(&g, v(0), |e| e.index() != 1);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[4], UNREACHABLE);
    }

    #[test]
    fn multi_source_bfs_takes_minimum() {
        let g = path_graph(7);
        let d = multi_source_bfs(&g, &[v(0), v(6)], |_| true);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn ball_contains_radius_neighborhood() {
        let g = path_graph(7);
        let b = ball(&g, v(3), 2);
        let mut got: Vec<usize> = b.iter().map(|x| x.index()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        let b = ball_of_set(&g, &[v(0), v(6)], 1);
        let mut got: Vec<usize> = b.iter().map(|x| x.index()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 5, 6]);
    }

    #[test]
    fn path_between_finds_shortest_path() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let p = path_between(&g, v(0), v(3), |_| true).unwrap();
        assert_eq!(p.len(), 2); // 0-4-3
        let p = path_between(&g, v(0), v(0), |_| true).unwrap();
        assert!(p.is_empty());
        let p = path_between(&g, v(0), v(3), |e| e.index() < 3);
        assert_eq!(p.unwrap().len(), 3); // forced along 0-1-2-3
        assert!(path_between(&g, v(0), v(3), |_| false).is_none());
    }

    #[test]
    fn connected_components_counts() {
        let g = MultiGraph::from_pairs(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (comp, k) = connected_components(&g, |_| true);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[5]);
    }

    #[test]
    fn is_forest_detects_cycles_and_parallel_edges() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!is_forest(&g, |_| true));
        assert!(is_forest(&g, |e| e.index() != 2));
        let g = MultiGraph::from_pairs(2, &[(0, 1), (0, 1)]).unwrap();
        assert!(!is_forest(&g, |_| true));
    }

    #[test]
    fn forest_diameter_on_path_and_star() {
        let g = path_graph(6);
        assert_eq!(forest_diameter(&g, |_| true), 5);
        let g = MultiGraph::from_pairs(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(forest_diameter(&g, |_| true), 2);
        let ecc = forest_eccentricities(&g, |_| true);
        assert_eq!(ecc[0], 1);
        assert_eq!(ecc[1], 2);
    }

    #[test]
    fn forest_diameter_edgeless() {
        let g = MultiGraph::new(4);
        assert_eq!(forest_diameter(&g, |_| true), 0);
    }

    #[test]
    fn root_forest_produces_consistent_parents() {
        let g = MultiGraph::from_pairs(7, &[(0, 1), (1, 2), (1, 3), (4, 5)]).unwrap();
        let rooted = root_forest(&g, |_| true, |_| 0);
        // Roots are the smallest ids of each component: 0, 4, 6.
        assert_eq!(rooted.root[2], v(0));
        assert_eq!(rooted.root[5], v(4));
        assert_eq!(rooted.root[6], v(6));
        assert_eq!(rooted.depth[0], 0);
        assert_eq!(rooted.depth[2], 2);
        assert_eq!(rooted.parent_vertex[3], Some(v(1)));
        assert_eq!(rooted.parent_vertex[0], None);
        assert_eq!(rooted.max_depth(), 2);
        let children = rooted.children();
        assert!(children[1].contains(&v(2)));
        assert!(children[1].contains(&v(3)));
    }

    #[test]
    fn bfs_scratch_matches_bounded_multi_source_bfs() {
        let g =
            MultiGraph::from_pairs(9, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 6), (6, 7)])
                .unwrap();
        let mut scratch = BfsScratch::new(g.num_vertices());
        for radius in 0..5 {
            for sources in [vec![v(0)], vec![v(2), v(7)], vec![v(8)], vec![v(3), v(3)]] {
                scratch.run_bounded(&g, &sources, radius, |_| true);
                let full = multi_source_bfs(&g, &sources, |_| true);
                for u in g.vertices() {
                    let expect = if full[u.index()] <= radius {
                        full[u.index()]
                    } else {
                        UNREACHABLE
                    };
                    assert_eq!(scratch.distance(u), expect, "r={radius} at {u}");
                }
                // Visited list: exactly the in-radius vertices, distances
                // nondecreasing.
                let visited = scratch.visited();
                assert_eq!(visited.len(), full.iter().filter(|&&d| d <= radius).count());
                for pair in visited.windows(2) {
                    assert!(scratch.distance(pair[0]) <= scratch.distance(pair[1]));
                }
            }
        }
    }

    #[test]
    fn bfs_scratch_respects_edge_filter_and_reuse() {
        let g = path_graph(6);
        let mut scratch = BfsScratch::new(2); // deliberately undersized: must grow
        scratch.run_bounded(&g, &[v(0)], 5, |e| e.index() != 2);
        assert_eq!(scratch.distance(v(2)), 2);
        assert_eq!(scratch.distance(v(3)), UNREACHABLE);
        // A second run fully invalidates the first.
        scratch.run_bounded(&g, &[v(5)], 1, |_| true);
        assert_eq!(scratch.distance(v(0)), UNREACHABLE);
        assert_eq!(scratch.distance(v(4)), 1);
        assert_eq!(scratch.visited(), &[v(5), v(4)]);
    }

    #[test]
    fn root_forest_prefers_requested_roots() {
        let g = path_graph(4);
        let rooted = root_forest(&g, |_| true, |x| if x == v(3) { 0 } else { 1 });
        assert_eq!(rooted.root[0], v(3));
        assert_eq!(rooted.depth[0], 3);
    }
}
