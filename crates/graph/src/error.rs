//! Error types for the graph substrate.

use crate::{Color, EdgeId, VertexId};
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or mutating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex index was outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// An edge index was outside `0..m`.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// The number of edges in the graph.
        num_edges: usize,
    },
    /// A self-loop was rejected (forests never contain self-loops).
    SelfLoop {
        /// The vertex at both endpoints.
        vertex: VertexId,
    },
    /// A parallel edge was rejected by a [`SimpleGraph`](crate::SimpleGraph).
    ParallelEdge {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::EdgeOutOfRange { edge, num_edges } => write!(
                f,
                "edge {edge} is out of range for a graph with {num_edges} edges"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at {vertex} rejected")
            }
            GraphError::ParallelEdge { u, v } => {
                write!(
                    f,
                    "parallel edge between {u} and {v} rejected by simple graph"
                )
            }
        }
    }
}

impl Error for GraphError {}

/// Errors produced while validating decompositions, orientations or palettes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An edge is missing a color where a complete decomposition was required.
    UncoloredEdge {
        /// The uncolored edge.
        edge: EdgeId,
    },
    /// A color class contains a cycle, so it is not a forest.
    CycleInColorClass {
        /// The offending color.
        color: Color,
        /// An edge on the cycle.
        witness: EdgeId,
    },
    /// A color class contains a path with three edges, so it is not a star-forest.
    NotAStarForest {
        /// The offending color.
        color: Color,
        /// The middle vertex of a three-edge path.
        witness: VertexId,
    },
    /// An edge was assigned a color outside its palette.
    ColorNotInPalette {
        /// The offending edge.
        edge: EdgeId,
        /// The color that was assigned.
        color: Color,
    },
    /// A tree in some color class exceeds the requested diameter bound.
    DiameterExceeded {
        /// The offending color.
        color: Color,
        /// The measured diameter.
        measured: usize,
        /// The allowed bound.
        bound: usize,
    },
    /// The number of colors used exceeds the requested bound.
    TooManyColors {
        /// Colors actually used.
        used: usize,
        /// The allowed bound.
        bound: usize,
    },
    /// The coloring vector length does not match the number of edges.
    LengthMismatch {
        /// Length of the coloring.
        coloring_len: usize,
        /// Number of edges in the graph.
        num_edges: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UncoloredEdge { edge } => {
                write!(f, "edge {edge} is uncolored in a complete decomposition")
            }
            ValidationError::CycleInColorClass { color, witness } => write!(
                f,
                "color class {color} contains a cycle through edge {witness}"
            ),
            ValidationError::NotAStarForest { color, witness } => write!(
                f,
                "color class {color} contains a 3-edge path through vertex {witness}"
            ),
            ValidationError::ColorNotInPalette { edge, color } => {
                write!(
                    f,
                    "edge {edge} was assigned color {color} outside its palette"
                )
            }
            ValidationError::DiameterExceeded {
                color,
                measured,
                bound,
            } => write!(
                f,
                "color class {color} has tree diameter {measured}, exceeding bound {bound}"
            ),
            ValidationError::TooManyColors { used, bound } => {
                write!(
                    f,
                    "decomposition uses {used} colors, exceeding bound {bound}"
                )
            }
            ValidationError::LengthMismatch {
                coloring_len,
                num_edges,
            } => write!(
                f,
                "coloring has {coloring_len} entries but the graph has {num_edges} edges"
            ),
        }
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_error_display_is_informative() {
        let err = GraphError::SelfLoop {
            vertex: VertexId::new(3),
        };
        assert!(err.to_string().contains("v3"));
        let err = GraphError::VertexOutOfRange {
            vertex: VertexId::new(9),
            num_vertices: 4,
        };
        assert!(err.to_string().contains("9"));
        assert!(err.to_string().contains("4"));
    }

    #[test]
    fn validation_error_display_is_informative() {
        let err = ValidationError::CycleInColorClass {
            color: Color::new(2),
            witness: EdgeId::new(7),
        };
        let text = err.to_string();
        assert!(text.contains("c2"));
        assert!(text.contains("e7"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GraphError>();
        assert_err::<ValidationError>();
    }
}
