//! Zero-copy sharding of one frozen CSR graph: the substrate for
//! shard-parallel decomposition.
//!
//! [`CsrPartition::split`] cuts the vertex range of a [`CsrGraph`] into `k`
//! contiguous shards balanced by incidence count, classifies every edge as
//! *internal* to the unique shard containing both endpoints or as a
//! *boundary* edge crossing two shards, and materializes each shard's
//! internal topology once as a locally-renumbered CSR (built directly from
//! the flat arrays — no adjacency-list intermediate). After the one `O(n +
//! m)` split, [`CsrPartition::shard`] hands out [`CsrRef`] views **without
//! copying**, so `k` workers can decompose their shards in parallel over
//! borrowed slices; the explicit [boundary edge list](CsrPartition::boundary_edges)
//! is what the stitching phase (the facade's `run_sharded`) recolors through
//! the leftover/augmenting machinery, exactly as Harris–Su–Vu compose
//! per-part partitions plus a small leftover.
//!
//! Contiguous-in-id ranges are adversarial when vertex ids are random (see
//! the boundary fractions in the bench snapshots): [`CsrPartition::split_ordered`]
//! accepts a [`VertexPermutation`](crate::reorder::VertexPermutation) — e.g.
//! a BFS or reverse Cuthill–McKee order from [`crate::reorder`] — and cuts
//! contiguous ranges of the *order* instead, which restores small boundaries
//! on locality-friendly topologies regardless of how their ids were drawn.
//!
//! The local↔global vertex renumbering is kept as dense index arrays
//! ([`shard_of`](CsrPartition::shard_of) / [`local_vertex`](CsrPartition::local_vertex)
//! one way, per-shard bases over the split order the other way); per-shard
//! edge renumbering is a small `local → global` array per shard. Every global
//! edge appears exactly once: in exactly one shard's internal edge list or in
//! the boundary list.

use crate::csr::{CsrGraph, CsrRef, CsrStorage, OwnedCsr};
use crate::ids::{u32_of, EdgeId, VertexId};
use crate::reorder::VertexPermutation;
use crate::view::GraphView;

/// A `k`-way sharding of one frozen graph: per-shard internal CSR topologies
/// (handed out as zero-copy [`CsrRef`] views) plus the boundary edges that
/// cross shards.
#[derive(Clone, Debug)]
pub struct CsrPartition {
    /// Per-shard internal topology, vertices renumbered `0..shard_size`.
    shards: Vec<OwnedCsr>,
    /// Global vertex → owning shard.
    shard_of: Vec<u32>,
    /// Global vertex → local id inside its owning shard.
    local_of: Vec<u32>,
    /// Shard → first split-order position (shards are contiguous ranges of
    /// the split order); length `k + 1`.
    vertex_base: Vec<u32>,
    /// Split-order position → global vertex id; `None` for the identity
    /// order, where position and id coincide.
    order: Option<Vec<u32>>,
    /// Shard → (local edge id → global edge id).
    edge_global: Vec<Vec<u32>>,
    /// Global edges whose endpoints live in different shards.
    boundary: Vec<EdgeId>,
}

/// The `O(k)`-resident sharding *plan*: where [`CsrPartition::split`] cuts,
/// without materializing any shard.
///
/// [`CsrPartition`] is the right tool when the whole graph is resident: it
/// builds every shard's CSR in one pass and hands out zero-copy views. The
/// out-of-core driver cannot afford that — the sum of all shards *is* the
/// graph — so `ShardPlan` keeps only the shard boundaries (`k + 1` words;
/// shards of the identity order are contiguous vertex-id ranges, so
/// ownership, local ids and global ids are all arithmetic) and rebuilds one
/// shard at a time with [`ShardPlan::extract_shard`], streaming straight off
/// a demand-paged [`MmapCsr`](crate::MmapCsr). The cut rule is byte-for-byte
/// the one [`CsrPartition::split`] uses (they share the assignment walk), so
/// for every shard `s`:
///
/// * `plan.extract_shard(&csr, s).csr` equals `partition.shard(s)`,
/// * `plan.extract_shard(&csr, s).global_edges` equals
///   `partition.global_edges(s)`, and
/// * [`ShardPlan::boundary_edges`] equals [`CsrPartition::boundary_edges`]
///
/// — pinned by this module's tests. Only the identity order is supported:
/// a BFS/RCM reorder needs the permutation array, which is exactly the
/// `O(n)` state this type exists to avoid.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Shard → first vertex id (shards are contiguous id ranges); length
    /// `k + 1`.
    vertex_base: Vec<u32>,
    num_vertices: usize,
}

/// One shard materialized from a [`ShardPlan`]: the locally-renumbered
/// internal topology plus its local → global edge map — the per-shard halves
/// of a [`CsrPartition`], built alone.
#[derive(Clone, Debug)]
pub struct ExtractedShard {
    /// The shard's internal topology, vertices renumbered `0..shard_size`.
    pub csr: OwnedCsr,
    /// Local edge id → global edge id (ascending).
    pub global_edges: Vec<u32>,
}

impl ShardPlan {
    /// Plans the identity-order `k`-way split of `csr` — the same cut as
    /// [`CsrPartition::split`] (same clamp of `k` to `1..=max(n, 1)`), in
    /// `O(n)` time and `O(k)` memory.
    pub fn new<S: CsrStorage>(csr: &CsrGraph<S>, k: usize) -> ShardPlan {
        let n = csr.num_vertices();
        let k = k.clamp(1, n.max(1));
        let mut vertex_base = vec![0u32; k + 1];
        for (_, s) in assignment_walk(csr, k, None) {
            vertex_base[s + 1] += 1;
        }
        for s in 0..k {
            vertex_base[s + 1] += vertex_base[s];
        }
        ShardPlan {
            vertex_base,
            num_vertices: n,
        }
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.vertex_base.len() - 1
    }

    /// The shard owning global vertex `v`.
    pub fn shard_of(&self, v: VertexId) -> usize {
        debug_assert!(v.index() < self.num_vertices);
        // Last shard whose base is ≤ v: empty shards share a base with their
        // successor, and the search lands past all of them.
        self.vertex_base
            .partition_point(|&b| b as usize <= v.index())
            - 1
    }

    /// The local id of global vertex `v` inside its owning shard.
    pub fn local_vertex(&self, v: VertexId) -> VertexId {
        VertexId::new(v.index() - self.vertex_base[self.shard_of(v)] as usize)
    }

    /// The global vertex behind shard `s`'s local vertex `local`.
    pub fn global_vertex(&self, s: usize, local: VertexId) -> VertexId {
        VertexId::new(self.vertex_base[s] as usize + local.index())
    }

    /// Global vertex-id range `[start, end)` of shard `s`.
    pub fn vertex_range(&self, s: usize) -> std::ops::Range<usize> {
        self.vertex_base[s] as usize..self.vertex_base[s + 1] as usize
    }

    /// The global edges crossing shards, in ascending id order — computed by
    /// one streaming scan of the endpoint list (the plan does not store it).
    pub fn boundary_edges<S: CsrStorage>(&self, csr: &CsrGraph<S>) -> Vec<EdgeId> {
        csr.edges()
            .filter(|&(_, u, v)| self.shard_of(u) != self.shard_of(v))
            .map(|(e, _, _)| e)
            .collect()
    }

    /// Materializes shard `s` alone: scans only shard `s`'s incidence lists
    /// (plus one endpoint lookup per internal edge), touching `O(shard)`
    /// bytes of a demand-paged source. The result is byte-identical to the
    /// corresponding [`CsrPartition`] shard.
    pub fn extract_shard<S: CsrStorage>(&self, csr: &CsrGraph<S>, s: usize) -> ExtractedShard {
        let range = self.vertex_range(s);
        let base = range.start;
        let size = range.len();
        // Internal edges ascending: each is collected once, from its
        // smaller endpoint's incidence list (self-loops cannot occur).
        let mut global_edges: Vec<u32> = Vec::new();
        for v in range.clone() {
            for (nbr, ge) in csr.incidences(VertexId::new(v)) {
                if range.contains(&nbr.index()) && v < nbr.index() {
                    global_edges.push(ge.raw());
                }
            }
        }
        global_edges.sort_unstable();
        let slots = 2 * global_edges.len();
        let mut offsets = Vec::with_capacity(size + 1);
        let mut neighbors = Vec::with_capacity(slots);
        let mut edge_ids = Vec::with_capacity(slots);
        offsets.push(0u32);
        for v in range.clone() {
            for (nbr, ge) in csr.incidences(VertexId::new(v)) {
                if range.contains(&nbr.index()) {
                    neighbors.push(u32_of(nbr.index() - base));
                    let local = global_edges
                        .binary_search(&ge.raw())
                        .expect("internal incidences reference collected edges");
                    edge_ids.push(u32_of(local));
                }
            }
            offsets.push(u32_of(neighbors.len()));
        }
        let mut endpoints = Vec::with_capacity(slots);
        for &ge in &global_edges {
            let (u, v) = csr.endpoints(EdgeId::new(ge as usize));
            endpoints.push(u32_of(u.index() - base));
            endpoints.push(u32_of(v.index() - base));
        }
        ExtractedShard {
            csr: OwnedCsr::from_raw_parts(offsets, neighbors, edge_ids, endpoints),
            global_edges,
        }
    }

    /// Heap bytes this plan keeps resident (the `k + 1` base array) — the
    /// out-of-core driver's accounting hook.
    pub fn resident_bytes(&self) -> usize {
        self.vertex_base.len() * std::mem::size_of::<u32>()
    }
}

/// The shared assignment walk behind [`CsrPartition::split`] and
/// [`ShardPlan::new`]: yields `(position, shard)` along the split order,
/// assigning each position to the shard whose share of the total incidence
/// mass its prefix midpoint falls into (degenerating to an even positional
/// split on edgeless graphs). The midpoint rule keeps the first/last shards
/// from starving; the shard index is non-decreasing along the walk, so
/// shards are contiguous ranges of the order.
fn assignment_walk<'a, S: CsrStorage>(
    csr: &'a CsrGraph<S>,
    k: usize,
    perm: Option<&'a VertexPermutation>,
) -> impl Iterator<Item = (usize, usize)> + 'a {
    let n = csr.num_vertices();
    let total: u64 = 2 * csr.num_edges() as u64;
    let mut prefix: u64 = 0;
    (0..n).map(move |pos| {
        let v = match perm {
            None => VertexId::new(pos),
            Some(p) => p.old_id(VertexId::new(pos)),
        };
        let d = csr.degree(v) as u64;
        let s = if total == 0 {
            (pos * k / n.max(1)) as u64
        } else {
            (prefix * 2 + d).min(2 * total - 1) * k as u64 / (2 * total)
        };
        prefix += d;
        (pos, (s as usize).min(k - 1))
    })
}

impl CsrPartition {
    /// Splits `csr` into `k` shards: contiguous vertex-id ranges balanced by
    /// incidence count. One `O(n + m)` pass; after it,
    /// [`CsrPartition::shard`] is zero-copy.
    ///
    /// `k` is clamped to `1..=max(n, 1)` — this low-level splitter always
    /// produces a usable partition (callers wanting `k = 0` to be an error
    /// must check before calling; the `Decomposer` facade surfaces a typed
    /// `InvalidShardCount` for it).
    pub fn split<S: CsrStorage>(csr: &CsrGraph<S>, k: usize) -> CsrPartition {
        Self::split_impl(csr, k, None)
    }

    /// [`CsrPartition::split`] over a locality-improving order: shards are
    /// contiguous ranges of `perm`'s visit order instead of the raw id
    /// range, so a BFS/RCM permutation ([`crate::reorder`]) keeps neighbors
    /// co-sharded even when vertex ids are random. Shard-local topologies,
    /// edge classification and all accessors speak **global** ids exactly as
    /// with the identity order.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != csr.num_vertices()`.
    pub fn split_ordered<S: CsrStorage>(
        csr: &CsrGraph<S>,
        k: usize,
        perm: &VertexPermutation,
    ) -> CsrPartition {
        assert_eq!(
            perm.len(),
            csr.num_vertices(),
            "permutation length must match the vertex count"
        );
        Self::split_impl(csr, k, Some(perm))
    }

    fn split_impl<S: CsrStorage>(
        csr: &CsrGraph<S>,
        k: usize,
        perm: Option<&VertexPermutation>,
    ) -> CsrPartition {
        let n = csr.num_vertices();
        let m = csr.num_edges();
        let k = k.clamp(1, n.max(1));
        let vertex_at = |pos: usize| -> VertexId {
            match perm {
                None => VertexId::new(pos),
                Some(p) => p.old_id(VertexId::new(pos)),
            }
        };
        // The assignment walk is shared with ShardPlan so the streaming
        // splitter cuts in exactly the same places.
        let mut shard_of = vec![0u32; n];
        for (pos, s) in assignment_walk(csr, k, perm) {
            shard_of[vertex_at(pos).index()] = u32_of(s);
        }
        // Contiguity + monotonicity along the order hold by construction;
        // derive the position bases and local ids.
        let mut vertex_base = vec![0u32; k + 1];
        for &s in &shard_of {
            vertex_base[s as usize + 1] += 1;
        }
        for s in 0..k {
            vertex_base[s + 1] += vertex_base[s];
        }
        let mut local_of = vec![0u32; n];
        for pos in 0..n {
            let v = vertex_at(pos);
            local_of[v.index()] = u32_of(pos) - vertex_base[shard_of[v.index()] as usize];
        }
        // Classify edges in one pass: count per-shard internal edges and
        // same-shard degrees, record each internal edge's local id, and
        // collect the boundary — everything the streaming fill below needs.
        let mut internal = vec![0u32; k];
        let mut edge_local = vec![0u32; m];
        let mut boundary = Vec::new();
        let pairs = csr.endpoint_words();
        // Reserve for the balanced case up front: growth reallocations of
        // the per-shard edge lists are the splitter's main allocator cost.
        let per_shard_cap = m.checked_div(k).unwrap_or(0) + 16;
        let mut edge_global: Vec<Vec<u32>> =
            (0..k).map(|_| Vec::with_capacity(per_shard_cap)).collect();
        let mut endpoints: Vec<Vec<u32>> = (0..k)
            .map(|_| Vec::with_capacity(2 * per_shard_cap))
            .collect();
        for (e, uv) in pairs.chunks_exact(2).enumerate() {
            let (u, v) = (uv[0] as usize, uv[1] as usize);
            let su = shard_of[u];
            if su == shard_of[v] {
                let s = su as usize;
                edge_local[e] = internal[s];
                internal[s] += 1;
                edge_global[s].push(u32_of(e));
                endpoints[s].push(local_of[u]);
                endpoints[s].push(local_of[v]);
            } else {
                boundary.push(EdgeId::new(e));
            }
        }
        // Build each shard's CSR by streaming the parent's incidence lists:
        // vertices in local order, keeping same-shard incidences, which are
        // already sorted by ascending global (hence local) edge id — exactly
        // the layout freezing the thawed shard would give, written purely by
        // appends (no scatter pass, no zero-initialized scratch).
        let shards: Vec<OwnedCsr> = (0..k)
            .map(|s| {
                let size = (vertex_base[s + 1] - vertex_base[s]) as usize;
                let slots = 2 * internal[s] as usize;
                let mut offsets = Vec::with_capacity(size + 1);
                let mut neighbors = Vec::with_capacity(slots);
                let mut edge_ids = Vec::with_capacity(slots);
                offsets.push(0u32);
                for local in 0..size {
                    let v = vertex_at(vertex_base[s] as usize + local);
                    for (nbr, ge) in csr.incidences(v) {
                        if shard_of[nbr.index()] as usize == s {
                            neighbors.push(local_of[nbr.index()]);
                            edge_ids.push(edge_local[ge.index()]);
                        }
                    }
                    offsets.push(u32_of(neighbors.len()));
                }
                OwnedCsr::from_raw_parts(
                    offsets,
                    neighbors,
                    edge_ids,
                    std::mem::take(&mut endpoints[s]),
                )
            })
            .collect();
        let order = perm.map(|p| p.as_new_order().to_vec());
        CsrPartition {
            shards,
            shard_of,
            local_of,
            vertex_base,
            order,
            edge_global,
            boundary,
        }
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Zero-copy view of shard `s`'s internal topology (local vertex ids
    /// `0..shard_size`, local edge ids `0..internal_edge_count`).
    pub fn shard(&self, s: usize) -> CsrRef<'_> {
        self.shards[s].view()
    }

    /// The global edges crossing shards, in ascending id order.
    pub fn boundary_edges(&self) -> &[EdgeId] {
        &self.boundary
    }

    /// The shard owning global vertex `v`.
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The local id of global vertex `v` inside its owning shard.
    pub fn local_vertex(&self, v: VertexId) -> VertexId {
        VertexId::new(self.local_of[v.index()] as usize)
    }

    /// The global vertex behind shard `s`'s local vertex `local`.
    pub fn global_vertex(&self, s: usize, local: VertexId) -> VertexId {
        let pos = self.vertex_base[s] as usize + local.index();
        match &self.order {
            None => VertexId::new(pos),
            Some(order) => VertexId::new(order[pos] as usize),
        }
    }

    /// Split-order position range `[start, end)` of shard `s`. With the
    /// identity order (plain [`CsrPartition::split`]) positions coincide
    /// with global vertex ids; under [`CsrPartition::split_ordered`] map a
    /// position through [`CsrPartition::global_vertex`].
    pub fn vertex_range(&self, s: usize) -> std::ops::Range<usize> {
        self.vertex_base[s] as usize..self.vertex_base[s + 1] as usize
    }

    /// The global edge behind shard `s`'s local edge `local`.
    pub fn global_edge(&self, s: usize, local: EdgeId) -> EdgeId {
        EdgeId::new(self.edge_global[s][local.index()] as usize)
    }

    /// Shard `s`'s full local-to-global edge map (index = local edge id) —
    /// the bulk-merge fast path.
    pub fn global_edges(&self, s: usize) -> &[u32] {
        &self.edge_global[s]
    }

    /// Total number of internal (non-boundary) edges across all shards.
    pub fn num_internal_edges(&self) -> usize {
        self.edge_global.iter().map(|v| v.len()).sum()
    }

    /// Fraction of all edges that cross shards (0 for an edgeless graph) —
    /// the quantity that governs stitching cost and sharded color quality.
    pub fn boundary_fraction(&self) -> f64 {
        let m = self.num_internal_edges() + self.boundary.len();
        if m == 0 {
            0.0
        } else {
            self.boundary.len() as f64 / m as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::multigraph::MultiGraph;
    use crate::reorder::{bfs_order, rcm_order};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_partition(g: &MultiGraph, part: &CsrPartition) {
        let k = part.num_shards();
        // Every vertex belongs to exactly one shard with a consistent
        // local <-> global mapping.
        for v in g.vertices() {
            let s = part.shard_of(v);
            assert!(s < k);
            assert_eq!(part.global_vertex(s, part.local_vertex(v)), v);
        }
        // Every edge appears exactly once: internal to one shard or boundary.
        let mut seen = vec![0usize; g.num_edges()];
        for s in 0..k {
            let shard = part.shard(s);
            assert_eq!(shard.num_vertices(), part.vertex_range(s).len());
            // The shard CSR must be exactly the freeze of the thawed shard
            // (the direct construction path cuts the intermediate, not the
            // contract).
            assert_eq!(
                OwnedCsr::from_multigraph(&shard.to_multigraph()),
                part.shards[s]
            );
            for (local, lu, lv) in shard.edges() {
                let e = part.global_edge(s, local);
                seen[e.index()] += 1;
                let (gu, gv) = g.endpoints(e);
                assert_eq!(part.global_vertex(s, lu), gu);
                assert_eq!(part.global_vertex(s, lv), gv);
            }
        }
        for &e in part.boundary_edges() {
            seen[e.index()] += 1;
            let (u, v) = g.endpoints(e);
            assert_ne!(
                part.shard_of(u),
                part.shard_of(v),
                "boundary edge crosses shards"
            );
        }
        assert!(seen.iter().all(|&c| c == 1), "each edge exactly once");
        assert_eq!(
            part.num_internal_edges() + part.boundary_edges().len(),
            g.num_edges()
        );
    }

    #[test]
    fn splits_preserve_every_edge_exactly_once() {
        let mut rng = StdRng::seed_from_u64(11);
        for g in [
            generators::path(17),
            generators::grid(6, 5),
            generators::fat_path(20, 3),
            generators::planted_forest_union(40, 3, &mut rng),
        ] {
            let csr = CsrGraph::from_multigraph(&g);
            for k in [1, 2, 3, 5, 100] {
                let part = CsrPartition::split(&csr, k);
                assert!(part.num_shards() >= 1);
                check_partition(&g, &part);
            }
        }
    }

    #[test]
    fn ordered_splits_preserve_every_edge_exactly_once() {
        let mut rng = StdRng::seed_from_u64(12);
        for g in [
            generators::grid(6, 5),
            generators::planted_forest_union(40, 3, &mut rng),
        ] {
            let csr = CsrGraph::from_multigraph(&g);
            for perm in [bfs_order(&csr), rcm_order(&csr)] {
                for k in [1, 2, 4, 9] {
                    let part = CsrPartition::split_ordered(&csr, k, &perm);
                    check_partition(&g, &part);
                }
            }
        }
    }

    #[test]
    fn rcm_split_beats_identity_on_a_shuffled_grid() {
        // Scramble a grid's vertex ids: contiguous-id splitting cuts almost
        // everything, RCM-ordered splitting restores a near-minimal cut.
        let g = generators::grid(16, 16);
        let csr = CsrGraph::from_multigraph(&g);
        let n = g.num_vertices();
        let mut rng = StdRng::seed_from_u64(4);
        let mut shuffle: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..i + 1);
            shuffle.swap(i, j);
        }
        let scramble = crate::reorder::VertexPermutation::from_new_order(shuffle);
        let scrambled_csr = crate::reorder::permute(&csr, &scramble);
        let scrambled = scrambled_csr.to_multigraph();
        let identity = CsrPartition::split(&scrambled_csr, 4);
        let ordered = CsrPartition::split_ordered(&scrambled_csr, 4, &rcm_order(&scrambled_csr));
        check_partition(&scrambled, &identity);
        check_partition(&scrambled, &ordered);
        assert!(
            ordered.boundary_fraction() < identity.boundary_fraction() / 4.0,
            "ordered {} vs identity {}",
            ordered.boundary_fraction(),
            identity.boundary_fraction()
        );
    }

    #[test]
    fn shard_plan_matches_csr_partition_everywhere() {
        let mut rng = StdRng::seed_from_u64(21);
        for g in [
            generators::path(17),
            generators::grid(6, 5),
            generators::fat_path(20, 3),
            generators::planted_forest_union(40, 3, &mut rng),
            MultiGraph::new(5),
            MultiGraph::new(0),
        ] {
            let csr = CsrGraph::from_multigraph(&g);
            for k in [1, 2, 3, 5, 100] {
                let part = CsrPartition::split(&csr, k);
                let plan = ShardPlan::new(&csr, k);
                assert_eq!(plan.num_shards(), part.num_shards());
                assert_eq!(plan.boundary_edges(&csr), part.boundary_edges());
                for v in g.vertices() {
                    assert_eq!(plan.shard_of(v), part.shard_of(v));
                    assert_eq!(plan.local_vertex(v), part.local_vertex(v));
                    let s = plan.shard_of(v);
                    assert_eq!(plan.global_vertex(s, plan.local_vertex(v)), v);
                }
                for s in 0..part.num_shards() {
                    assert_eq!(plan.vertex_range(s), part.vertex_range(s));
                    let extracted = plan.extract_shard(&csr, s);
                    assert_eq!(extracted.csr, part.shards[s]);
                    assert_eq!(extracted.global_edges, part.global_edges(s));
                }
                assert!(plan.resident_bytes() <= 4 * (part.num_shards() + 1));
            }
        }
    }

    #[test]
    fn shard_plan_extracts_from_mmap_storage() {
        // The out-of-core shape: plan + extract straight off a loaded file.
        let g = generators::fat_path(30, 3);
        let csr = CsrGraph::from_multigraph(&g);
        let path = std::env::temp_dir().join(format!(
            "forest-graph-shard-plan-{}.csr",
            std::process::id()
        ));
        csr.save(&path).unwrap();
        let mapped = CsrGraph::load_mmap(&path).unwrap();
        let part = CsrPartition::split(&csr, 3);
        let plan = ShardPlan::new(&mapped, 3);
        assert_eq!(plan.boundary_edges(&mapped), part.boundary_edges());
        for s in 0..part.num_shards() {
            assert_eq!(plan.extract_shard(&mapped, s).csr, part.shards[s]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = generators::grid(4, 4);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, 1);
        assert_eq!(part.num_shards(), 1);
        assert!(part.boundary_edges().is_empty());
        assert_eq!(part.boundary_fraction(), 0.0);
        assert_eq!(part.shard(0).to_multigraph(), g);
    }

    #[test]
    fn shards_are_incidence_balanced_on_a_path() {
        let g = generators::path(100);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, 4);
        for s in 0..4 {
            let size = part.vertex_range(s).len();
            assert!((15..=35).contains(&size), "shard {s} has {size} vertices");
        }
        // A path split into 4 contiguous ranges cuts exactly 3 edges.
        assert_eq!(part.boundary_edges().len(), 3);
    }

    #[test]
    fn split_works_on_borrowed_and_empty_inputs() {
        let g = MultiGraph::new(5);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr.view(), 2);
        check_partition(&g, &part);
        assert_eq!(part.num_shards(), 2);
        let empty = CsrGraph::from_multigraph(&MultiGraph::new(0));
        let part = CsrPartition::split(&empty, 3);
        assert_eq!(part.num_shards(), 1);
        assert!(part.boundary_edges().is_empty());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        // The low-level splitter clamps (documented); the facade is the
        // layer that rejects k = 0 with a typed error.
        let g = generators::grid(3, 3);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, 0);
        assert_eq!(part.num_shards(), 1);
        assert!(part.boundary_edges().is_empty());
        check_partition(&g, &part);
    }

    #[test]
    fn oversized_k_clamps_to_vertex_count() {
        let g = generators::path(3);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, 50);
        assert_eq!(part.num_shards(), 3);
        assert_eq!(part.boundary_edges().len(), 2);
        check_partition(&g, &part);
    }
}
