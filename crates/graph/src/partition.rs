//! Zero-copy sharding of one frozen CSR graph: the substrate for
//! shard-parallel decomposition.
//!
//! [`CsrPartition::split`] cuts the vertex range of a [`CsrGraph`] into `k`
//! contiguous shards balanced by incidence count, classifies every edge as
//! *internal* to the unique shard containing both endpoints or as a
//! *boundary* edge crossing two shards, and materializes each shard's
//! internal topology once as a locally-renumbered CSR. After the one `O(n +
//! m)` split, [`CsrPartition::shard`] hands out [`CsrRef`] views **without
//! copying**, so `k` workers can decompose their shards in parallel over
//! borrowed slices; the explicit [boundary edge list](CsrPartition::boundary_edges)
//! is what the stitching phase (the facade's `run_sharded`) recolors through
//! the leftover/augmenting machinery, exactly as Harris–Su–Vu compose
//! per-part partitions plus a small leftover.
//!
//! The local↔global vertex renumbering is kept as two dense index arrays
//! ([`shard_of`](CsrPartition::shard_of) / [`local_vertex`](CsrPartition::local_vertex)
//! one way, per-shard bases the other way); per-shard edge renumbering is a
//! small `local → global` array per shard. Every global edge appears exactly
//! once: in exactly one shard's internal edge list or in the boundary list.

use crate::csr::{CsrGraph, CsrRef, CsrStorage, OwnedCsr};
use crate::ids::{EdgeId, VertexId};
use crate::multigraph::MultiGraph;
use crate::view::GraphView;

/// A `k`-way sharding of one frozen graph: per-shard internal CSR topologies
/// (handed out as zero-copy [`CsrRef`] views) plus the boundary edges that
/// cross shards.
#[derive(Clone, Debug)]
pub struct CsrPartition {
    /// Per-shard internal topology, vertices renumbered `0..shard_size`.
    shards: Vec<OwnedCsr>,
    /// Global vertex → owning shard.
    shard_of: Vec<u32>,
    /// Global vertex → local id inside its owning shard.
    local_of: Vec<u32>,
    /// Shard → first global vertex (shards are contiguous vertex ranges);
    /// length `k + 1`.
    vertex_base: Vec<u32>,
    /// Shard → (local edge id → global edge id).
    edge_global: Vec<Vec<u32>>,
    /// Global edges whose endpoints live in different shards.
    boundary: Vec<EdgeId>,
}

impl CsrPartition {
    /// Splits `csr` into `k` shards (clamped to `1..=max(n, 1)`): contiguous
    /// vertex ranges balanced by incidence count. One `O(n + m)` pass; after
    /// it, [`CsrPartition::shard`] is zero-copy.
    pub fn split<S: CsrStorage>(csr: &CsrGraph<S>, k: usize) -> CsrPartition {
        let n = csr.num_vertices();
        let k = k.clamp(1, n.max(1));
        // Contiguous vertex ranges balanced by incidences: vertex v goes to
        // the shard whose share of the total incidence mass its prefix
        // midpoint falls into (degenerating to an even vertex split on
        // edgeless graphs).
        let total: u64 = 2 * csr.num_edges() as u64;
        let mut shard_of = vec![0u32; n];
        let mut prefix: u64 = 0;
        for v in csr.vertices() {
            let d = csr.degree(v) as u64;
            let s = if total == 0 {
                (v.index() * k / n.max(1)) as u64
            } else {
                // Midpoint rule keeps the first/last shards from starving.
                (prefix * 2 + d).min(2 * total - 1) * k as u64 / (2 * total)
            };
            shard_of[v.index()] = (s as usize).min(k - 1) as u32;
            prefix += d;
        }
        // Contiguity + monotonicity hold by construction; derive the bases
        // and local ids.
        let mut vertex_base = vec![0u32; k + 1];
        for &s in &shard_of {
            vertex_base[s as usize + 1] += 1;
        }
        for s in 0..k {
            vertex_base[s + 1] += vertex_base[s];
        }
        let local_of: Vec<u32> = (0..n)
            .map(|v| v as u32 - vertex_base[shard_of[v] as usize])
            .collect();
        // Classify edges and build each shard's internal topology through a
        // local MultiGraph, so incidence order matches what freezing the
        // thawed shard would produce.
        let mut locals: Vec<MultiGraph> = (0..k)
            .map(|s| MultiGraph::new((vertex_base[s + 1] - vertex_base[s]) as usize))
            .collect();
        let mut edge_global: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut boundary = Vec::new();
        for (e, u, v) in csr.edges() {
            let su = shard_of[u.index()] as usize;
            let sv = shard_of[v.index()] as usize;
            if su == sv {
                locals[su]
                    .add_edge(
                        VertexId::new(local_of[u.index()] as usize),
                        VertexId::new(local_of[v.index()] as usize),
                    )
                    .expect("local renumbering preserves validity");
                edge_global[su].push(e.raw());
            } else {
                boundary.push(e);
            }
        }
        let shards = locals.iter().map(OwnedCsr::from_multigraph).collect();
        CsrPartition {
            shards,
            shard_of,
            local_of,
            vertex_base,
            edge_global,
            boundary,
        }
    }

    /// Number of shards `k`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Zero-copy view of shard `s`'s internal topology (local vertex ids
    /// `0..shard_size`, local edge ids `0..internal_edge_count`).
    pub fn shard(&self, s: usize) -> CsrRef<'_> {
        self.shards[s].view()
    }

    /// The global edges crossing shards, in ascending id order.
    pub fn boundary_edges(&self) -> &[EdgeId] {
        &self.boundary
    }

    /// The shard owning global vertex `v`.
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The local id of global vertex `v` inside its owning shard.
    pub fn local_vertex(&self, v: VertexId) -> VertexId {
        VertexId::new(self.local_of[v.index()] as usize)
    }

    /// The global vertex behind shard `s`'s local vertex `local`.
    pub fn global_vertex(&self, s: usize, local: VertexId) -> VertexId {
        VertexId::new(self.vertex_base[s] as usize + local.index())
    }

    /// The global edge behind shard `s`'s local edge `local`.
    pub fn global_edge(&self, s: usize, local: EdgeId) -> EdgeId {
        EdgeId::new(self.edge_global[s][local.index()] as usize)
    }

    /// Global vertex range `[start, end)` of shard `s`.
    pub fn vertex_range(&self, s: usize) -> std::ops::Range<usize> {
        self.vertex_base[s] as usize..self.vertex_base[s + 1] as usize
    }

    /// Total number of internal (non-boundary) edges across all shards.
    pub fn num_internal_edges(&self) -> usize {
        self.edge_global.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_partition(g: &MultiGraph, part: &CsrPartition) {
        let k = part.num_shards();
        // Every vertex belongs to exactly one shard with a consistent
        // local <-> global mapping.
        for v in g.vertices() {
            let s = part.shard_of(v);
            assert!(s < k);
            assert!(part.vertex_range(s).contains(&v.index()));
            assert_eq!(part.global_vertex(s, part.local_vertex(v)), v);
        }
        // Every edge appears exactly once: internal to one shard or boundary.
        let mut seen = vec![0usize; g.num_edges()];
        for s in 0..k {
            let shard = part.shard(s);
            assert_eq!(shard.num_vertices(), part.vertex_range(s).len());
            for (local, lu, lv) in shard.edges() {
                let e = part.global_edge(s, local);
                seen[e.index()] += 1;
                let (gu, gv) = g.endpoints(e);
                assert_eq!(part.global_vertex(s, lu), gu);
                assert_eq!(part.global_vertex(s, lv), gv);
            }
        }
        for &e in part.boundary_edges() {
            seen[e.index()] += 1;
            let (u, v) = g.endpoints(e);
            assert_ne!(
                part.shard_of(u),
                part.shard_of(v),
                "boundary edge crosses shards"
            );
        }
        assert!(seen.iter().all(|&c| c == 1), "each edge exactly once");
        assert_eq!(
            part.num_internal_edges() + part.boundary_edges().len(),
            g.num_edges()
        );
    }

    #[test]
    fn splits_preserve_every_edge_exactly_once() {
        let mut rng = StdRng::seed_from_u64(11);
        for g in [
            generators::path(17),
            generators::grid(6, 5),
            generators::fat_path(20, 3),
            generators::planted_forest_union(40, 3, &mut rng),
        ] {
            let csr = CsrGraph::from_multigraph(&g);
            for k in [1, 2, 3, 5, 100] {
                let part = CsrPartition::split(&csr, k);
                assert!(part.num_shards() >= 1);
                check_partition(&g, &part);
            }
        }
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = generators::grid(4, 4);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, 1);
        assert_eq!(part.num_shards(), 1);
        assert!(part.boundary_edges().is_empty());
        assert_eq!(part.shard(0).to_multigraph(), g);
    }

    #[test]
    fn shards_are_incidence_balanced_on_a_path() {
        let g = generators::path(100);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, 4);
        for s in 0..4 {
            let size = part.vertex_range(s).len();
            assert!((15..=35).contains(&size), "shard {s} has {size} vertices");
        }
        // A path split into 4 contiguous ranges cuts exactly 3 edges.
        assert_eq!(part.boundary_edges().len(), 3);
    }

    #[test]
    fn split_works_on_borrowed_and_empty_inputs() {
        let g = MultiGraph::new(5);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr.view(), 2);
        check_partition(&g, &part);
        assert_eq!(part.num_shards(), 2);
        let empty = CsrGraph::from_multigraph(&MultiGraph::new(0));
        let part = CsrPartition::split(&empty, 3);
        assert_eq!(part.num_shards(), 1);
        assert!(part.boundary_edges().is_empty());
    }

    #[test]
    fn oversized_k_clamps_to_vertex_count() {
        let g = generators::path(3);
        let csr = CsrGraph::from_multigraph(&g);
        let part = CsrPartition::split(&csr, 50);
        assert_eq!(part.num_shards(), 3);
        assert_eq!(part.boundary_edges().len(), 2);
        check_partition(&g, &part);
    }
}
