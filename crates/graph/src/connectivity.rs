//! Incremental per-color connectivity over a partial edge coloring: one
//! structure shared by every consumer that used to roll its own.
//!
//! Both the augmenting-sequence search (`forest-decomp::augmenting`) and the
//! matroid partition ([`crate::matroid`]) repeatedly ask the same question:
//! *does the color-`c` forest already connect `u` and `v`?* The answer gates
//! the overwhelmingly common fast path (place the edge directly) against the
//! rare slow path (search for an augmenting/exchange sequence). This module
//! provides the one cache both use — and that shard-boundary stitching uses
//! too: one lazily-built [`UnionFind`] per color, with an **optional edge
//! filter** restricting which edges count (the augmenting search's
//! cluster-view restriction).
//!
//! Coloring an edge is an incremental union ([`ColorConnectivity::insert`]);
//! recolorings invalidate the affected colors, which rebuild on next use
//! ([`ColorConnectivity::invalidate`]), per color in one shared pass
//! ([`ColorConnectivity::rebuild_colors`]) when an exchange touched a known
//! set of colors, or wholesale ([`ColorConnectivity::rebuild`]) when the
//! touch set is unknown.
//!
//! Union-find is the right backing as long as forests only *grow*. When
//! they shrink too — streaming deletions, CUT removals, exchange-heavy
//! recoloring — use [`DynamicColorConnectivity`], which rides each color
//! class on a fully-dynamic [`DynamicConnectivity`] so a recoloring is two
//! `O(log² n)` edits instead of an `O(m)` rebuild.

use crate::decomposition::PartialEdgeColoring;
use crate::dynamic::{DynamicConnectivity, EdgeKey};
use crate::ids::{Color, EdgeId, VertexId};
use crate::union_find::UnionFind;
use crate::view::GraphView;
use std::collections::BTreeMap;

/// Incremental per-color connectivity over a partial coloring.
///
/// The structure is tied to one `(coloring, filter)` evolution: the lazily
/// built forests are snapshots of the coloring at build time plus the
/// [`insert`](ColorConnectivity::insert)s applied since. Create it fresh (or
/// [`rebuild`](ColorConnectivity::rebuild) /
/// [`invalidate_all`](ColorConnectivity::invalidate_all)) whenever the edge
/// filter changes or colors are cleared behind its back.
///
/// ```
/// use forest_graph::{ColorConnectivity, Color, EdgeId, GraphView, MultiGraph};
/// use forest_graph::decomposition::PartialEdgeColoring;
/// let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)])?;
/// let mut coloring = PartialEdgeColoring::new_uncolored(2);
/// coloring.set(EdgeId::new(0), Color::new(0));
/// let mut conn = ColorConnectivity::new(g.num_vertices());
/// assert!(conn.connected(&g, &coloring, None, Color::new(0), 0.into(), 1.into()));
/// assert!(!conn.connected(&g, &coloring, None, Color::new(0), 1.into(), 2.into()));
/// # Ok::<(), forest_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ColorConnectivity {
    num_vertices: usize,
    forests: BTreeMap<Color, UnionFind>,
}

impl ColorConnectivity {
    /// An empty cache for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        ColorConnectivity {
            num_vertices,
            forests: BTreeMap::new(),
        }
    }

    /// Number of vertices the per-color forests span.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Drops the cached forest of `c`, forcing a rebuild on next use.
    pub fn invalidate(&mut self, c: Color) {
        self.forests.remove(&c);
    }

    /// Drops every cached forest (bulk recoloring with unknown touch set).
    pub fn invalidate_all(&mut self) {
        self.forests.clear();
    }

    /// The color-`c` forest, built on first use by scanning `g` for edges
    /// colored `c` that pass `filter` (`None` = every edge counts).
    pub fn forest<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        c: Color,
    ) -> &mut UnionFind {
        self.forests.entry(c).or_insert_with(|| {
            let mut uf = UnionFind::new(self.num_vertices);
            for (e, u, v) in g.edges() {
                if coloring.color(e) == Some(c) && filter.is_none_or(|keep| keep(e)) {
                    uf.union(u.index(), v.index());
                }
            }
            uf
        })
    }

    /// The already-cached forest of `c`, if any — the no-graph-in-hand
    /// accessor for callers that maintain the cache purely through
    /// [`ColorConnectivity::prime`] + [`ColorConnectivity::insert`]
    /// (shard stitching), where a lazy build could never trigger.
    pub fn cached_forest(&mut self, c: Color) -> Option<&mut UnionFind> {
        self.forests.get_mut(&c)
    }

    /// Whether the color-`c` forest (under `filter`) connects `u` and `v`.
    pub fn connected<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        c: Color,
        u: VertexId,
        v: VertexId,
    ) -> bool {
        self.forest(g, coloring, filter, c)
            .connected(u.index(), v.index())
    }

    /// Creates empty cached forests for colors `0..num_colors` so that
    /// subsequent [`ColorConnectivity::insert`]s build them incrementally —
    /// the bulk-merge fast path, which avoids the `O(colors x m)` lazy
    /// rebuild scans entirely when the caller replays every colored edge
    /// through `insert`.
    pub fn prime(&mut self, num_colors: usize) {
        for c in 0..num_colors {
            self.forests
                .entry(Color::new(c))
                .or_insert_with(|| UnionFind::new(self.num_vertices));
        }
    }

    /// Records that an edge `{u, v}` was just colored `c`: an incremental
    /// union when the forest is cached, a no-op otherwise (the lazy build
    /// will see the edge in the coloring).
    pub fn insert(&mut self, c: Color, u: VertexId, v: VertexId) {
        if let Some(uf) = self.forests.get_mut(&c) {
            uf.union(u.index(), v.index());
        }
    }

    /// First color in `0..k` whose forest keeps `u` and `v` apart — the fast
    /// path of both the matroid partition and the augmenting search.
    pub fn first_free_color<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        k: usize,
        u: VertexId,
        v: VertexId,
    ) -> Option<Color> {
        (0..k)
            .map(Color::new)
            .find(|&c| !self.connected(g, coloring, filter, c, u, v))
    }

    /// Rebuilds exactly the forests of `colors` in one shared edge scan,
    /// **preserving every other color's cached forest** — the per-color
    /// invalidation an exchange with a known touch set wants.
    ///
    /// [`ColorConnectivity::rebuild`] resets the whole cache: colors the
    /// exchange never touched lose their incrementally-maintained state
    /// (including forests built under an edge filter) and pay a fresh lazy
    /// build each. This entry point drops only what actually changed.
    pub fn rebuild_colors<G, I>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        colors: I,
    ) where
        G: GraphView,
        I: IntoIterator<Item = Color>,
    {
        let mut touched: Vec<Color> = colors.into_iter().collect();
        touched.sort_unstable();
        touched.dedup();
        if touched.is_empty() {
            return;
        }
        for &c in &touched {
            self.forests.insert(c, UnionFind::new(self.num_vertices));
        }
        for (e, u, v) in g.edges() {
            if let Some(c) = coloring.color(e) {
                if touched.binary_search(&c).is_ok() && filter.is_none_or(|keep| keep(e)) {
                    self.forests
                        .get_mut(&c)
                        .expect("touched colors were just inserted")
                        .union(u.index(), v.index());
                }
            }
        }
    }

    /// [`ColorConnectivity::rebuild_colors`] for a single color.
    pub fn rebuild_color<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        c: Color,
    ) {
        self.rebuild_colors(g, coloring, filter, [c]);
    }

    /// Rebuilds the forests of colors `0..num_colors` eagerly in one edge
    /// scan (cheaper than `num_colors` lazy builds after an exchange that
    /// touched many colors). Colors outside the range are dropped.
    pub fn rebuild<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        num_colors: usize,
    ) {
        self.forests.clear();
        for c in 0..num_colors {
            self.forests
                .insert(Color::new(c), UnionFind::new(self.num_vertices));
        }
        for (e, u, v) in g.edges() {
            if let Some(c) = coloring.color(e) {
                if c.index() < num_colors && filter.is_none_or(|keep| keep(e)) {
                    if let Some(uf) = self.forests.get_mut(&c) {
                        uf.union(u.index(), v.index());
                    }
                }
            }
        }
    }
}

/// Per-color connectivity over a partial coloring that supports **removal**:
/// each color class rides on a fully-dynamic
/// [`DynamicConnectivity`](crate::dynamic::DynamicConnectivity), so
/// recoloring an edge (an exchange step, a CUT removal, a streaming delete)
/// is two amortized-`O(log² n)` edits instead of invalidating the color and
/// paying an `O(m)` rebuild on next use.
///
/// Unlike [`ColorConnectivity`], this structure never scans a graph: it is
/// maintained *purely* through [`insert`](DynamicColorConnectivity::insert) /
/// [`remove`](DynamicColorConnectivity::remove) /
/// [`recolor`](DynamicColorConnectivity::recolor) mirroring every coloring
/// edit, which makes it exact at all times — the natural cache for
/// update-stream workloads (`DynamicDecomposer`) and exchange-heavy passes
/// (exact-α stitching), where union-find's insert-only model forces repeated
/// rebuilds.
///
/// ```
/// use forest_graph::connectivity::DynamicColorConnectivity;
/// use forest_graph::{Color, EdgeId};
/// let mut conn = DynamicColorConnectivity::new(3);
/// conn.insert(EdgeId::new(0), Color::new(0), 0.into(), 1.into());
/// conn.insert(EdgeId::new(1), Color::new(0), 1.into(), 2.into());
/// assert!(conn.connected(Color::new(0), 0.into(), 2.into()));
/// assert_eq!(conn.remove(EdgeId::new(1)), Some(Color::new(0)));
/// assert!(!conn.connected(Color::new(0), 0.into(), 2.into()));
/// ```
#[derive(Clone, Debug)]
pub struct DynamicColorConnectivity {
    num_vertices: usize,
    colors: Vec<DynamicConnectivity>,
    /// For every edge id: which color structure holds it, under which key.
    keys: Vec<Option<(Color, EdgeKey)>>,
}

impl DynamicColorConnectivity {
    /// An empty structure over `num_vertices` vertices and no colors yet
    /// (color structures materialize as they are first used).
    pub fn new(num_vertices: usize) -> Self {
        DynamicColorConnectivity {
            num_vertices,
            colors: Vec::new(),
            keys: Vec::new(),
        }
    }

    /// Seeds a structure from an existing complete or partial coloring: one
    /// pass inserting every colored edge that passes `filter`.
    pub fn from_coloring<G: GraphView>(
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
    ) -> Self {
        let mut conn = DynamicColorConnectivity::new(g.num_vertices());
        for (e, u, v) in g.edges() {
            if let Some(c) = coloring.color(e) {
                if filter.is_none_or(|keep| keep(e)) {
                    conn.insert(e, c, u, v);
                }
            }
        }
        conn
    }

    /// Number of vertices every color class spans.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of materialized color structures (an upper bound on the
    /// colors in use).
    pub fn num_colors(&self) -> usize {
        self.colors.len()
    }

    /// The color currently holding `e`, if any.
    pub fn color_of(&self, e: EdgeId) -> Option<Color> {
        self.keys.get(e.index()).copied().flatten().map(|(c, _)| c)
    }

    fn ensure_color(&mut self, c: Color) {
        while self.colors.len() <= c.index() {
            self.colors
                .push(DynamicConnectivity::new(self.num_vertices));
        }
    }

    fn ensure_edge(&mut self, e: EdgeId) {
        if self.keys.len() <= e.index() {
            self.keys.resize(e.index() + 1, None);
        }
    }

    /// Whether the color-`c` forest connects `u` and `v` (`false` for a
    /// color never used). Amortized `O(log n)`.
    pub fn connected(&mut self, c: Color, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        match self.colors.get_mut(c.index()) {
            Some(dc) => dc.connected(u, v),
            None => false,
        }
    }

    /// Number of vertices in `v`'s component of the color-`c` class (1 for
    /// a color never used).
    pub fn component_size(&mut self, c: Color, v: VertexId) -> usize {
        match self.colors.get_mut(c.index()) {
            Some(dc) => dc.component_size(v),
            None => 1,
        }
    }

    /// First color in `0..k` whose class keeps `u` and `v` apart.
    pub fn first_free_color(&mut self, k: usize, u: VertexId, v: VertexId) -> Option<Color> {
        (0..k).map(Color::new).find(|&c| !self.connected(c, u, v))
    }

    /// Records that edge `e = {u, v}` was colored `c`. Amortized
    /// `O(log n)`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `e` is already tracked (recolor through
    /// [`DynamicColorConnectivity::recolor`] instead).
    pub fn insert(&mut self, e: EdgeId, c: Color, u: VertexId, v: VertexId) {
        self.ensure_color(c);
        self.ensure_edge(e);
        debug_assert!(self.keys[e.index()].is_none(), "edge {e} already tracked");
        let key = self.colors[c.index()].insert_edge(u, v);
        self.keys[e.index()] = Some((c, key));
    }

    /// Records that edge `e` was uncolored (deleted or cleared): removes it
    /// from its class. Returns the color it held, `None` if untracked.
    /// Amortized `O(log² n)`.
    pub fn remove(&mut self, e: EdgeId) -> Option<Color> {
        let (c, key) = self.keys.get_mut(e.index())?.take()?;
        self.colors[c.index()].delete_edge(key);
        Some(c)
    }

    /// Records that edge `e = {u, v}` moved to color `c` (an exchange
    /// step): a removal plus an insertion, two cheap edits. Returns the
    /// previous color, if any.
    pub fn recolor(&mut self, e: EdgeId, c: Color, u: VertexId, v: VertexId) -> Option<Color> {
        let old = self.remove(e);
        self.insert(e, c, u, v);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::multigraph::MultiGraph;

    fn e(i: usize) -> EdgeId {
        EdgeId::new(i)
    }

    fn c(i: usize) -> Color {
        Color::new(i)
    }

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn lazy_build_reflects_the_coloring() {
        let g = generators::path(4); // edges 0-1, 1-2, 2-3
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        coloring.set(e(0), c(0));
        coloring.set(e(1), c(0));
        coloring.set(e(2), c(1));
        let mut conn = ColorConnectivity::new(4);
        assert!(conn.connected(&g, &coloring, None, c(0), v(0), v(2)));
        assert!(!conn.connected(&g, &coloring, None, c(0), v(0), v(3)));
        assert!(conn.connected(&g, &coloring, None, c(1), v(2), v(3)));
    }

    #[test]
    fn filter_restricts_which_edges_count() {
        let g = generators::path(4);
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        for i in 0..3 {
            coloring.set(e(i), c(0));
        }
        let keep = |x: EdgeId| x.index() != 1;
        let mut conn = ColorConnectivity::new(4);
        assert!(!conn.connected(&g, &coloring, Some(&keep), c(0), v(0), v(3)));
        assert!(conn.connected(&g, &coloring, Some(&keep), c(0), v(0), v(1)));
    }

    #[test]
    fn insert_is_incremental_and_invalidate_rebuilds() {
        let g = generators::path(4);
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        let mut conn = ColorConnectivity::new(4);
        // Build the empty forest first, then color through insert.
        assert!(!conn.connected(&g, &coloring, None, c(0), v(0), v(1)));
        coloring.set(e(0), c(0));
        conn.insert(c(0), v(0), v(1));
        assert!(conn.connected(&g, &coloring, None, c(0), v(0), v(1)));
        // A recolor behind the cache's back must be surfaced by invalidate.
        coloring.clear(e(0));
        conn.invalidate(c(0));
        assert!(!conn.connected(&g, &coloring, None, c(0), v(0), v(1)));
    }

    #[test]
    fn first_free_color_matches_linear_scan() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        coloring.set(e(0), c(0));
        coloring.set(e(1), c(1));
        let mut conn = ColorConnectivity::new(3);
        assert_eq!(
            conn.first_free_color(&g, &coloring, None, 3, v(0), v(1)),
            Some(c(2))
        );
        coloring.set(e(2), c(2));
        conn.insert(c(2), v(0), v(1));
        assert_eq!(
            conn.first_free_color(&g, &coloring, None, 3, v(0), v(1)),
            None
        );
    }

    #[test]
    fn rebuild_colors_preserves_untouched_forests() {
        // Regression: rebuilding one color must not reset the cached state
        // of the others — `rebuild` used to nuke the whole cache, so a
        // caller that recolored inside color 0 also lost color 1's
        // incrementally-built (or filter-restricted) forest.
        let g = generators::path(4);
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        coloring.set(e(0), c(0));
        let mut conn = ColorConnectivity::new(4);
        conn.prime(2);
        conn.insert(c(0), v(0), v(1));
        // Color 1's forest carries state the coloring does not (the primed
        // + inserted evolution shard stitching relies on).
        conn.insert(c(1), v(2), v(3));
        // Recolor inside color 0 and rebuild only it.
        coloring.clear(e(0));
        coloring.set(e(1), c(0));
        conn.rebuild_color(&g, &coloring, None, c(0));
        assert!(!conn.connected(&g, &coloring, None, c(0), v(0), v(1)));
        assert!(conn.connected(&g, &coloring, None, c(0), v(1), v(2)));
        // Color 1's insert-only state survived the color-0 rebuild.
        assert!(conn
            .cached_forest(c(1))
            .expect("color 1 stays cached")
            .connected(2, 3));
    }

    #[test]
    fn rebuild_colors_respects_filter_and_matches_fresh() {
        let g = generators::grid(3, 3);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for (i, edge) in g.edge_ids().enumerate() {
            coloring.set(edge, c(i % 3));
        }
        let keep = |x: EdgeId| x.index().is_multiple_of(2);
        let mut rebuilt = ColorConnectivity::new(g.num_vertices());
        rebuilt.rebuild_colors(&g, &coloring, Some(&keep), [c(0), c(2)]);
        let mut fresh = ColorConnectivity::new(g.num_vertices());
        for color in [c(0), c(2)] {
            for a in g.vertices() {
                for b in g.vertices() {
                    assert_eq!(
                        rebuilt.connected(&g, &coloring, Some(&keep), color, a, b),
                        fresh.connected(&g, &coloring, Some(&keep), color, a, b)
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_color_connectivity_tracks_recoloring() {
        let mut conn = DynamicColorConnectivity::new(4);
        conn.insert(e(0), c(0), v(0), v(1));
        conn.insert(e(1), c(0), v(1), v(2));
        conn.insert(e(2), c(1), v(2), v(3));
        assert!(conn.connected(c(0), v(0), v(2)));
        assert_eq!(conn.first_free_color(2, v(0), v(2)), Some(c(1)));
        assert_eq!(conn.color_of(e(1)), Some(c(0)));
        // Exchange: move e1 to color 1.
        assert_eq!(conn.recolor(e(1), c(1), v(1), v(2)), Some(c(0)));
        assert!(!conn.connected(c(0), v(0), v(2)));
        assert!(conn.connected(c(1), v(1), v(3)));
        assert_eq!(conn.component_size(c(1), v(1)), 3);
        // Removal uncolors.
        assert_eq!(conn.remove(e(2)), Some(c(1)));
        assert_eq!(conn.remove(e(2)), None);
        // Unused colors answer conservatively.
        assert!(!conn.connected(c(9), v(0), v(1)));
        assert_eq!(conn.component_size(c(9), v(0)), 1);
    }

    #[test]
    fn dynamic_color_connectivity_seeds_from_coloring() {
        let g = generators::cycle(5);
        let mut coloring = PartialEdgeColoring::new_uncolored(5);
        for i in 0..4 {
            coloring.set(e(i), c(i % 2));
        }
        let mut dynamic = DynamicColorConnectivity::from_coloring(&g, &coloring, None);
        let mut lazy = ColorConnectivity::new(g.num_vertices());
        for color in [c(0), c(1)] {
            for a in g.vertices() {
                for b in g.vertices() {
                    assert_eq!(
                        dynamic.connected(color, a, b),
                        lazy.connected(&g, &coloring, None, color, a, b)
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_rebuild_equals_fresh_cache() {
        let g = generators::grid(3, 3);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for (i, edge) in g.edge_ids().enumerate() {
            coloring.set(edge, c(i % 2));
        }
        let mut rebuilt = ColorConnectivity::new(g.num_vertices());
        rebuilt.rebuild(&g, &coloring, None, 2);
        let mut fresh = ColorConnectivity::new(g.num_vertices());
        for color in [c(0), c(1)] {
            for a in g.vertices() {
                for b in g.vertices() {
                    assert_eq!(
                        rebuilt.connected(&g, &coloring, None, color, a, b),
                        fresh.connected(&g, &coloring, None, color, a, b)
                    );
                }
            }
        }
    }
}
