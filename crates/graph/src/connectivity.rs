//! Incremental per-color connectivity over a partial edge coloring: one
//! structure shared by every consumer that used to roll its own.
//!
//! Both the augmenting-sequence search (`forest-decomp::augmenting`) and the
//! matroid partition ([`crate::matroid`]) repeatedly ask the same question:
//! *does the color-`c` forest already connect `u` and `v`?* The answer gates
//! the overwhelmingly common fast path (place the edge directly) against the
//! rare slow path (search for an augmenting/exchange sequence). This module
//! provides the one cache both use — and that shard-boundary stitching uses
//! too: one lazily-built [`UnionFind`] per color, with an **optional edge
//! filter** restricting which edges count (the augmenting search's
//! cluster-view restriction).
//!
//! Coloring an edge is an incremental union ([`ColorConnectivity::insert`]);
//! recolorings invalidate the affected colors, which rebuild on next use
//! ([`ColorConnectivity::invalidate`]), or in one bulk pass
//! ([`ColorConnectivity::rebuild`]) when many colors changed at once. A
//! future upgrade to real dynamic connectivity (Holm–de Lichtenberg–Thorup)
//! would replace the rebuilds without changing this API.

use crate::decomposition::PartialEdgeColoring;
use crate::ids::{Color, EdgeId, VertexId};
use crate::union_find::UnionFind;
use crate::view::GraphView;
use std::collections::BTreeMap;

/// Incremental per-color connectivity over a partial coloring.
///
/// The structure is tied to one `(coloring, filter)` evolution: the lazily
/// built forests are snapshots of the coloring at build time plus the
/// [`insert`](ColorConnectivity::insert)s applied since. Create it fresh (or
/// [`rebuild`](ColorConnectivity::rebuild) /
/// [`invalidate_all`](ColorConnectivity::invalidate_all)) whenever the edge
/// filter changes or colors are cleared behind its back.
///
/// ```
/// use forest_graph::{ColorConnectivity, Color, EdgeId, GraphView, MultiGraph};
/// use forest_graph::decomposition::PartialEdgeColoring;
/// let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)])?;
/// let mut coloring = PartialEdgeColoring::new_uncolored(2);
/// coloring.set(EdgeId::new(0), Color::new(0));
/// let mut conn = ColorConnectivity::new(g.num_vertices());
/// assert!(conn.connected(&g, &coloring, None, Color::new(0), 0.into(), 1.into()));
/// assert!(!conn.connected(&g, &coloring, None, Color::new(0), 1.into(), 2.into()));
/// # Ok::<(), forest_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ColorConnectivity {
    num_vertices: usize,
    forests: BTreeMap<Color, UnionFind>,
}

impl ColorConnectivity {
    /// An empty cache for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        ColorConnectivity {
            num_vertices,
            forests: BTreeMap::new(),
        }
    }

    /// Number of vertices the per-color forests span.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Drops the cached forest of `c`, forcing a rebuild on next use.
    pub fn invalidate(&mut self, c: Color) {
        self.forests.remove(&c);
    }

    /// Drops every cached forest (bulk recoloring with unknown touch set).
    pub fn invalidate_all(&mut self) {
        self.forests.clear();
    }

    /// The color-`c` forest, built on first use by scanning `g` for edges
    /// colored `c` that pass `filter` (`None` = every edge counts).
    pub fn forest<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        c: Color,
    ) -> &mut UnionFind {
        self.forests.entry(c).or_insert_with(|| {
            let mut uf = UnionFind::new(self.num_vertices);
            for (e, u, v) in g.edges() {
                if coloring.color(e) == Some(c) && filter.is_none_or(|keep| keep(e)) {
                    uf.union(u.index(), v.index());
                }
            }
            uf
        })
    }

    /// The already-cached forest of `c`, if any — the no-graph-in-hand
    /// accessor for callers that maintain the cache purely through
    /// [`ColorConnectivity::prime`] + [`ColorConnectivity::insert`]
    /// (shard stitching), where a lazy build could never trigger.
    pub fn cached_forest(&mut self, c: Color) -> Option<&mut UnionFind> {
        self.forests.get_mut(&c)
    }

    /// Whether the color-`c` forest (under `filter`) connects `u` and `v`.
    pub fn connected<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        c: Color,
        u: VertexId,
        v: VertexId,
    ) -> bool {
        self.forest(g, coloring, filter, c)
            .connected(u.index(), v.index())
    }

    /// Creates empty cached forests for colors `0..num_colors` so that
    /// subsequent [`ColorConnectivity::insert`]s build them incrementally —
    /// the bulk-merge fast path, which avoids the `O(colors x m)` lazy
    /// rebuild scans entirely when the caller replays every colored edge
    /// through `insert`.
    pub fn prime(&mut self, num_colors: usize) {
        for c in 0..num_colors {
            self.forests
                .entry(Color::new(c))
                .or_insert_with(|| UnionFind::new(self.num_vertices));
        }
    }

    /// Records that an edge `{u, v}` was just colored `c`: an incremental
    /// union when the forest is cached, a no-op otherwise (the lazy build
    /// will see the edge in the coloring).
    pub fn insert(&mut self, c: Color, u: VertexId, v: VertexId) {
        if let Some(uf) = self.forests.get_mut(&c) {
            uf.union(u.index(), v.index());
        }
    }

    /// First color in `0..k` whose forest keeps `u` and `v` apart — the fast
    /// path of both the matroid partition and the augmenting search.
    pub fn first_free_color<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        k: usize,
        u: VertexId,
        v: VertexId,
    ) -> Option<Color> {
        (0..k)
            .map(Color::new)
            .find(|&c| !self.connected(g, coloring, filter, c, u, v))
    }

    /// Rebuilds the forests of colors `0..num_colors` eagerly in one edge
    /// scan (cheaper than `num_colors` lazy builds after an exchange that
    /// touched many colors). Colors outside the range are dropped.
    pub fn rebuild<G: GraphView>(
        &mut self,
        g: &G,
        coloring: &PartialEdgeColoring,
        filter: Option<&dyn Fn(EdgeId) -> bool>,
        num_colors: usize,
    ) {
        self.forests.clear();
        for c in 0..num_colors {
            self.forests
                .insert(Color::new(c), UnionFind::new(self.num_vertices));
        }
        for (e, u, v) in g.edges() {
            if let Some(c) = coloring.color(e) {
                if c.index() < num_colors && filter.is_none_or(|keep| keep(e)) {
                    if let Some(uf) = self.forests.get_mut(&c) {
                        uf.union(u.index(), v.index());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::multigraph::MultiGraph;

    fn e(i: usize) -> EdgeId {
        EdgeId::new(i)
    }

    fn c(i: usize) -> Color {
        Color::new(i)
    }

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn lazy_build_reflects_the_coloring() {
        let g = generators::path(4); // edges 0-1, 1-2, 2-3
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        coloring.set(e(0), c(0));
        coloring.set(e(1), c(0));
        coloring.set(e(2), c(1));
        let mut conn = ColorConnectivity::new(4);
        assert!(conn.connected(&g, &coloring, None, c(0), v(0), v(2)));
        assert!(!conn.connected(&g, &coloring, None, c(0), v(0), v(3)));
        assert!(conn.connected(&g, &coloring, None, c(1), v(2), v(3)));
    }

    #[test]
    fn filter_restricts_which_edges_count() {
        let g = generators::path(4);
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        for i in 0..3 {
            coloring.set(e(i), c(0));
        }
        let keep = |x: EdgeId| x.index() != 1;
        let mut conn = ColorConnectivity::new(4);
        assert!(!conn.connected(&g, &coloring, Some(&keep), c(0), v(0), v(3)));
        assert!(conn.connected(&g, &coloring, Some(&keep), c(0), v(0), v(1)));
    }

    #[test]
    fn insert_is_incremental_and_invalidate_rebuilds() {
        let g = generators::path(4);
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        let mut conn = ColorConnectivity::new(4);
        // Build the empty forest first, then color through insert.
        assert!(!conn.connected(&g, &coloring, None, c(0), v(0), v(1)));
        coloring.set(e(0), c(0));
        conn.insert(c(0), v(0), v(1));
        assert!(conn.connected(&g, &coloring, None, c(0), v(0), v(1)));
        // A recolor behind the cache's back must be surfaced by invalidate.
        coloring.clear(e(0));
        conn.invalidate(c(0));
        assert!(!conn.connected(&g, &coloring, None, c(0), v(0), v(1)));
    }

    #[test]
    fn first_free_color_matches_linear_scan() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let mut coloring = PartialEdgeColoring::new_uncolored(3);
        coloring.set(e(0), c(0));
        coloring.set(e(1), c(1));
        let mut conn = ColorConnectivity::new(3);
        assert_eq!(
            conn.first_free_color(&g, &coloring, None, 3, v(0), v(1)),
            Some(c(2))
        );
        coloring.set(e(2), c(2));
        conn.insert(c(2), v(0), v(1));
        assert_eq!(
            conn.first_free_color(&g, &coloring, None, 3, v(0), v(1)),
            None
        );
    }

    #[test]
    fn bulk_rebuild_equals_fresh_cache() {
        let g = generators::grid(3, 3);
        let mut coloring = PartialEdgeColoring::new_uncolored(g.num_edges());
        for (i, edge) in g.edge_ids().enumerate() {
            coloring.set(edge, c(i % 2));
        }
        let mut rebuilt = ColorConnectivity::new(g.num_vertices());
        rebuilt.rebuild(&g, &coloring, None, 2);
        let mut fresh = ColorConnectivity::new(g.num_vertices());
        for color in [c(0), c(1)] {
            for a in g.vertices() {
                for b in g.vertices() {
                    assert_eq!(
                        rebuilt.connected(&g, &coloring, None, color, a, b),
                        fresh.connected(&g, &coloring, None, color, a, b)
                    );
                }
            }
        }
    }
}
