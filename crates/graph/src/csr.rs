//! A frozen compressed-sparse-row graph, generic over where its arrays live:
//! the cache-friendly topology every decomposition pipeline runs on.
//!
//! [`CsrGraph`] stores the incidence structure of a
//! [`MultiGraph`](crate::MultiGraph) in four flat `u32` arrays (`offsets`,
//! `neighbors`, `edge_ids`, interleaved `endpoints`): neighborhood iteration
//! is a contiguous slice scan instead of a pointer chase through per-vertex
//! `Vec`s, degrees are O(1) offset differences, and iteration order is fixed
//! by construction. The topology is *frozen* — there is no `add_edge` —
//! which is exactly what the Harris–Su–Vu algorithms need: they are
//! round-synchronous scans over static topology.
//!
//! # Storage genericity
//!
//! The arrays are abstracted behind the sealed [`CsrStorage`] trait, so the
//! same graph type works over three homes without any algorithm noticing:
//!
//! * [`OwnedCsr`] (`CsrGraph<Vec<u32>>`, the default) — heap-owned arrays,
//!   what [`CsrGraph::from_multigraph`] builds.
//! * [`CsrRef`] (`CsrGraph<&[u32]>`) — borrowed slices. Every storage can
//!   produce one with [`CsrGraph::view`] at zero cost, and
//!   [`CsrPartition`](crate::CsrPartition) hands out per-shard `CsrRef`s
//!   without copying.
//! * [`MmapCsr`] (`CsrGraph<MmapStorage>`) — arrays backed by a
//!   memory-mapped file ([`MmapCsr::load_mmap`]), sharing one buffer across
//!   clones so batch workers share pages.
//!
//! All [`GraphView`] methods are allocation-free on every storage, so every
//! decomposition pipeline runs unchanged on any of them.
//!
//! # On-disk format
//!
//! [`CsrGraph::save`] / [`MmapCsr::load_mmap`] speak a versioned
//! little-endian format (see [`FORMAT_VERSION`]): a 32-byte header
//! (`magic`, `version`, `n`, `m` as `u64` LE) followed by the four arrays as
//! `u32` LE words — `offsets` (`n + 1`), `neighbors` (`2m`), `edge_ids`
//! (`2m`), `endpoints` (`2m`, interleaved `u, v` per edge). Save → load →
//! save round-trips byte-identically.
//!
//! # When to freeze
//!
//! Freeze once per request/run, not per phase: build the graph mutably as a
//! `MultiGraph`, convert with [`CsrGraph::from_multigraph`] at the boundary
//! where algorithms start (the `Decomposer` facade does this automatically),
//! and thread the `CsrGraph` through every phase. Conversion is `O(n + m)`
//! and preserves `MultiGraph`'s incidence order, so algorithm output is
//! identical on both representations.

use crate::ids::{u32_of, EdgeId, VertexId};
use crate::multigraph::MultiGraph;
use crate::view::GraphView;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
    impl Sealed for Vec<u32> {}
    impl Sealed for &[u32] {}
    impl Sealed for super::MmapStorage {}
}

/// Where a [`CsrGraph`]'s flat arrays live. Sealed: exactly the owned
/// (`Vec<u32>`), borrowed (`&[u32]`) and mmap-backed ([`MmapStorage`])
/// storages are supported, so downstream code can match on behavior instead
/// of chasing an open-ended abstraction.
pub trait CsrStorage: sealed::Sealed {
    /// The stored words as a slice (no allocation, no copy).
    fn as_u32s(&self) -> &[u32];
}

impl CsrStorage for Vec<u32> {
    #[inline]
    fn as_u32s(&self) -> &[u32] {
        self
    }
}

impl CsrStorage for &[u32] {
    #[inline]
    fn as_u32s(&self) -> &[u32] {
        self
    }
}

/// The shared backing of a memory-mapped [`CsrGraph`]: either the live
/// kernel mapping viewed in place (little-endian hosts — the demand-paged
/// path, where a word is only faulted in when an algorithm touches it) or a
/// heap buffer decoded once at load time (big-endian / misaligned fallback).
enum WordBuf {
    /// The mapping itself; payload words are reinterpreted zero-copy via
    /// [`memmap2::as_u32s_le`] (alignment/endianness proven at load time).
    Mapped(memmap2::Mmap),
    /// Owned decode of the payload (every page already touched).
    Decoded(Vec<u32>),
}

impl WordBuf {
    #[inline]
    fn words(&self) -> &[u32] {
        match self {
            // The alignment/endianness check passed at load time and the
            // mapping is immutable, so it cannot start failing now.
            WordBuf::Mapped(map) => memmap2::as_u32s_le(&map[HEADER_BYTES..])
                .expect("mapped CSR payload was validated u32-viewable at load"),
            WordBuf::Decoded(words) => words,
        }
    }
}

/// One array of a memory-mapped [`CsrGraph`]: a word range of the shared
/// payload backing. Clones share the backing, so a batch of workers
/// decomposing the same on-disk graph hold one mapping between them — and on
/// the demand-paged path ([`MmapCsr::is_demand_paged`]) the kernel only
/// makes resident the pages their scans actually touch.
#[derive(Clone)]
pub struct MmapStorage {
    buf: Arc<WordBuf>,
    start: usize,
    len: usize,
}

impl CsrStorage for MmapStorage {
    #[inline]
    fn as_u32s(&self) -> &[u32] {
        &self.buf.words()[self.start..self.start + self.len]
    }
}

impl std::fmt::Debug for MmapStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapStorage")
            .field("start", &self.start)
            .field("len", &self.len)
            .field("demand_paged", &matches!(&*self.buf, WordBuf::Mapped(_)))
            .finish()
    }
}

/// Magic number opening every on-disk CSR file (`b"FGCSR\0v1"` as LE `u64`).
pub(crate) const FORMAT_MAGIC: u64 = u64::from_le_bytes(*b"FGCSR\0v1");

/// Current version of the on-disk CSR format.
pub const FORMAT_VERSION: u64 = 1;

/// Size of the on-disk header: magic, version, `n`, `m`, all `u64` LE.
pub(crate) const HEADER_BYTES: usize = 32;

/// A frozen-topology compressed-sparse-row graph over storage `S`
/// (see the [module docs](self) for the storage menu).
///
/// ```
/// use forest_graph::{CsrGraph, GraphView, MultiGraph};
/// let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2), (0, 1)])?;
/// let csr = CsrGraph::from_multigraph(&g);
/// assert_eq!(csr.num_edges(), 3);
/// assert_eq!(csr.degree(1.into()), 3);
/// assert_eq!(csr.neighbor_slice(0.into()), &[1, 1]);
/// assert_eq!(csr.to_multigraph(), g);
/// // A zero-copy borrowed view runs the same algorithms unchanged.
/// let view = csr.view();
/// assert_eq!(view.degree(1.into()), 3);
/// # Ok::<(), forest_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph<S: CsrStorage = Vec<u32>> {
    /// `offsets[v]..offsets[v + 1]` is vertex `v`'s slice of the incidence
    /// arrays; length `n + 1`.
    offsets: S,
    /// Neighbor of each incidence slot; length `2m`.
    neighbors: S,
    /// Edge of each incidence slot; parallel to `neighbors`.
    edge_ids: S,
    /// Endpoints of each edge in insertion order, interleaved
    /// `(u_0, v_0, u_1, v_1, ...)`; length `2m`.
    endpoints: S,
}

/// A CSR graph owning its arrays (the default storage).
pub type OwnedCsr = CsrGraph<Vec<u32>>;

/// A zero-copy borrowed CSR view: what engines and shard workers consume.
pub type CsrRef<'a> = CsrGraph<&'a [u32]>;

/// A CSR graph whose arrays are backed by a memory-mapped file.
pub type MmapCsr = CsrGraph<MmapStorage>;

impl<S: CsrStorage + Copy> Copy for CsrGraph<S> {}

impl<S1: CsrStorage, S2: CsrStorage> PartialEq<CsrGraph<S2>> for CsrGraph<S1> {
    fn eq(&self, other: &CsrGraph<S2>) -> bool {
        self.offsets.as_u32s() == other.offsets.as_u32s()
            && self.neighbors.as_u32s() == other.neighbors.as_u32s()
            && self.edge_ids.as_u32s() == other.edge_ids.as_u32s()
            && self.endpoints.as_u32s() == other.endpoints.as_u32s()
    }
}

impl<S: CsrStorage> Eq for CsrGraph<S> {}

impl OwnedCsr {
    /// Freezes any [`GraphView`] into CSR form, preserving the view's
    /// per-vertex incidence order. `O(n + m)`.
    pub fn from_view<G: GraphView>(g: &G) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * m);
        let mut edge_ids = Vec::with_capacity(2 * m);
        offsets.push(0);
        for v in g.vertices() {
            for (u, e) in g.incidences(v) {
                neighbors.push(u.raw());
                edge_ids.push(e.raw());
            }
            assert!(
                neighbors.len() <= u32::MAX as usize,
                "CSR incidence count exceeds u32 (graph too large for 32-bit offsets)"
            );
            offsets.push(u32_of(neighbors.len()));
        }
        let mut endpoints = Vec::with_capacity(2 * m);
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            endpoints.push(u.raw());
            endpoints.push(v.raw());
        }
        CsrGraph {
            offsets,
            neighbors,
            edge_ids,
            endpoints,
        }
    }

    /// Freezes a [`MultiGraph`]. Equivalent to [`CsrGraph::from_view`]; kept
    /// as the named conversion the rest of the workspace uses.
    pub fn from_multigraph(g: &MultiGraph) -> Self {
        Self::from_view(g)
    }

    /// Assembles a CSR directly from pre-built arrays (the shard splitter's
    /// zero-intermediate construction path). The caller guarantees the same
    /// layout [`CsrGraph::from_view`] would produce; debug builds verify the
    /// structural invariants.
    pub(crate) fn from_raw_parts(
        offsets: Vec<u32>,
        neighbors: Vec<u32>,
        edge_ids: Vec<u32>,
        endpoints: Vec<u32>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        debug_assert_eq!(neighbors.len(), edge_ids.len());
        debug_assert_eq!(neighbors.len(), endpoints.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrGraph {
            offsets,
            neighbors,
            edge_ids,
            endpoints,
        }
    }

    /// Decodes a graph from the on-disk byte format (see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] for a bad magic/version,
    /// truncated payload, or structurally invalid arrays.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<OwnedCsr> {
        let (n, m) = parse_header(bytes)?;
        let words: Vec<u32> = bytes[HEADER_BYTES..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let bounds = SectionBounds::new(n, m);
        let csr = CsrGraph {
            offsets: words[bounds.offsets.clone()].to_vec(),
            neighbors: words[bounds.neighbors.clone()].to_vec(),
            edge_ids: words[bounds.edge_ids.clone()].to_vec(),
            endpoints: words[bounds.endpoints.clone()].to_vec(),
        };
        validate_structure(&csr)?;
        Ok(csr)
    }
}

impl MmapCsr {
    /// Maps the on-disk CSR file at `path`, yielding a graph whose four
    /// arrays are word ranges of one shared mapping (clones share it).
    ///
    /// **Demand-paged**: on little-endian 64-bit unix the payload is viewed
    /// in place over the live `mmap(2)` region, so loading a file far larger
    /// than physical memory is O(touched pages) — only the header and the
    /// `offsets` array (validated here, and needed by any algorithm's first
    /// step anyway) are faulted in; the `6m` incidence/endpoint words stay
    /// on disk until a scan reaches them. The trade-off is that per-word
    /// range checks on those arrays are deferred: a corrupted neighbor or
    /// endpoint value surfaces as an index panic at use, not as an error
    /// here. Call [`MmapCsr::load_mmap_validated`] to restore the eager full
    /// structural scan of earlier versions (touching every page).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns [`io::ErrorKind::InvalidData`] for a
    /// bad magic/version, truncated payload, or an invalid `offsets` array.
    pub fn load_mmap<P: AsRef<Path>>(path: P) -> io::Result<MmapCsr> {
        let file = File::open(path)?;
        let map = memmap2::Mmap::map(&file)?;
        let (n, m) = parse_header(&map)?;
        // Zero-copy u32 view when the host matches the on-disk LE layout
        // (the mmap base is page-aligned and the 32-byte header keeps the
        // payload 4-byte aligned); otherwise decode once into a heap buffer
        // — the portable path, which necessarily touches every page.
        let buf = if memmap2::as_u32s_le(&map[HEADER_BYTES..]).is_some() {
            Arc::new(WordBuf::Mapped(map))
        } else {
            Arc::new(WordBuf::Decoded(
                map[HEADER_BYTES..]
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ))
        };
        let bounds = SectionBounds::new(n, m);
        let segment = |range: std::ops::Range<usize>| MmapStorage {
            buf: Arc::clone(&buf),
            start: range.start,
            len: range.len(),
        };
        let csr = CsrGraph {
            offsets: segment(bounds.offsets.clone()),
            neighbors: segment(bounds.neighbors.clone()),
            edge_ids: segment(bounds.edge_ids.clone()),
            endpoints: segment(bounds.endpoints.clone()),
        };
        validate_offsets_section(csr.offsets.as_u32s(), 2 * m)?;
        Ok(csr)
    }

    /// [`MmapCsr::load_mmap`] followed by the full structural scan of every
    /// array (neighbors, edge ids, endpoints in range) — the pre-demand-
    /// paging behavior. Touches every page of the file; use it when the
    /// input is untrusted and the graph fits the page cache comfortably.
    ///
    /// # Errors
    ///
    /// Everything [`MmapCsr::load_mmap`] returns, plus
    /// [`io::ErrorKind::InvalidData`] for any out-of-range array word.
    pub fn load_mmap_validated<P: AsRef<Path>>(path: P) -> io::Result<MmapCsr> {
        let csr = Self::load_mmap(path)?;
        validate_structure(&csr)?;
        Ok(csr)
    }

    /// `true` when the arrays are served straight from the kernel mapping
    /// (pages faulted in lazily), `false` on the eager-decode fallback.
    pub fn is_demand_paged(&self) -> bool {
        matches!(&*self.offsets.buf, WordBuf::Mapped(map) if map.is_demand_paged())
    }
}

/// Word ranges of the four array sections inside the payload.
struct SectionBounds {
    offsets: std::ops::Range<usize>,
    neighbors: std::ops::Range<usize>,
    edge_ids: std::ops::Range<usize>,
    endpoints: std::ops::Range<usize>,
}

impl SectionBounds {
    fn new(n: usize, m: usize) -> Self {
        let o = n + 1;
        let s = 2 * m;
        SectionBounds {
            offsets: 0..o,
            neighbors: o..o + s,
            edge_ids: o + s..o + 2 * s,
            endpoints: o + 2 * s..o + 3 * s,
        }
    }

    /// Total payload words for an `(n, m)` graph, or `None` on overflow
    /// (a crafted header must not panic the decoder).
    fn total_words_checked(n: u64, m: u64) -> Option<u64> {
        let vertices = n.checked_add(1)?;
        let incidences = m.checked_mul(6)?;
        vertices.checked_add(incidences)
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Validates the 32-byte header and the payload length, returning `(n, m)`.
fn parse_header(bytes: &[u8]) -> io::Result<(usize, usize)> {
    if bytes.len() < HEADER_BYTES {
        return Err(invalid(format!(
            "CSR file too short for header: {} bytes",
            bytes.len()
        )));
    }
    let word64 = |i: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[8 * i..8 * (i + 1)]);
        u64::from_le_bytes(b)
    };
    if word64(0) != FORMAT_MAGIC {
        return Err(invalid("not a forest-graph CSR file (bad magic)"));
    }
    let version = word64(1);
    if version != FORMAT_VERSION {
        return Err(invalid(format!(
            "unsupported CSR format version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    let n = word64(2);
    let m = word64(3);
    // Checked arithmetic end to end: header sizes are untrusted input, and a
    // crafted n/m must yield InvalidData, not an overflow panic or a
    // wrapped length that slices out of range.
    let expected = SectionBounds::total_words_checked(n, m)
        .and_then(|words| words.checked_mul(4))
        .and_then(|payload| payload.checked_add(HEADER_BYTES as u64))
        .filter(|&total| total == bytes.len() as u64);
    if expected.is_none() {
        return Err(invalid(format!(
            "CSR payload length mismatch: header says n = {n}, m = {m} but the file has {} bytes",
            bytes.len()
        )));
    }
    Ok((n as usize, m as usize))
}

/// Checks the `offsets` array alone: starts at 0, non-decreasing, ends at
/// the incidence count. This is the portion of the structural validation the
/// demand-paged loader runs eagerly — it touches only the front of the file
/// and is what keeps `incidence_range` slicing in bounds.
fn validate_offsets_section(offsets: &[u32], incidences: usize) -> io::Result<()> {
    if offsets.is_empty() || offsets[0] != 0 {
        return Err(invalid("CSR offsets must start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid("CSR offsets must be non-decreasing"));
    }
    if offsets[offsets.len() - 1] as usize != incidences {
        return Err(invalid("CSR offsets must end at the incidence count"));
    }
    Ok(())
}

/// Checks the structural invariants a decoded CSR must satisfy before any
/// algorithm indexes into it.
fn validate_structure<S: CsrStorage>(csr: &CsrGraph<S>) -> io::Result<()> {
    let offsets = csr.offsets.as_u32s();
    let neighbors = csr.neighbors.as_u32s();
    let edge_ids = csr.edge_ids.as_u32s();
    let endpoints = csr.endpoints.as_u32s();
    let n = offsets.len().saturating_sub(1);
    let m = endpoints.len() / 2;
    validate_offsets_section(offsets, neighbors.len())?;
    if neighbors.iter().any(|&v| v as usize >= n) {
        return Err(invalid("CSR neighbor out of vertex range"));
    }
    if edge_ids.iter().any(|&e| e as usize >= m) {
        return Err(invalid("CSR edge id out of edge range"));
    }
    if endpoints.iter().any(|&v| v as usize >= n) {
        return Err(invalid("CSR endpoint out of vertex range"));
    }
    Ok(())
}

impl<S: CsrStorage> CsrGraph<S> {
    /// A zero-copy borrowed view of this graph: the type every engine and
    /// shard worker consumes, erasing where the arrays live.
    #[inline]
    pub fn view(&self) -> CsrRef<'_> {
        CsrGraph {
            offsets: self.offsets.as_u32s(),
            neighbors: self.neighbors.as_u32s(),
            edge_ids: self.edge_ids.as_u32s(),
            endpoints: self.endpoints.as_u32s(),
        }
    }

    /// Copies the arrays into owned storage (a memcpy, not a re-freeze):
    /// how a borrowed shard view or an mmap-backed graph is detached from
    /// its backing storage.
    pub fn to_owned_storage(&self) -> OwnedCsr {
        CsrGraph {
            offsets: self.offsets.as_u32s().to_vec(),
            neighbors: self.neighbors.as_u32s().to_vec(),
            edge_ids: self.edge_ids.as_u32s().to_vec(),
            endpoints: self.endpoints.as_u32s().to_vec(),
        }
    }

    /// Thaws back into a [`MultiGraph`] (edges re-added in id order).
    ///
    /// Round-trips exactly: `CsrGraph::from_multigraph(&g).to_multigraph()`
    /// equals `g`, because `MultiGraph` incidence order is ascending edge id
    /// by construction.
    pub fn to_multigraph(&self) -> MultiGraph {
        let endpoints = self.endpoints.as_u32s();
        MultiGraph::with_edges(
            self.num_vertices(),
            endpoints
                .chunks_exact(2)
                .map(|uv| (VertexId::new(uv[0] as usize), VertexId::new(uv[1] as usize))),
        )
        .expect("CSR endpoints are valid by construction")
    }

    /// The raw interleaved endpoints array (`u_0, v_0, u_1, v_1, ...`):
    /// the shard splitter's allocation-free edge scan.
    pub(crate) fn endpoint_words(&self) -> &[u32] {
        self.endpoints.as_u32s()
    }

    /// The contiguous range of incidence-slot indices belonging to `v`.
    #[inline]
    pub fn incidence_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let offsets = self.offsets.as_u32s();
        offsets[v.index()] as usize..offsets[v.index() + 1] as usize
    }

    /// The neighbors of `v` as a raw `u32` slice (with multiplicity,
    /// incidence order) — the SIMD-friendly view of the adjacency.
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[u32] {
        &self.neighbors.as_u32s()[self.incidence_range(v)]
    }

    /// The incident edges of `v` as a raw `u32` slice (incidence order).
    #[inline]
    pub fn edge_slice(&self, v: VertexId) -> &[u32] {
        &self.edge_ids.as_u32s()[self.incidence_range(v)]
    }

    /// Total number of incidence slots, i.e. `2m`.
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.neighbors.as_u32s().len()
    }

    /// The neighbor stored at incidence slot `slot`.
    #[inline]
    pub fn slot_neighbor(&self, slot: usize) -> VertexId {
        VertexId::new(self.neighbors.as_u32s()[slot] as usize)
    }

    /// The edge stored at incidence slot `slot`.
    #[inline]
    pub fn slot_edge(&self, slot: usize) -> EdgeId {
        EdgeId::new(self.edge_ids.as_u32s()[slot] as usize)
    }

    /// For every incidence slot, the slot of the *same edge* at the other
    /// endpoint: a permutation of `0..2m` that message-passing simulators use
    /// to exchange per-edge messages without any per-vertex allocation.
    pub fn mirror_slots(&self) -> Vec<u32> {
        let edge_ids = self.edge_ids.as_u32s();
        let slots = edge_ids.len();
        // First slot seen for each edge, then matched by its partner.
        let mut first = vec![u32::MAX; self.num_edges()];
        let mut mirror = vec![0u32; slots];
        for (slot, &e) in edge_ids.iter().enumerate() {
            let other = &mut first[e as usize];
            if *other == u32::MAX {
                *other = u32_of(slot);
            } else {
                mirror[slot] = *other;
                mirror[*other as usize] = u32_of(slot);
            }
        }
        mirror
    }

    /// Encodes the graph in the versioned on-disk byte format (see the
    /// [module docs](self)). Identical graphs produce identical bytes
    /// regardless of storage, so save → load → save round-trips exactly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_vertices() as u64;
        let m = self.num_edges() as u64;
        let sections = [
            self.offsets.as_u32s(),
            self.neighbors.as_u32s(),
            self.edge_ids.as_u32s(),
            self.endpoints.as_u32s(),
        ];
        let words: usize = sections.iter().map(|s| s.len()).sum();
        let mut bytes = Vec::with_capacity(HEADER_BYTES + 4 * words);
        for header_word in [FORMAT_MAGIC, FORMAT_VERSION, n, m] {
            bytes.extend_from_slice(&header_word.to_le_bytes());
        }
        for section in sections {
            for &w in section {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
        }
        bytes
    }

    /// Writes the on-disk format to `path` (atomically enough for tests:
    /// a single `write_all`).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(&self.to_bytes())
    }
}

impl Default for OwnedCsr {
    /// The frozen empty graph (0 vertices, 0 edges). A manual impl because
    /// the `offsets` invariant (`offsets.len() == n + 1`, starting at 0)
    /// must hold even for the default value.
    fn default() -> Self {
        CsrGraph {
            offsets: vec![0],
            neighbors: Vec::new(),
            edge_ids: Vec::new(),
            endpoints: Vec::new(),
        }
    }
}

impl From<&MultiGraph> for OwnedCsr {
    fn from(g: &MultiGraph) -> Self {
        CsrGraph::from_multigraph(g)
    }
}

impl<S: CsrStorage> GraphView for CsrGraph<S> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.as_u32s().len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.endpoints.as_u32s().len() / 2
    }

    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let endpoints = self.endpoints.as_u32s();
        (
            VertexId::new(endpoints[2 * e.index()] as usize),
            VertexId::new(endpoints[2 * e.index() + 1] as usize),
        )
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let offsets = self.offsets.as_u32s();
        (offsets[v.index() + 1] - offsets[v.index()]) as usize
    }

    #[inline]
    fn incidences(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let range = self.incidence_range(v);
        self.neighbors.as_u32s()[range.clone()]
            .iter()
            .zip(self.edge_ids.as_u32s()[range].iter())
            .map(|(&u, &e)| (VertexId::new(u as usize), EdgeId::new(e as usize)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("forest-graph-csr-{tag}-{}.csr", std::process::id()))
    }

    #[test]
    fn freeze_preserves_counts_and_order() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (0, 1), (3, 4), (2, 0)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.num_incidences(), 10);
        for x in g.vertices() {
            assert_eq!(csr.degree(x), g.degree(x));
            let mg: Vec<_> = g.incidences(x).collect();
            let cs: Vec<_> = csr.incidences(x).collect();
            assert_eq!(mg, cs);
            assert_eq!(csr.neighbor_slice(x).len(), csr.degree(x));
            assert_eq!(csr.edge_slice(x).len(), csr.degree(x));
        }
        for e in g.edge_ids() {
            assert_eq!(csr.endpoints(e), g.endpoints(e));
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let g = MultiGraph::from_pairs(6, &[(0, 1), (2, 3), (0, 1), (4, 5), (1, 4)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(csr.to_multigraph(), g);
        // Freezing the thawed graph gives back the same CSR.
        assert_eq!(CsrGraph::from_multigraph(&csr.to_multigraph()), csr);
    }

    #[test]
    fn roundtrip_of_empty_and_isolated() {
        let g = MultiGraph::new(4);
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.to_multigraph(), g);
        let empty = CsrGraph::from_multigraph(&MultiGraph::new(0));
        assert_eq!(empty.num_vertices(), 0);
    }

    #[test]
    fn mirror_slots_pair_up_edges() {
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (0, 1), (2, 3)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let mirror = csr.mirror_slots();
        assert_eq!(mirror.len(), csr.num_incidences());
        for slot in 0..csr.num_incidences() {
            let other = mirror[slot] as usize;
            assert_ne!(slot, other);
            assert_eq!(mirror[other] as usize, slot, "mirror is an involution");
            assert_eq!(csr.slot_edge(slot), csr.slot_edge(other));
        }
    }

    #[test]
    fn default_is_the_valid_empty_graph() {
        let d = OwnedCsr::default();
        assert_eq!(d.num_vertices(), 0);
        assert_eq!(d.num_edges(), 0);
        assert!(d.vertices().next().is_none());
        assert_eq!(d, CsrGraph::from_multigraph(&MultiGraph::new(0)));
    }

    #[test]
    fn from_view_accepts_csr_itself() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(CsrGraph::from_view(&csr), csr);
    }

    #[test]
    fn slot_accessors_match_slices() {
        let g = MultiGraph::from_pairs(3, &[(0, 2), (2, 1)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let r = csr.incidence_range(v(2));
        assert_eq!(r.len(), 2);
        for slot in r {
            assert!(csr
                .neighbor_slice(v(2))
                .contains(&csr.slot_neighbor(slot).raw()));
            assert!(csr.edge_slice(v(2)).contains(&csr.slot_edge(slot).raw()));
        }
    }

    #[test]
    fn borrowed_view_is_equal_and_copy() {
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let view = csr.view();
        let copy = view; // CsrRef is Copy
        assert_eq!(view, csr);
        assert_eq!(copy.to_multigraph(), g);
        assert_eq!(copy.mirror_slots(), csr.mirror_slots());
        for x in g.vertices() {
            let a: Vec<_> = csr.incidences(x).collect();
            let b: Vec<_> = view.incidences(x).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn byte_format_roundtrips_exactly() {
        let g = MultiGraph::from_pairs(6, &[(0, 1), (2, 3), (0, 1), (4, 5), (1, 4)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let bytes = csr.to_bytes();
        let back = OwnedCsr::from_bytes(&bytes).unwrap();
        assert_eq!(back, csr);
        assert_eq!(
            back.to_bytes(),
            bytes,
            "save -> load -> save is byte-identical"
        );
    }

    #[test]
    fn mmap_load_shares_one_buffer_and_matches_owned() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (3, 4), (2, 3), (0, 4)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let path = temp_path("share");
        csr.save(&path).unwrap();
        let mapped = MmapCsr::load_mmap(&path).unwrap();
        assert_eq!(mapped, csr);
        assert_eq!(mapped.to_multigraph(), g);
        assert_eq!(mapped.to_bytes(), csr.to_bytes());
        let clone = mapped.clone();
        assert_eq!(clone, mapped);
        // The GraphView surface works straight off the mapped storage.
        assert_eq!(GraphView::max_degree(&mapped), GraphView::max_degree(&g));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_graph_survives_the_format() {
        let csr = OwnedCsr::default();
        let path = temp_path("empty");
        csr.save(&path).unwrap();
        let mapped = MmapCsr::load_mmap(&path).unwrap();
        assert_eq!(mapped.num_vertices(), 0);
        assert_eq!(mapped.num_edges(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn format_rejects_garbage() {
        assert!(OwnedCsr::from_bytes(b"short").is_err());
        // Right length, wrong magic.
        let g = MultiGraph::from_pairs(2, &[(0, 1)]).unwrap();
        let mut bytes = CsrGraph::from_multigraph(&g).to_bytes();
        bytes[0] ^= 0xFF;
        assert!(OwnedCsr::from_bytes(&bytes).is_err());
        // Wrong version.
        let mut bytes = CsrGraph::from_multigraph(&g).to_bytes();
        bytes[8] = 99;
        assert!(OwnedCsr::from_bytes(&bytes).is_err());
        // Truncated payload.
        let bytes = CsrGraph::from_multigraph(&g).to_bytes();
        assert!(OwnedCsr::from_bytes(&bytes[..bytes.len() - 4]).is_err());
        // Structurally broken: neighbor out of range.
        let mut bytes = CsrGraph::from_multigraph(&g).to_bytes();
        let neighbors_start = HEADER_BYTES + 4 * 3; // offsets has n + 1 = 3 words
        bytes[neighbors_start] = 7;
        assert!(OwnedCsr::from_bytes(&bytes).is_err());
    }

    #[test]
    fn crafted_headers_cannot_panic_the_decoder() {
        // Valid magic/version but adversarial n/m: the size computation must
        // fail closed (InvalidData), never overflow or slice out of range.
        for (n, m) in [
            (u64::MAX, 0u64),
            (0, u64::MAX),
            (u64::MAX, u64::MAX),
            (u64::MAX / 4, u64::MAX / 24),
            (1 << 60, 1),
        ] {
            let mut bytes = Vec::new();
            for w in [FORMAT_MAGIC, FORMAT_VERSION, n, m] {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            let err = OwnedCsr::from_bytes(&bytes).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "n={n}, m={m}");
            // Same with a little padding, in case a wrapped size lands on it.
            bytes.extend_from_slice(&[0u8; 64]);
            assert!(OwnedCsr::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn to_owned_storage_detaches_views() {
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let detached = csr.view().to_owned_storage();
        assert_eq!(detached, csr);
        let path = temp_path("detach");
        csr.save(&path).unwrap();
        let mapped = MmapCsr::load_mmap(&path).unwrap();
        assert_eq!(mapped.to_owned_storage(), csr);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_mmap_is_demand_paged_and_defers_array_checks() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let mut bytes = CsrGraph::from_multigraph(&g).to_bytes();
        let path = temp_path("lazy");
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MmapCsr::load_mmap(&path).unwrap();
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(
            mapped.is_demand_paged(),
            "little-endian unix must serve the payload straight from the mapping"
        );
        assert_eq!(MmapCsr::load_mmap_validated(&path).unwrap(), mapped);
        // Corrupt a neighbor word: the lazy loader (header + offsets only)
        // accepts the file, the validated loader rejects it.
        let neighbors_start = HEADER_BYTES + 4 * 4; // offsets has n + 1 = 4 words
        bytes[neighbors_start] = 9;
        std::fs::write(&path, &bytes).unwrap();
        assert!(MmapCsr::load_mmap(&path).is_ok());
        let err = MmapCsr::load_mmap_validated(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A broken offsets array is caught even lazily.
        let mut broken_offsets = CsrGraph::from_multigraph(&g).to_bytes();
        broken_offsets[HEADER_BYTES] = 1; // offsets[0] != 0
        std::fs::write(&path, &broken_offsets).unwrap();
        assert!(MmapCsr::load_mmap(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_mmap_rejects_non_csr_files() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a csr file at all").unwrap();
        let err = MmapCsr::load_mmap(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
