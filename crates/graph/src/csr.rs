//! A frozen compressed-sparse-row graph: the cache-friendly topology every
//! decomposition pipeline runs on.
//!
//! [`CsrGraph`] stores the incidence structure of a
//! [`MultiGraph`](crate::MultiGraph) in three flat arrays (`offsets`,
//! `neighbors`, `edge_ids`): neighborhood iteration is a contiguous slice
//! scan instead of a pointer chase through per-vertex `Vec`s, degrees are
//! O(1) offset differences, and iteration order is fixed by construction.
//! The topology is *frozen* — there is no `add_edge` — which is exactly what
//! the Harris–Su–Vu algorithms need: they are round-synchronous scans over
//! static topology.
//!
//! # When to freeze
//!
//! Freeze once per request/run, not per phase: build the graph mutably as a
//! `MultiGraph`, convert with [`CsrGraph::from_multigraph`] at the boundary
//! where algorithms start (the `Decomposer` facade does this automatically),
//! and thread the `CsrGraph` through every phase. Conversion is `O(n + m)`
//! and preserves `MultiGraph`'s incidence order, so algorithm output is
//! identical on both representations.

use crate::ids::{EdgeId, VertexId};
use crate::multigraph::MultiGraph;
use crate::view::GraphView;

/// A frozen-topology compressed-sparse-row graph.
///
/// ```
/// use forest_graph::{CsrGraph, GraphView, MultiGraph};
/// let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2), (0, 1)])?;
/// let csr = CsrGraph::from_multigraph(&g);
/// assert_eq!(csr.num_edges(), 3);
/// assert_eq!(csr.degree(1.into()), 3);
/// assert_eq!(csr.neighbor_slice(0.into()), &[1.into(), 1.into()]);
/// assert_eq!(csr.to_multigraph(), g);
/// # Ok::<(), forest_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` is vertex `v`'s slice of the incidence
    /// arrays; length `n + 1`.
    offsets: Vec<u32>,
    /// Neighbor of each incidence slot; length `2m`.
    neighbors: Vec<VertexId>,
    /// Edge of each incidence slot; parallel to `neighbors`.
    edge_ids: Vec<EdgeId>,
    /// Endpoints of each edge in insertion order; length `m`.
    endpoints: Vec<(VertexId, VertexId)>,
}

impl CsrGraph {
    /// Freezes any [`GraphView`] into CSR form, preserving the view's
    /// per-vertex incidence order. `O(n + m)`.
    pub fn from_view<G: GraphView>(g: &G) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * m);
        let mut edge_ids = Vec::with_capacity(2 * m);
        offsets.push(0);
        for v in g.vertices() {
            for (u, e) in g.incidences(v) {
                neighbors.push(u);
                edge_ids.push(e);
            }
            assert!(
                neighbors.len() <= u32::MAX as usize,
                "CSR incidence count exceeds u32 (graph too large for 32-bit offsets)"
            );
            offsets.push(neighbors.len() as u32);
        }
        let endpoints = g.edge_ids().map(|e| g.endpoints(e)).collect();
        CsrGraph {
            offsets,
            neighbors,
            edge_ids,
            endpoints,
        }
    }

    /// Freezes a [`MultiGraph`]. Equivalent to [`CsrGraph::from_view`]; kept
    /// as the named conversion the rest of the workspace uses.
    pub fn from_multigraph(g: &MultiGraph) -> Self {
        Self::from_view(g)
    }

    /// Thaws back into a [`MultiGraph`] (edges re-added in id order).
    ///
    /// Round-trips exactly: `CsrGraph::from_multigraph(&g).to_multigraph()`
    /// equals `g`, because `MultiGraph` incidence order is ascending edge id
    /// by construction.
    pub fn to_multigraph(&self) -> MultiGraph {
        MultiGraph::with_edges(self.num_vertices(), self.endpoints.iter().copied())
            .expect("CSR endpoints are valid by construction")
    }

    /// The contiguous range of incidence-slot indices belonging to `v`.
    #[inline]
    pub fn incidence_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize
    }

    /// The neighbors of `v` as a slice (with multiplicity, incidence order).
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.incidence_range(v)]
    }

    /// The incident edges of `v` as a slice (incidence order).
    #[inline]
    pub fn edge_slice(&self, v: VertexId) -> &[EdgeId] {
        &self.edge_ids[self.incidence_range(v)]
    }

    /// Total number of incidence slots, i.e. `2m`.
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.neighbors.len()
    }

    /// The neighbor stored at incidence slot `slot`.
    #[inline]
    pub fn slot_neighbor(&self, slot: usize) -> VertexId {
        self.neighbors[slot]
    }

    /// The edge stored at incidence slot `slot`.
    #[inline]
    pub fn slot_edge(&self, slot: usize) -> EdgeId {
        self.edge_ids[slot]
    }

    /// For every incidence slot, the slot of the *same edge* at the other
    /// endpoint: a permutation of `0..2m` that message-passing simulators use
    /// to exchange per-edge messages without any per-vertex allocation.
    pub fn mirror_slots(&self) -> Vec<u32> {
        let slots = self.num_incidences();
        // First slot seen for each edge, then matched by its partner.
        let mut first = vec![u32::MAX; self.num_edges()];
        let mut mirror = vec![0u32; slots];
        for (slot, &e) in self.edge_ids.iter().enumerate() {
            let other = &mut first[e.index()];
            if *other == u32::MAX {
                *other = slot as u32;
            } else {
                mirror[slot] = *other;
                mirror[*other as usize] = slot as u32;
            }
        }
        mirror
    }
}

impl Default for CsrGraph {
    /// The frozen empty graph (0 vertices, 0 edges). A manual impl because
    /// the `offsets` invariant (`offsets.len() == n + 1`, starting at 0)
    /// must hold even for the default value.
    fn default() -> Self {
        CsrGraph {
            offsets: vec![0],
            neighbors: Vec::new(),
            edge_ids: Vec::new(),
            endpoints: Vec::new(),
        }
    }
}

impl From<&MultiGraph> for CsrGraph {
    fn from(g: &MultiGraph) -> Self {
        CsrGraph::from_multigraph(g)
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    #[inline]
    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e.index()]
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    #[inline]
    fn incidences(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let range = self.incidence_range(v);
        self.neighbors[range.clone()]
            .iter()
            .copied()
            .zip(self.edge_ids[range].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn freeze_preserves_counts_and_order() {
        let g = MultiGraph::from_pairs(5, &[(0, 1), (1, 2), (0, 1), (3, 4), (2, 0)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.num_incidences(), 10);
        for x in g.vertices() {
            assert_eq!(csr.degree(x), g.degree(x));
            let mg: Vec<_> = g.incidences(x).collect();
            let cs: Vec<_> = csr.incidences(x).collect();
            assert_eq!(mg, cs);
            assert_eq!(csr.neighbor_slice(x).len(), csr.degree(x));
            assert_eq!(csr.edge_slice(x).len(), csr.degree(x));
        }
        for e in g.edge_ids() {
            assert_eq!(csr.endpoints(e), g.endpoints(e));
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let g = MultiGraph::from_pairs(6, &[(0, 1), (2, 3), (0, 1), (4, 5), (1, 4)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(csr.to_multigraph(), g);
        // Freezing the thawed graph gives back the same CSR.
        assert_eq!(CsrGraph::from_multigraph(&csr.to_multigraph()), csr);
    }

    #[test]
    fn roundtrip_of_empty_and_isolated() {
        let g = MultiGraph::new(4);
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.to_multigraph(), g);
        let empty = CsrGraph::from_multigraph(&MultiGraph::new(0));
        assert_eq!(empty.num_vertices(), 0);
    }

    #[test]
    fn mirror_slots_pair_up_edges() {
        let g = MultiGraph::from_pairs(4, &[(0, 1), (1, 2), (0, 1), (2, 3)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let mirror = csr.mirror_slots();
        assert_eq!(mirror.len(), csr.num_incidences());
        for slot in 0..csr.num_incidences() {
            let other = mirror[slot] as usize;
            assert_ne!(slot, other);
            assert_eq!(mirror[other] as usize, slot, "mirror is an involution");
            assert_eq!(csr.slot_edge(slot), csr.slot_edge(other));
        }
    }

    #[test]
    fn default_is_the_valid_empty_graph() {
        let d = CsrGraph::default();
        assert_eq!(d.num_vertices(), 0);
        assert_eq!(d.num_edges(), 0);
        assert!(d.vertices().next().is_none());
        assert_eq!(d, CsrGraph::from_multigraph(&MultiGraph::new(0)));
    }

    #[test]
    fn from_view_accepts_csr_itself() {
        let g = MultiGraph::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        assert_eq!(CsrGraph::from_view(&csr), csr);
    }

    #[test]
    fn slot_accessors_match_slices() {
        let g = MultiGraph::from_pairs(3, &[(0, 2), (2, 1)]).unwrap();
        let csr = CsrGraph::from_multigraph(&g);
        let r = csr.incidence_range(v(2));
        assert_eq!(r.len(), 2);
        for slot in r {
            assert!(csr.neighbor_slice(v(2)).contains(&csr.slot_neighbor(slot)));
            assert!(csr.edge_slice(v(2)).contains(&csr.slot_edge(slot)));
        }
    }
}
