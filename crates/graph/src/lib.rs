//! Graph substrate for the Nash-Williams forest-decomposition workspace.
//!
//! This crate provides everything the distributed decomposition algorithms
//! (crate `forest-decomp`) and the LOCAL-model simulator (crate
//! `local-model`) need from a graph library, built from scratch:
//!
//! * [`MultiGraph`] / [`SimpleGraph`] — undirected (multi-)graph containers
//!   with dense [`VertexId`] / [`EdgeId`] identifiers.
//! * [`GraphView`] / [`CsrGraph`] — the read-only topology abstraction and
//!   its frozen compressed-sparse-row instantiation. Build mutably as a
//!   `MultiGraph`, freeze once with [`CsrGraph::from_multigraph`] at the
//!   point where algorithms start, and run every phase over the flat CSR
//!   arrays; conversion preserves incidence order, so outputs are identical
//!   on both representations. All traversal, orientation, density and
//!   validation helpers in this crate are generic over `GraphView`.
//! * [`decomposition`] — forest / star-forest decompositions and their
//!   validators, the central result types of the whole workspace.
//! * [`palette`] — per-edge color lists for list-forest decompositions.
//! * [`orientation`] — edge orientations and exact minimum-out-degree
//!   orientations (pseudo-arboricity).
//! * [`matroid`] — the exact centralized `α`-forest decomposition
//!   (Gabow–Westermann-style matroid partition), used as ground truth.
//! * [`density`] — exact densest subgraph and the Nash-Williams sparsity
//!   measures.
//! * [`generators`] — synthetic benchmark families (fat paths, planted
//!   arboricity graphs, `G(n,m)`, cliques, grids, hypercubes, ...).
//! * [`flow`], [`traversal`], [`union_find`] — supporting algorithms.
//!
//! # Quick example
//!
//! ```
//! use forest_graph::{generators, matroid, decomposition};
//!
//! // A multigraph with planted arboricity 3.
//! let mut rng = rand::thread_rng();
//! let g = generators::planted_forest_union(32, 3, &mut rng);
//! let exact = matroid::exact_forest_decomposition(&g);
//! assert!(exact.arboricity <= 3);
//! decomposition::validate_forest_decomposition(&g, &exact.decomposition, Some(exact.arboricity))
//!     .expect("matroid partition always returns a valid decomposition");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod csr;
pub mod decomposition;
pub mod density;
mod error;
pub mod flow;
pub mod generators;
mod ids;
pub mod matroid;
mod multigraph;
pub mod orientation;
pub mod palette;
pub mod traversal;
pub mod union_find;
mod view;

pub use csr::CsrGraph;
pub use decomposition::{DecompositionStats, ForestDecomposition, PartialEdgeColoring};
pub use error::{GraphError, ValidationError};
pub use flow::FlowNetwork;
pub use ids::{Color, EdgeId, VertexId};
pub use multigraph::{InducedSubgraph, MultiGraph, SimpleGraph};
pub use orientation::Orientation;
pub use palette::ListAssignment;
pub use union_find::UnionFind;
pub use view::GraphView;
