//! Graph substrate for the Nash-Williams forest-decomposition workspace.
//!
//! This crate provides everything the distributed decomposition algorithms
//! (crate `forest-decomp`) and the LOCAL-model simulator (crate
//! `local-model`) need from a graph library, built from scratch:
//!
//! * [`MultiGraph`] / [`SimpleGraph`] — undirected (multi-)graph containers
//!   with dense [`VertexId`] / [`EdgeId`] identifiers.
//! * [`GraphView`] / [`CsrGraph`] — the read-only topology abstraction and
//!   its frozen compressed-sparse-row instantiation, generic over storage
//!   via the sealed [`CsrStorage`] trait: [`OwnedCsr`] (heap `Vec<u32>`),
//!   [`CsrRef`] (zero-copy borrowed slices) and [`MmapCsr`] (arrays backed
//!   by a memory-mapped file in a versioned little-endian on-disk format —
//!   `save` / `load_mmap` round-trip byte-identically). Build mutably as a
//!   `MultiGraph`, freeze once with [`CsrGraph::from_multigraph`] at the
//!   point where algorithms start, and run every phase over the flat CSR
//!   arrays; conversion preserves incidence order, so outputs are identical
//!   on every representation. All traversal, orientation, density and
//!   validation helpers in this crate are generic over `GraphView`.
//! * [`CsrPartition`] — zero-copy sharding of one frozen graph: per-shard
//!   [`CsrRef`] views (local renumbering kept as two small index arrays)
//!   plus the explicit boundary-edge list shard-parallel decomposition
//!   stitches through. [`reorder`] supplies the locality-improving vertex
//!   orders (BFS / reverse Cuthill–McKee as [`VertexPermutation`]s) that
//!   [`CsrPartition::split_ordered`] cuts along when vertex ids are not
//!   already banded.
//! * [`dynamic`] — fully-dynamic connectivity for graphs that *mutate*:
//!   splay-backed Euler-tour trees ([`DynamicForest`]: `link` / `cut` /
//!   `connected` / `component_size` in amortized `O(log n)`) and the
//!   Holm–de Lichtenberg–Thorup level structure ([`DynamicConnectivity`]:
//!   `insert_edge` / `delete_edge` in amortized `O(log² n)`), plus
//!   [`DynamicGraph`] — a mutable adjacency container with stable edge ids
//!   implementing [`GraphView`] over its live edges, the substrate of
//!   streaming decomposition.
//! * [`connectivity`] — the per-color union-find cache (with optional edge
//!   filter and per-color [`rebuild_colors`](ColorConnectivity::rebuild_colors)
//!   invalidation) shared by the augmenting search, the matroid partition
//!   and shard-boundary stitching — and [`DynamicColorConnectivity`], its
//!   deletion-capable sibling riding each color class on the [`dynamic`]
//!   subsystem for exchange-heavy and streaming workloads.
//! * [`decomposition`] — forest / star-forest decompositions and their
//!   validators, the central result types of the whole workspace.
//! * [`palette`] — per-edge color lists for list-forest decompositions.
//! * [`orientation`] — edge orientations and exact minimum-out-degree
//!   orientations (pseudo-arboricity).
//! * [`matroid`] — the exact centralized `α`-forest decomposition
//!   (Gabow–Westermann-style matroid partition), used as ground truth.
//! * [`density`] — exact densest subgraph and the Nash-Williams sparsity
//!   measures.
//! * [`generators`] — synthetic benchmark families (fat paths, planted
//!   arboricity graphs, `G(n,m)`, cliques, grids, hypercubes, ...).
//! * [`extsort`] — out-of-core CSR construction: external-sorts a raw edge
//!   file into the versioned on-disk format under a hard memory ceiling,
//!   byte-identical to freezing through a `MultiGraph`, with a one-pass
//!   Nash-Williams degree/density watermark computed during the merge.
//! * [`kernels`] — branchless `chunks_exact` scan kernels over flat
//!   `u32`/`u8` arrays (max/histogram/masked-select), the epoch-stamped
//!   [`StampSet`](kernels::StampSet) behind the no-`O(n)`-clears scratch
//!   idiom of the ball-local cluster pipeline, and the composite scans
//!   built on it ([`gather_unique_sorted`](kernels::gather_unique_sorted)
//!   incidence-union merges,
//!   [`select_edges_masked`](kernels::select_edges_masked) mask-pair edge
//!   filters).
//! * [`flow`], [`traversal`], [`union_find`] — supporting algorithms.
//!
//! # Quick example
//!
//! ```
//! use forest_graph::{generators, matroid, decomposition};
//!
//! // A multigraph with planted arboricity 3.
//! let mut rng = rand::thread_rng();
//! let g = generators::planted_forest_union(32, 3, &mut rng);
//! let exact = matroid::exact_forest_decomposition(&g);
//! assert!(exact.arboricity <= 3);
//! decomposition::validate_forest_decomposition(&g, &exact.decomposition, Some(exact.arboricity))
//!     .expect("matroid partition always returns a valid decomposition");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod connectivity;
mod csr;
pub mod decomposition;
pub mod density;
pub mod dynamic;
mod error;
pub mod extsort;
pub mod flow;
pub mod generators;
mod ids;
pub mod kernels;
pub mod matroid;
mod multigraph;
pub mod orientation;
pub mod palette;
mod partition;
pub mod reorder;
pub mod traversal;
pub mod union_find;
mod view;

pub use connectivity::{ColorConnectivity, DynamicColorConnectivity};
pub use csr::{CsrGraph, CsrRef, CsrStorage, MmapCsr, MmapStorage, OwnedCsr};
pub use decomposition::{DecompositionStats, ForestDecomposition, PartialEdgeColoring};
pub use dynamic::{DynamicConnectivity, DynamicForest, DynamicGraph, EdgeIdRemap};
pub use error::{GraphError, ValidationError};
pub use flow::FlowNetwork;
pub use ids::{u32_of, Color, EdgeId, VertexId};
pub use multigraph::{edge_subgraph, InducedSubgraph, MultiGraph, SimpleGraph};
pub use orientation::Orientation;
pub use palette::ListAssignment;
pub use partition::{CsrPartition, ExtractedShard, ShardPlan};
pub use reorder::{ReorderKind, VertexPermutation};
pub use union_find::UnionFind;
pub use view::GraphView;
