//! A faithful synchronous message-passing simulator for the LOCAL model.
//!
//! Each vertex of the communication graph holds a private state and, in each
//! round, (1) computes one message per incident edge from its state, (2) the
//! messages are exchanged along the edges, and (3) each vertex updates its
//! state from the received messages. Message size is unbounded, exactly as in
//! the LOCAL model. The simulator counts rounds; algorithms that are simple
//! enough to express vertex-by-vertex (H-partition, Cole–Vishkin, the random
//! coin phases) run on this engine, which keeps their round counts honest
//! rather than formula-derived.
//!
//! # Topology and message plumbing
//!
//! The network freezes its communication graph into a [`CsrGraph`] at
//! construction. Messages live in one flat array with a slot per directed
//! incidence (`2m` slots total): composing writes slot-by-slot in CSR order
//! and delivery is a fixed permutation of that array
//! ([`CsrGraph::mirror_slots`]), so a round performs zero per-vertex
//! allocations. [`SyncNetwork::round_parallel`] runs the same compose and
//! update functions fanned across all cores; because both phases are pure
//! per-vertex functions evaluated in the same slot order, its results are
//! bit-identical to the sequential [`SyncNetwork::round`].

use forest_graph::{u32_of, CsrGraph, CsrStorage, EdgeId, GraphView, VertexId};
use rayon::prelude::*;

/// Identifier material available to a vertex: its id and a globally unique
/// `O(log n)`-bit label (here simply the vertex index, as permitted by the
/// model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// The vertex this node lives on.
    pub vertex: VertexId,
    /// Unique identifier (index-based).
    pub unique_id: u64,
    /// Degree of the vertex in the communication graph.
    pub degree: usize,
}

/// A synchronous network simulator over a frozen [`CsrGraph`] topology.
///
/// `S` is the per-node state; `St` is where the frozen topology's arrays
/// live ([`CsrStorage`]: owned by default, but a borrowed shard view or an
/// mmap-backed graph freezes just as well via [`SyncNetwork::from_csr`]).
/// The caller drives the simulation with [`SyncNetwork::round`] (or
/// [`SyncNetwork::round_parallel`]); the number of executed rounds is
/// available from [`SyncNetwork::rounds_executed`].
#[derive(Debug)]
pub struct SyncNetwork<S, St: CsrStorage = Vec<u32>> {
    csr: CsrGraph<St>,
    /// Delivery permutation: slot `i` (sender side) lands in slot
    /// `mirror[i]` (receiver side).
    mirror: Vec<u32>,
    states: Vec<S>,
    rounds: usize,
}

impl<S> SyncNetwork<S> {
    /// Creates a network over any graph view, freezing the topology to an
    /// owned CSR; each vertex state is produced by `init`.
    pub fn new<G, F>(graph: &G, init: F) -> Self
    where
        G: GraphView,
        F: FnMut(NodeInfo) -> S,
    {
        Self::from_csr(CsrGraph::from_view(graph), init)
    }
}

impl<S, St: CsrStorage> SyncNetwork<S, St> {
    /// Creates a network over an already-frozen topology on any storage
    /// (owned, borrowed shard view, or mmap-backed).
    pub fn from_csr<F>(csr: CsrGraph<St>, mut init: F) -> Self
    where
        F: FnMut(NodeInfo) -> S,
    {
        let states = csr
            .vertices()
            .map(|v| {
                init(NodeInfo {
                    vertex: v,
                    unique_id: v.index() as u64,
                    degree: csr.degree(v),
                })
            })
            .collect();
        let mirror = csr.mirror_slots();
        SyncNetwork {
            csr,
            mirror,
            states,
            rounds: 0,
        }
    }

    /// The frozen communication topology.
    pub fn graph(&self) -> &CsrGraph<St> {
        &self.csr
    }

    /// Read-only access to every node state.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Read-only access to one node state.
    pub fn state(&self, v: VertexId) -> &S {
        &self.states[v.index()]
    }

    /// Number of synchronous rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.rounds
    }

    /// Executes one synchronous round.
    ///
    /// * `compose` is called once per (vertex, incident edge), in CSR slot
    ///   order, and produces the message sent along that edge by that vertex.
    /// * `update` is called once per vertex with all messages received this
    ///   round as `(edge, neighbor, message)` triples, ordered by the
    ///   receiver's own incidence order, and mutates the state.
    pub fn round<M, FCompose, FUpdate>(&mut self, mut compose: FCompose, mut update: FUpdate)
    where
        FCompose: FnMut(VertexId, &S, EdgeId, VertexId) -> M,
        FUpdate: FnMut(VertexId, &mut S, &[(EdgeId, VertexId, M)]),
    {
        // Compose all messages from the snapshot of current states into one
        // flat slot-indexed outbox.
        let slots = self.csr.num_incidences();
        let mut outbox: Vec<Option<M>> = Vec::with_capacity(slots);
        for v in self.csr.vertices() {
            let state = &self.states[v.index()];
            for (neighbor, edge) in self.csr.incidences(v) {
                outbox.push(Some(compose(v, state, edge, neighbor)));
            }
        }
        // Deliver and update, reusing one inbox buffer across vertices.
        let mut inbox: Vec<(EdgeId, VertexId, M)> = Vec::new();
        for v in self.csr.vertices() {
            inbox.clear();
            for slot in self.csr.incidence_range(v) {
                let msg = outbox[self.mirror[slot] as usize]
                    .take()
                    .expect("each slot is delivered exactly once");
                inbox.push((self.csr.slot_edge(slot), self.csr.slot_neighbor(slot), msg));
            }
            update(v, &mut self.states[v.index()], &inbox);
        }
        self.rounds += 1;
    }

    /// Executes one synchronous round with compose and update fanned across
    /// all cores.
    ///
    /// Requires pure (`Fn`) closures and clonable messages/states; under
    /// those constraints the result is **bit-identical** to
    /// [`SyncNetwork::round`] with the same closures, because both phases
    /// evaluate the same per-vertex functions against the same state
    /// snapshot in the same slot order — parallelism only changes *who*
    /// computes each slot, never its value.
    pub fn round_parallel<M, FCompose, FUpdate>(&mut self, compose: FCompose, update: FUpdate)
    where
        S: Clone + Send + Sync,
        St: Sync,
        M: Clone + Send + Sync,
        FCompose: Fn(VertexId, &S, EdgeId, VertexId) -> M + Sync,
        FUpdate: Fn(VertexId, &mut S, &[(EdgeId, VertexId, M)]) + Sync,
    {
        let ids: Vec<u32> = (0..u32_of(self.csr.num_vertices())).collect();
        let csr = &self.csr;
        let states = &self.states;
        // Phase 1: all outgoing messages, one Vec per vertex in slot order.
        let per_vertex: Vec<Vec<M>> = ids
            .par_iter()
            .map(|&v| {
                let v = VertexId::new(v as usize);
                let state = &states[v.index()];
                csr.incidences(v)
                    .map(|(neighbor, edge)| compose(v, state, edge, neighbor))
                    .collect()
            })
            .collect();
        // Exchange: flatten to the slot-indexed outbox (cheap, O(2m)).
        let outbox: Vec<M> = per_vertex.into_iter().flatten().collect();
        let mirror = &self.mirror;
        // Phase 2: every vertex updates from its delivered slice.
        let new_states: Vec<S> = ids
            .par_iter()
            .map(|&v| {
                let v = VertexId::new(v as usize);
                let inbox: Vec<(EdgeId, VertexId, M)> = csr
                    .incidence_range(v)
                    .map(|slot| {
                        (
                            csr.slot_edge(slot),
                            csr.slot_neighbor(slot),
                            outbox[mirror[slot] as usize].clone(),
                        )
                    })
                    .collect();
                let mut state = states[v.index()].clone();
                update(v, &mut state, &inbox);
                state
            })
            .collect();
        self.states = new_states;
        self.rounds += 1;
    }

    /// Runs rounds until `done` returns true for every state or `max_rounds`
    /// is reached; returns the number of rounds executed in this call.
    pub fn run_until<M, FCompose, FUpdate, FDone>(
        &mut self,
        max_rounds: usize,
        mut compose: FCompose,
        mut update: FUpdate,
        mut done: FDone,
    ) -> usize
    where
        FCompose: FnMut(VertexId, &S, EdgeId, VertexId) -> M,
        FUpdate: FnMut(VertexId, &mut S, &[(EdgeId, VertexId, M)]),
        FDone: FnMut(&S) -> bool,
    {
        let start = self.rounds;
        for _ in 0..max_rounds {
            if self.states.iter().all(&mut done) {
                break;
            }
            self.round(&mut compose, &mut update);
        }
        self.rounds - start
    }

    /// Consumes the network and returns the final states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn node_info_carries_degrees() {
        let g = generators::star(4);
        let net = SyncNetwork::new(&g, |info| info.degree);
        assert_eq!(*net.state(VertexId::new(0)), 4);
        assert_eq!(*net.state(VertexId::new(1)), 1);
        assert_eq!(net.rounds_executed(), 0);
        assert_eq!(net.graph().num_edges(), 4);
    }

    #[test]
    fn flooding_computes_bfs_distances() {
        // Each node keeps its best-known distance to vertex 0; one round of
        // flooding per BFS layer.
        let g = generators::path(6);
        let mut net = SyncNetwork::new(&g, |info| {
            if info.vertex.index() == 0 {
                Some(0usize)
            } else {
                None
            }
        });
        for _ in 0..5 {
            net.round(
                |_, state, _, _| *state,
                |_, state, inbox| {
                    for (_, _, msg) in inbox {
                        if let Some(d) = msg {
                            let candidate = d + 1;
                            if state.is_none() || state.unwrap() > candidate {
                                *state = Some(candidate);
                            }
                        }
                    }
                },
            );
        }
        assert_eq!(net.rounds_executed(), 5);
        let states = net.into_states();
        for (i, s) in states.iter().enumerate() {
            assert_eq!(*s, Some(i));
        }
    }

    #[test]
    fn run_until_stops_early() {
        let g = generators::path(4);
        let mut net = SyncNetwork::new(&g, |info| info.vertex.index() == 0);
        // Propagate a "token" from vertex 0 outward; done when all have it.
        let used = net.run_until(
            100,
            |_, state, _, _| *state,
            |_, state, inbox| {
                if inbox.iter().any(|(_, _, m)| *m) {
                    *state = true;
                }
            },
            |state| *state,
        );
        assert_eq!(used, 3);
        assert!(net.states().iter().all(|s| *s));
    }

    #[test]
    fn max_degree_via_one_round() {
        // A single LOCAL round suffices for every vertex to learn the maximum
        // degree in its 1-neighborhood.
        let g = generators::star(5);
        let mut net = SyncNetwork::new(&g, |info| info.degree);
        net.round(
            |_, state, _, _| *state,
            |_, state, inbox| {
                let best = inbox.iter().map(|(_, _, d)| *d).max().unwrap_or(0);
                *state = (*state).max(best);
            },
        );
        assert!(net.states().iter().all(|&d| d == 5));
        assert_eq!(net.rounds_executed(), 1);
    }

    /// The compose/update pair used by the sequential-vs-parallel equivalence
    /// tests: a nontrivial deterministic aggregation that is sensitive to
    /// message-to-edge attribution.
    fn gossip_round(net: &mut SyncNetwork<u64>, parallel: bool) {
        let compose = |v: VertexId, state: &u64, e: EdgeId, u: VertexId| {
            state
                .wrapping_mul(31)
                .wrapping_add(e.index() as u64)
                .wrapping_add((v.index() as u64) << 8)
                .wrapping_add((u.index() as u64) << 4)
        };
        let update = |_: VertexId, state: &mut u64, inbox: &[(EdgeId, VertexId, u64)]| {
            for (e, u, m) in inbox {
                *state = state
                    .wrapping_mul(1_000_003)
                    .wrapping_add(*m)
                    .wrapping_add(e.index() as u64 ^ ((u.index() as u64) << 16));
            }
        };
        if parallel {
            net.round_parallel(compose, update);
        } else {
            net.round(compose, update);
        }
    }

    #[test]
    fn parallel_round_is_bit_identical_to_sequential() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        for (i, g) in [
            generators::path(40),
            generators::grid(8, 8),
            generators::planted_forest_union(64, 3, &mut rng),
            generators::star(17),
        ]
        .into_iter()
        .enumerate()
        {
            let mut seq = SyncNetwork::new(&g, |info| info.unique_id.wrapping_mul(0x9E37));
            let mut par = SyncNetwork::new(&g, |info| info.unique_id.wrapping_mul(0x9E37));
            for round in 0..6 {
                gossip_round(&mut seq, false);
                gossip_round(&mut par, true);
                assert_eq!(
                    seq.states(),
                    par.states(),
                    "graph {i} diverged at round {round}"
                );
            }
            assert_eq!(seq.rounds_executed(), par.rounds_executed());
        }
    }

    #[test]
    fn parallel_round_on_edgeless_and_empty_graphs() {
        let g = forest_graph::MultiGraph::new(5);
        let mut net = SyncNetwork::new(&g, |info| info.unique_id);
        net.round_parallel(|_, s, _, _| *s, |_, _, _: &[(EdgeId, VertexId, u64)]| {});
        assert_eq!(net.rounds_executed(), 1);
        assert_eq!(net.states().len(), 5);
        let empty = forest_graph::MultiGraph::new(0);
        let mut net = SyncNetwork::new(&empty, |info| info.unique_id);
        net.round_parallel(|_, s, _, _| *s, |_, _, _: &[(EdgeId, VertexId, u64)]| {});
        assert!(net.states().is_empty());
    }

    #[test]
    fn from_csr_matches_new() {
        let g = generators::grid(4, 4);
        let csr = CsrGraph::from_multigraph(&g);
        let a = SyncNetwork::new(&g, |info| info.degree);
        let b = SyncNetwork::from_csr(csr, |info| info.degree);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn borrowed_storage_runs_bit_identically() {
        // The freeze path accepts any CsrStorage: a zero-copy borrowed view
        // produces the same rounds as the owned topology.
        let g = generators::grid(5, 4);
        let csr = CsrGraph::from_multigraph(&g);
        let mut owned = SyncNetwork::from_csr(csr.clone(), |info| info.unique_id);
        let mut borrowed = SyncNetwork::from_csr(csr.view(), |info| info.unique_id);
        for _ in 0..4 {
            gossip_round(&mut owned, false);
            let compose = |v: VertexId, state: &u64, e: EdgeId, u: VertexId| {
                state
                    .wrapping_mul(31)
                    .wrapping_add(e.index() as u64)
                    .wrapping_add((v.index() as u64) << 8)
                    .wrapping_add((u.index() as u64) << 4)
            };
            let update = |_: VertexId, state: &mut u64, inbox: &[(EdgeId, VertexId, u64)]| {
                for (e, u, m) in inbox {
                    *state = state
                        .wrapping_mul(1_000_003)
                        .wrapping_add(*m)
                        .wrapping_add(e.index() as u64 ^ ((u.index() as u64) << 16));
                }
            };
            borrowed.round(compose, update);
            assert_eq!(owned.states(), borrowed.states());
        }
    }
}
