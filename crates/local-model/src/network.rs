//! A faithful synchronous message-passing simulator for the LOCAL model.
//!
//! Each vertex of the communication graph holds a private state and, in each
//! round, (1) computes one message per incident edge from its state, (2) the
//! messages are exchanged along the edges, and (3) each vertex updates its
//! state from the received messages. Message size is unbounded, exactly as in
//! the LOCAL model. The simulator counts rounds; algorithms that are simple
//! enough to express vertex-by-vertex (H-partition, Cole–Vishkin, the random
//! coin phases) run on this engine, which keeps their round counts honest
//! rather than formula-derived.

use forest_graph::{EdgeId, MultiGraph, VertexId};

/// Identifier material available to a vertex: its id and a globally unique
/// `O(log n)`-bit label (here simply the vertex index, as permitted by the
/// model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// The vertex this node lives on.
    pub vertex: VertexId,
    /// Unique identifier (index-based).
    pub unique_id: u64,
    /// Degree of the vertex in the communication graph.
    pub degree: usize,
}

/// A synchronous network simulator over a [`MultiGraph`].
///
/// `S` is the per-node state, `M` the message type. The caller drives the
/// simulation with [`SyncNetwork::round`]; the number of executed rounds is
/// available from [`SyncNetwork::rounds_executed`].
#[derive(Debug)]
pub struct SyncNetwork<'g, S> {
    graph: &'g MultiGraph,
    states: Vec<S>,
    rounds: usize,
}

impl<'g, S> SyncNetwork<'g, S> {
    /// Creates a network where each vertex state is produced by `init`.
    pub fn new<F>(graph: &'g MultiGraph, mut init: F) -> Self
    where
        F: FnMut(NodeInfo) -> S,
    {
        let states = graph
            .vertices()
            .map(|v| {
                init(NodeInfo {
                    vertex: v,
                    unique_id: v.index() as u64,
                    degree: graph.degree(v),
                })
            })
            .collect();
        SyncNetwork {
            graph,
            states,
            rounds: 0,
        }
    }

    /// The communication graph.
    pub fn graph(&self) -> &MultiGraph {
        self.graph
    }

    /// Read-only access to every node state.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Read-only access to one node state.
    pub fn state(&self, v: VertexId) -> &S {
        &self.states[v.index()]
    }

    /// Number of synchronous rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.rounds
    }

    /// Executes one synchronous round.
    ///
    /// * `compose` is called once per (vertex, incident edge) and produces the
    ///   message sent along that edge by that vertex.
    /// * `update` is called once per vertex with all messages received this
    ///   round, as `(edge, neighbor, message)` triples, and mutates the state.
    pub fn round<M, FCompose, FUpdate>(&mut self, mut compose: FCompose, mut update: FUpdate)
    where
        FCompose: FnMut(VertexId, &S, EdgeId, VertexId) -> M,
        FUpdate: FnMut(VertexId, &mut S, &[(EdgeId, VertexId, M)]),
    {
        // Compose all messages from the snapshot of current states.
        let mut inboxes: Vec<Vec<(EdgeId, VertexId, M)>> =
            (0..self.graph.num_vertices()).map(|_| Vec::new()).collect();
        for v in self.graph.vertices() {
            let state = &self.states[v.index()];
            for (neighbor, edge) in self.graph.incidences(v) {
                let msg = compose(v, state, edge, neighbor);
                inboxes[neighbor.index()].push((edge, v, msg));
            }
        }
        // Deliver and update.
        for v in self.graph.vertices() {
            let inbox = std::mem::take(&mut inboxes[v.index()]);
            update(v, &mut self.states[v.index()], &inbox);
        }
        self.rounds += 1;
    }

    /// Runs rounds until `done` returns true for every state or `max_rounds`
    /// is reached; returns the number of rounds executed in this call.
    pub fn run_until<M, FCompose, FUpdate, FDone>(
        &mut self,
        max_rounds: usize,
        mut compose: FCompose,
        mut update: FUpdate,
        mut done: FDone,
    ) -> usize
    where
        FCompose: FnMut(VertexId, &S, EdgeId, VertexId) -> M,
        FUpdate: FnMut(VertexId, &mut S, &[(EdgeId, VertexId, M)]),
        FDone: FnMut(&S) -> bool,
    {
        let start = self.rounds;
        for _ in 0..max_rounds {
            if self.states.iter().all(&mut done) {
                break;
            }
            self.round(&mut compose, &mut update);
        }
        self.rounds - start
    }

    /// Consumes the network and returns the final states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn node_info_carries_degrees() {
        let g = generators::star(4);
        let net = SyncNetwork::new(&g, |info| info.degree);
        assert_eq!(*net.state(VertexId::new(0)), 4);
        assert_eq!(*net.state(VertexId::new(1)), 1);
        assert_eq!(net.rounds_executed(), 0);
    }

    #[test]
    fn flooding_computes_bfs_distances() {
        // Each node keeps its best-known distance to vertex 0; one round of
        // flooding per BFS layer.
        let g = generators::path(6);
        let mut net = SyncNetwork::new(&g, |info| {
            if info.vertex.index() == 0 {
                Some(0usize)
            } else {
                None
            }
        });
        for _ in 0..5 {
            net.round(
                |_, state, _, _| *state,
                |_, state, inbox| {
                    for (_, _, msg) in inbox {
                        if let Some(d) = msg {
                            let candidate = d + 1;
                            if state.is_none() || state.unwrap() > candidate {
                                *state = Some(candidate);
                            }
                        }
                    }
                },
            );
        }
        assert_eq!(net.rounds_executed(), 5);
        let states = net.into_states();
        for (i, s) in states.iter().enumerate() {
            assert_eq!(*s, Some(i));
        }
    }

    #[test]
    fn run_until_stops_early() {
        let g = generators::path(4);
        let mut net = SyncNetwork::new(&g, |info| info.vertex.index() == 0);
        // Propagate a "token" from vertex 0 outward; done when all have it.
        let used = net.run_until(
            100,
            |_, state, _, _| *state,
            |_, state, inbox| {
                if inbox.iter().any(|(_, _, m)| *m) {
                    *state = true;
                }
            },
            |state| *state,
        );
        assert_eq!(used, 3);
        assert!(net.states().iter().all(|s| *s));
    }

    #[test]
    fn max_degree_via_one_round() {
        // A single LOCAL round suffices for every vertex to learn the maximum
        // degree in its 1-neighborhood.
        let g = generators::star(5);
        let mut net = SyncNetwork::new(&g, |info| info.degree);
        net.round(
            |_, state, _, _| *state,
            |_, state, inbox| {
                let best = inbox.iter().map(|(_, _, d)| *d).max().unwrap_or(0);
                *state = (*state).max(best);
            },
        );
        assert!(net.states().iter().all(|&d| d == 5));
        assert_eq!(net.rounds_executed(), 1);
    }
}
