//! Distributed Lovász Local Lemma via parallel resampling.
//!
//! The paper repeatedly invokes the LLL algorithm of Chung–Pettie–Su [CPS17]
//! under the polynomially-strengthened criterion `e·p·d² ≤ 1 − Ω(1)`: each
//! vertex draws private random variables, each *bad event* depends on the
//! variables of a bounded neighborhood, and the algorithm finds an assignment
//! avoiding every bad event in `O(log n)` rounds.
//!
//! We implement the Moser–Tardos style parallel resampling loop: in every
//! round all currently-violated events resample their variables
//! simultaneously (a superset of an independent set of violated events, which
//! only helps convergence in practice), and the loop ends when no bad event
//! holds. Under the paper's criterion the expected number of rounds is
//! `O(log n)`; the simulator enforces a configurable round cap and reports
//! failure if it is exceeded, mirroring the "with high probability" guarantee.

use crate::rounds::RoundLedger;
use rand::Rng;

/// Predicate deciding whether a bad event currently holds on the variable
/// assignment.
pub type EventPredicate = Box<dyn Fn(&[u64]) -> bool>;

/// Resampling distribution: draws a fresh value for variable `i`.
pub type VariableSampler<'a, R> = Box<dyn FnMut(&mut R, usize) -> u64 + 'a>;

/// One bad event of an LLL instance over variables indexed by `usize`.
pub struct BadEvent {
    /// Indices of the variables this event reads.
    pub variables: Vec<usize>,
    /// Returns `true` if the event currently *holds* (i.e. is bad).
    pub holds: EventPredicate,
}

impl std::fmt::Debug for BadEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BadEvent")
            .field("variables", &self.variables)
            .finish_non_exhaustive()
    }
}

/// An LLL instance: variables with a resampling distribution plus bad events.
pub struct LllInstance<'a, R: Rng> {
    /// Number of variables.
    pub num_variables: usize,
    /// Samples a fresh value for variable `i`.
    pub sample: VariableSampler<'a, R>,
    /// The bad events to avoid.
    pub events: Vec<BadEvent>,
}

/// Outcome of running the LLL solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LllOutcome {
    /// Final values of the variables (guaranteed to avoid all bad events when
    /// `converged` is true).
    pub values: Vec<u64>,
    /// Number of parallel resampling rounds executed.
    pub rounds: usize,
    /// Whether all bad events were avoided within the round cap.
    pub converged: bool,
}

/// Runs the parallel resampling LLL solver.
///
/// `max_rounds` caps the number of resampling rounds (use
/// `O(log n)`-proportional values to mirror [CPS17]). Rounds are charged to
/// `ledger` with the given dependency radius (each resampling round costs
/// `dependency_radius` LOCAL rounds, since an event must inspect the
/// variables in its neighborhood).
pub fn solve_lll<R: Rng>(
    mut instance: LllInstance<'_, R>,
    rng: &mut R,
    max_rounds: usize,
    dependency_radius: usize,
    ledger: &mut RoundLedger,
) -> LllOutcome {
    let mut values: Vec<u64> = (0..instance.num_variables)
        .map(|i| (instance.sample)(rng, i))
        .collect();
    let mut rounds = 0usize;
    let mut converged = false;
    while rounds < max_rounds {
        let violated: Vec<&BadEvent> = instance
            .events
            .iter()
            .filter(|ev| (ev.holds)(&values))
            .collect();
        if violated.is_empty() {
            converged = true;
            break;
        }
        // Parallel resampling: every variable of every violated event gets a
        // fresh sample (deduplicated so each variable is resampled once).
        let mut to_resample: Vec<usize> = violated
            .iter()
            .flat_map(|ev| ev.variables.iter().copied())
            .collect();
        to_resample.sort_unstable();
        to_resample.dedup();
        for i in to_resample {
            values[i] = (instance.sample)(rng, i);
        }
        rounds += 1;
    }
    if !converged {
        converged = instance.events.iter().all(|ev| !(ev.holds)(&values));
    }
    ledger.charge(
        "LLL parallel resampling",
        rounds.max(1) * dependency_radius.max(1),
    );
    LllOutcome {
        values,
        rounds,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_instance_with_no_events_converges_immediately() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ledger = RoundLedger::new();
        let instance = LllInstance {
            num_variables: 4,
            sample: Box::new(|rng: &mut StdRng, _| rng.gen_range(0..2u64)),
            events: Vec::new(),
        };
        let outcome = solve_lll(instance, &mut rng, 10, 1, &mut ledger);
        assert!(outcome.converged);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.values.len(), 4);
    }

    #[test]
    fn avoids_all_equal_events_on_a_cycle() {
        // Variables on a cycle; bad event for each adjacent pair: both equal.
        // Each event has probability 1/2 per pair over {0,1} variables; use
        // a larger domain {0..7} so p = 1/8 and d = 2: e * p * d^2 < 1.
        let n = 50usize;
        let mut rng = StdRng::seed_from_u64(7);
        let mut ledger = RoundLedger::new();
        let events = (0..n)
            .map(|i| {
                let j = (i + 1) % n;
                BadEvent {
                    variables: vec![i, j],
                    holds: Box::new(move |vals: &[u64]| vals[i] == vals[j]),
                }
            })
            .collect();
        let instance = LllInstance {
            num_variables: n,
            sample: Box::new(|rng: &mut StdRng, _| rng.gen_range(0..8u64)),
            events,
        };
        let outcome = solve_lll(instance, &mut rng, 200, 1, &mut ledger);
        assert!(outcome.converged);
        for i in 0..n {
            assert_ne!(outcome.values[i], outcome.values[(i + 1) % n]);
        }
        assert!(ledger.total_rounds() >= 1);
    }

    #[test]
    fn impossible_instance_reports_non_convergence() {
        // A single event that always holds can never be avoided.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ledger = RoundLedger::new();
        let instance = LllInstance {
            num_variables: 1,
            sample: Box::new(|rng: &mut StdRng, _| rng.gen_range(0..2u64)),
            events: vec![BadEvent {
                variables: vec![0],
                holds: Box::new(|_| true),
            }],
        };
        let outcome = solve_lll(instance, &mut rng, 5, 1, &mut ledger);
        assert!(!outcome.converged);
        assert_eq!(outcome.rounds, 5);
    }

    #[test]
    fn hypergraph_two_coloring() {
        // Classic LLL application: 2-color 40 ground elements so that no
        // "hyperedge" of 10 random elements is monochromatic. p = 2^-9,
        // d <= #edges = 30, so e p d^2 < 1 comfortably fails the simple bound
        // but parallel resampling still converges fast in practice.
        let ground = 40usize;
        let edges = 30usize;
        let mut rng = StdRng::seed_from_u64(11);
        let mut hyperedges = Vec::new();
        for _ in 0..edges {
            let mut members: Vec<usize> = (0..ground).collect();
            // Fisher-Yates prefix shuffle.
            for i in 0..10 {
                let j = rng.gen_range(i..ground);
                members.swap(i, j);
            }
            hyperedges.push(members[..10].to_vec());
        }
        let events = hyperedges
            .iter()
            .cloned()
            .map(|members| BadEvent {
                variables: members.clone(),
                holds: Box::new(move |vals: &[u64]| {
                    members.iter().all(|&i| vals[i] == 0) || members.iter().all(|&i| vals[i] == 1)
                }),
            })
            .collect();
        let mut ledger = RoundLedger::new();
        let instance = LllInstance {
            num_variables: ground,
            sample: Box::new(|rng: &mut StdRng, _| rng.gen_range(0..2u64)),
            events,
        };
        let outcome = solve_lll(instance, &mut rng, 500, 2, &mut ledger);
        assert!(outcome.converged);
        for members in &hyperedges {
            let first = outcome.values[members[0]];
            assert!(members.iter().any(|&i| outcome.values[i] != first));
        }
    }
}
