//! Network decompositions.
//!
//! Two constructions are provided, matching the two tools the paper consumes:
//!
//! * [`network_decomposition`]: an `(O(log n), O(log n))` network
//!   decomposition — a partition of the vertices into `O(log n)` classes such
//!   that every connected component ("cluster") inside a class has diameter
//!   `O(log n)`. Built by iterated ball-carving (Awerbuch/Linial–Saks style);
//!   the balls stop growing as soon as the next layer would less than double
//!   the ball, which bounds the radius by `log₂ n` and defers fewer than half
//!   of the vertices to later classes.
//! * [`partial_network_decomposition`]: the Miller–Peng–Xu random-shift
//!   clustering — a single partition of all vertices into clusters of radius
//!   `O(log n / β)` w.h.p. such that each edge is cut (endpoints in different
//!   clusters) with probability at most `O(β)`.

use crate::rounds::{costs, RoundLedger};
use forest_graph::kernels::StampSet;
use forest_graph::traversal::{bfs_distances, UNREACHABLE};
use forest_graph::{GraphView, MultiGraph, VertexId};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An `(O(log n), O(log n))` network decomposition.
#[derive(Clone, Debug)]
pub struct NetworkDecomposition {
    /// Class of each vertex (`0..num_classes`).
    pub class_of: Vec<usize>,
    /// Cluster index of each vertex (global numbering across classes).
    pub cluster_of: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// The vertex sets of each cluster (indexed by global cluster id).
    pub clusters: Vec<Vec<VertexId>>,
    /// Class of each cluster.
    pub cluster_class: Vec<usize>,
}

impl NetworkDecomposition {
    /// Clusters belonging to a given class.
    pub fn clusters_in_class(&self, class: usize) -> Vec<usize> {
        (0..self.clusters.len())
            .filter(|&c| self.cluster_class[c] == class)
            .collect()
    }

    /// Maximum *weak* diameter over all clusters: distances are measured in
    /// the whole graph `g`, not inside the cluster.
    pub fn max_weak_diameter<G: GraphView>(&self, g: &G) -> usize {
        let mut best = 0;
        for cluster in &self.clusters {
            for &v in cluster {
                let dist = bfs_distances(g, v, |_| true);
                for &u in cluster {
                    if dist[u.index()] != UNREACHABLE {
                        best = best.max(dist[u.index()]);
                    }
                }
            }
        }
        best
    }

    /// Checks the defining property: within each class, vertices of different
    /// clusters are never adjacent in `g`.
    pub fn classes_separate_clusters<G: GraphView>(&self, g: &G) -> bool {
        for (_, u, v) in g.edges() {
            if self.class_of[u.index()] == self.class_of[v.index()]
                && self.cluster_of[u.index()] != self.cluster_of[v.index()]
            {
                return false;
            }
        }
        true
    }
}

/// Computes an `(O(log n), O(log n))` network decomposition of `g` by
/// iterated ball carving, charging `O(log² n)` rounds. Works over any
/// [`GraphView`] — in particular the lazy power view
/// [`PowerView`](crate::PowerView), which is how Algorithm 2 decomposes
/// `G^{2(R+R')}` without materializing it.
///
/// The returned decomposition satisfies, deterministically:
/// * at most `⌈log₂ n⌉ + 1` classes,
/// * every cluster has radius at most `⌈log₂ n⌉` (hence weak diameter
///   `≤ 2⌈log₂ n⌉`),
/// * clusters of the same class are pairwise non-adjacent.
///
/// Each ball is grown *incrementally*, one BFS layer at a time over a
/// shared epoch-stamped scratch arena: the doubling stop rule only ever
/// inspects the size of the next layer, so carving a radius-`ρ` cluster
/// explores exactly `ρ + 1` layers instead of running a full-graph BFS per
/// center (the previous behavior — quadratic on power views, whose balls
/// are huge).
pub fn network_decomposition<G: GraphView>(
    g: &G,
    ledger: &mut RoundLedger,
) -> NetworkDecomposition {
    network_decomposition_with_probe(g, ledger, |_| {})
}

/// [`network_decomposition`] with a per-class observation hook: `probe` is
/// called with the class index after each class finishes carving.
///
/// The carving loop issues every adjacency query against the *same* `g`, so
/// when `g` is a [`PowerView`](crate::PowerView) one ball cache serves all
/// classes — balls expanded while carving class `k` are answered from the
/// cache when later classes revisit deferred vertices. The probe lets the
/// caller snapshot such per-layer counters (e.g. the view's hit/expansion
/// stats) without this function knowing anything beyond [`GraphView`]; it
/// observes only — the decomposition, ledger charges and iteration order
/// are identical to [`network_decomposition`].
pub fn network_decomposition_with_probe<G: GraphView, F: FnMut(usize)>(
    g: &G,
    ledger: &mut RoundLedger,
    mut probe: F,
) -> NetworkDecomposition {
    let n = g.num_vertices();
    ledger.charge("network decomposition", costs::network_decomposition(n, 1));
    let mut class_of = vec![usize::MAX; n];
    let mut cluster_of = vec![usize::MAX; n];
    let mut clusters: Vec<Vec<VertexId>> = Vec::new();
    let mut cluster_class: Vec<usize> = Vec::new();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut num_remaining = n;
    let mut class = 0usize;
    // Carving scratch, shared by every ball expansion: `seen` resets by
    // epoch bump, the frontier buffers only ever hold one BFS layer.
    let mut seen = StampSet::new(n);
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut next_frontier: Vec<VertexId> = Vec::new();
    let mut next_avail: Vec<VertexId> = Vec::new();
    while num_remaining > 0 {
        // Vertices deferred to the next class because they border a cluster
        // carved in this class.
        let mut deferred = vec![false; n];
        // Vertices available to be clustered in this class.
        let mut available: Vec<bool> = remaining.clone();
        for center in g.vertices() {
            if !available[center.index()] || deferred[center.index()] {
                continue;
            }
            // Grow a ball around `center` inside the available vertices,
            // one layer at a time. Distances are measured in the whole
            // graph (the ball may pass through unavailable vertices), so
            // the frontier carries every newly seen vertex while the
            // doubling rule counts only the available ones.
            seen.clear();
            seen.insert(center.index());
            frontier.clear();
            frontier.push(center);
            let mut members = vec![center];
            let mut ball_size = 1usize;
            loop {
                next_frontier.clear();
                for &u in &frontier {
                    for w in g.neighbors(u) {
                        if seen.insert(w.index()) {
                            next_frontier.push(w);
                        }
                    }
                }
                next_avail.clear();
                next_avail.extend(
                    next_frontier
                        .iter()
                        .copied()
                        .filter(|v| available[v.index()] && !deferred[v.index()]),
                );
                if next_avail.is_empty() {
                    // No available vertices at distance radius+1: the ball
                    // is maximal in its class, nothing to defer.
                    break;
                }
                if ball_size + next_avail.len() < 2 * ball_size {
                    // The next layer is deferred so clusters of this class
                    // stay non-adjacent.
                    for &v in &next_avail {
                        deferred[v.index()] = true;
                    }
                    break;
                }
                ball_size += next_avail.len();
                next_avail.sort_unstable();
                members.extend_from_slice(&next_avail);
                std::mem::swap(&mut frontier, &mut next_frontier);
            }
            let cluster_id = clusters.len();
            for &v in &members {
                class_of[v.index()] = class;
                cluster_of[v.index()] = cluster_id;
                available[v.index()] = false;
                remaining[v.index()] = false;
                num_remaining -= 1;
            }
            clusters.push(members);
            cluster_class.push(class);
        }
        probe(class);
        class += 1;
        // Safety net: the construction always makes progress, but guard
        // against pathological loops anyway.
        if class > n + 1 {
            break;
        }
    }
    NetworkDecomposition {
        class_of,
        cluster_of,
        num_classes: class,
        clusters,
        cluster_class,
    }
}

/// A Miller–Peng–Xu `(O(log n / β), β)` partial network decomposition: a
/// clustering of all vertices.
#[derive(Clone, Debug)]
pub struct PartialNetworkDecomposition {
    /// Cluster center that captured each vertex.
    pub center_of: Vec<VertexId>,
    /// Distance from each vertex to its capturing center (in shifted metric
    /// rounded down; used only for diagnostics).
    pub depth_of: Vec<usize>,
}

impl PartialNetworkDecomposition {
    /// Returns `true` if both endpoints of the edge landed in the same
    /// cluster.
    pub fn same_cluster(&self, u: VertexId, v: VertexId) -> bool {
        self.center_of[u.index()] == self.center_of[v.index()]
    }

    /// Fraction of edges of `g` whose endpoints lie in different clusters.
    pub fn cut_fraction(&self, g: &MultiGraph) -> f64 {
        if g.num_edges() == 0 {
            return 0.0;
        }
        let cut = g
            .edges()
            .filter(|(_, u, v)| !self.same_cluster(*u, *v))
            .count();
        cut as f64 / g.num_edges() as f64
    }

    /// Maximum (unshifted) BFS depth of any vertex below its center.
    pub fn max_depth(&self) -> usize {
        self.depth_of.iter().copied().max().unwrap_or(0)
    }
}

/// Computes an MPX random-shift clustering with parameter `beta`, charging
/// `O(log n / β)` rounds. Every vertex draws an exponential shift
/// `δ_v ~ Exp(β)` and each vertex is captured by the center maximizing
/// `δ_u - dist(u, v)`.
pub fn partial_network_decomposition<R: Rng + ?Sized>(
    g: &MultiGraph,
    beta: f64,
    rng: &mut R,
    ledger: &mut RoundLedger,
) -> PartialNetworkDecomposition {
    assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
    let n = g.num_vertices();
    ledger.charge(
        format!("MPX partial network decomposition (beta = {beta})"),
        costs::partial_network_decomposition(n, beta),
    );
    // Exponential shifts.
    let shifts: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            -u.ln() / beta
        })
        .collect();
    // Multi-source Dijkstra on the shifted metric: vertex v is captured by the
    // center u minimizing dist(u, v) - δ_u. Edge lengths are 1, so we can use
    // a binary heap keyed by f64 (converted to ordered bits).
    #[derive(Copy, Clone, PartialEq)]
    struct Key(f64);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("keys are finite")
        }
    }
    let mut best_key = vec![f64::INFINITY; n];
    let mut center_of = vec![VertexId::new(0); n];
    let mut depth_of = vec![0usize; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Key, usize, usize, usize)>> = BinaryHeap::new();
    for v in 0..n {
        let key = -shifts[v];
        best_key[v] = key;
        center_of[v] = VertexId::new(v);
        heap.push(Reverse((Key(key), 0, v, v)));
    }
    while let Some(Reverse((Key(key), depth, center, v))) = heap.pop() {
        if settled[v] || key > best_key[v] {
            continue;
        }
        settled[v] = true;
        center_of[v] = VertexId::new(center);
        depth_of[v] = depth;
        for u in g.neighbors(VertexId::new(v)) {
            let cand = key + 1.0;
            if !settled[u.index()] && cand < best_key[u.index()] {
                best_key[u.index()] = cand;
                heap.push(Reverse((Key(cand), depth + 1, center, u.index())));
            }
        }
    }
    PartialNetworkDecomposition {
        center_of,
        depth_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nd_covers_all_vertices_with_few_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(64, 3, &mut rng);
        let mut ledger = RoundLedger::new();
        let nd = network_decomposition(&g, &mut ledger);
        assert!(ledger.total_rounds() > 0);
        // Every vertex has a class and a cluster.
        assert!(nd.class_of.iter().all(|&c| c != usize::MAX));
        assert!(nd.cluster_of.iter().all(|&c| c != usize::MAX));
        // O(log n) classes: for n = 64 the construction guarantees <= 7.
        assert!(nd.num_classes <= 7, "too many classes: {}", nd.num_classes);
        assert!(nd.classes_separate_clusters(&g));
        // Radius <= log2 n  =>  weak diameter <= 2 log2 n = 12.
        assert!(nd.max_weak_diameter(&g) <= 12);
    }

    #[test]
    fn nd_on_path_graph() {
        let g = generators::path(33);
        let mut ledger = RoundLedger::new();
        let nd = network_decomposition(&g, &mut ledger);
        assert!(nd.classes_separate_clusters(&g));
        assert!(nd.num_classes <= 7);
        let total: usize = nd.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 33);
    }

    #[test]
    fn nd_on_edgeless_graph_uses_one_class() {
        let g = MultiGraph::new(10);
        let mut ledger = RoundLedger::new();
        let nd = network_decomposition(&g, &mut ledger);
        assert_eq!(nd.num_classes, 1);
        assert_eq!(nd.clusters.len(), 10);
        assert!(nd.classes_separate_clusters(&g));
    }

    #[test]
    fn nd_clusters_in_class_partition_clusters() {
        let g = generators::grid(6, 6);
        let mut ledger = RoundLedger::new();
        let nd = network_decomposition(&g, &mut ledger);
        let mut count = 0;
        for class in 0..nd.num_classes {
            count += nd.clusters_in_class(class).len();
        }
        assert_eq!(count, nd.clusters.len());
    }

    #[test]
    fn mpx_cut_fraction_scales_with_beta() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::grid(12, 12);
        let mut ledger = RoundLedger::new();
        // Average over a few runs to keep the test stable.
        let avg = |beta: f64, rng: &mut StdRng, ledger: &mut RoundLedger| -> f64 {
            let runs = 8;
            (0..runs)
                .map(|_| partial_network_decomposition(&g, beta, rng, ledger).cut_fraction(&g))
                .sum::<f64>()
                / runs as f64
        };
        let small = avg(0.05, &mut rng, &mut ledger);
        let large = avg(0.8, &mut rng, &mut ledger);
        assert!(
            small < large,
            "cut fraction should grow with beta (got {small} vs {large})"
        );
        // The theory bound is O(beta); allow generous slack for small graphs.
        assert!(
            small <= 0.35,
            "cut fraction {small} too large for beta=0.05"
        );
    }

    #[test]
    fn mpx_clusters_are_connected_balls() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::grid(8, 8);
        let mut ledger = RoundLedger::new();
        let pnd = partial_network_decomposition(&g, 0.3, &mut rng, &mut ledger);
        // Each vertex belongs to exactly one cluster, identified by a center.
        assert_eq!(pnd.center_of.len(), 64);
        // Depth is bounded by the graph diameter.
        assert!(pnd.max_depth() <= 14);
        // Every cluster center captures itself.
        for v in g.vertices() {
            let c = pnd.center_of[v.index()];
            assert_eq!(pnd.center_of[c.index()], c, "center must capture itself");
        }
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn mpx_rejects_bad_beta() {
        let g = generators::path(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ledger = RoundLedger::new();
        partial_network_decomposition(&g, 0.0, &mut rng, &mut ledger);
    }
}
