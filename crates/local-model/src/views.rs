//! Neighborhood views and power graphs.
//!
//! In the LOCAL model a vertex can learn everything within distance `r` in
//! `r` rounds, and the power graph `G^r` can be simulated with an `O(r)`
//! overhead (Section 1.1 of the paper). These helpers materialize such views
//! for the centrally-simulated cluster computations of Algorithm 2.

use crate::rounds::RoundLedger;
use forest_graph::traversal::{multi_source_bfs, UNREACHABLE};
use forest_graph::{EdgeId, GraphView, MultiGraph, VertexId};

/// The radius-`r` view around a set of center vertices: the vertices within
/// distance `r` and the edges with both endpoints in that ball.
#[derive(Clone, Debug)]
pub struct NeighborhoodView {
    /// The centers the view was grown from.
    pub centers: Vec<VertexId>,
    /// Radius of the view.
    pub radius: usize,
    /// Vertices within distance `radius` of some center.
    pub vertices: Vec<VertexId>,
    /// Distance of each graph vertex from the center set ([`usize::MAX`] if
    /// farther than `radius` — distances beyond the radius are not revealed,
    /// as the LOCAL view would not contain them).
    pub distance: Vec<usize>,
    /// Edges with both endpoints inside the view.
    pub edges: Vec<EdgeId>,
}

impl NeighborhoodView {
    /// Returns `true` if the vertex is inside the view.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.distance[v.index()] != UNREACHABLE
    }

    /// Returns `true` if the edge is inside the view.
    pub fn contains_edge(&self, g: &MultiGraph, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.contains_vertex(u) && self.contains_vertex(v)
    }
}

/// Collects the radius-`r` neighborhood of `centers`, charging `r` rounds to
/// the ledger (gathering a radius-`r` view costs `r` LOCAL rounds).
pub fn collect_view(
    g: &MultiGraph,
    centers: &[VertexId],
    radius: usize,
    ledger: &mut RoundLedger,
) -> NeighborhoodView {
    ledger.charge(format!("collect radius-{radius} view"), radius.max(1));
    let mut distance = multi_source_bfs(g, centers, |_| true);
    for d in distance.iter_mut() {
        if *d > radius {
            *d = UNREACHABLE;
        }
    }
    let vertices: Vec<VertexId> = g
        .vertices()
        .filter(|v| distance[v.index()] != UNREACHABLE)
        .collect();
    let edges: Vec<EdgeId> = g
        .edges()
        .filter(|(_, u, v)| {
            distance[u.index()] != UNREACHABLE && distance[v.index()] != UNREACHABLE
        })
        .map(|(e, _, _)| e)
        .collect();
    NeighborhoodView {
        centers: centers.to_vec(),
        radius,
        vertices,
        distance,
        edges,
    }
}

/// Builds the power graph `G^r`: same vertex set, an edge between `u` and `v`
/// whenever their distance in `G` is between 1 and `r`. The result is simple
/// (no parallel edges) regardless of multiplicities in `G`.
///
/// Simulating one round of `G^r` costs `O(r)` rounds of `G`; callers charge
/// that separately when they run algorithms on the power graph.
pub fn power_graph<G: GraphView>(g: &G, r: usize) -> MultiGraph {
    let n = g.num_vertices();
    let mut pg = MultiGraph::new(n);
    if r == 0 {
        return pg;
    }
    for v in g.vertices() {
        let dist = forest_graph::traversal::bfs_distances(g, v, |_| true);
        for u in g.vertices() {
            if u > v && dist[u.index()] != UNREACHABLE && dist[u.index()] <= r {
                pg.add_edge(v, u).expect("power graph edge");
            }
        }
    }
    pg
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn view_contains_ball_vertices_and_edges() {
        let g = generators::path(8);
        let mut ledger = RoundLedger::new();
        let view = collect_view(&g, &[VertexId::new(3)], 2, &mut ledger);
        assert_eq!(ledger.total_rounds(), 2);
        let mut ids: Vec<usize> = view.vertices.iter().map(|v| v.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        // Edges fully inside the ball: (1,2),(2,3),(3,4),(4,5).
        assert_eq!(view.edges.len(), 4);
        assert!(view.contains_vertex(VertexId::new(5)));
        assert!(!view.contains_vertex(VertexId::new(6)));
        assert!(view.contains_edge(&g, EdgeId::new(2)));
        assert!(!view.contains_edge(&g, EdgeId::new(6)));
    }

    #[test]
    fn view_with_multiple_centers() {
        let g = generators::path(10);
        let mut ledger = RoundLedger::new();
        let view = collect_view(&g, &[VertexId::new(0), VertexId::new(9)], 1, &mut ledger);
        let mut ids: Vec<usize> = view.vertices.iter().map(|v| v.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 8, 9]);
    }

    #[test]
    fn power_graph_of_path() {
        let g = generators::path(5);
        let p2 = power_graph(&g, 2);
        // Edges: distance 1 (4 of them) + distance 2 (3 of them).
        assert_eq!(p2.num_edges(), 7);
        assert!(p2.is_simple());
        let p0 = power_graph(&g, 0);
        assert_eq!(p0.num_edges(), 0);
        // Large radius: complete graph.
        let p10 = power_graph(&g, 10);
        assert_eq!(p10.num_edges(), 5 * 4 / 2);
    }

    #[test]
    fn power_graph_ignores_multiplicity() {
        let g = generators::fat_path(3, 4);
        let p1 = power_graph(&g, 1);
        assert_eq!(p1.num_edges(), 3);
        assert!(p1.is_simple());
    }
}
