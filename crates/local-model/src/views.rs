//! Neighborhood views and power graphs.
//!
//! In the LOCAL model a vertex can learn everything within distance `r` in
//! `r` rounds, and the power graph `G^r` can be simulated with an `O(r)`
//! overhead (Section 1.1 of the paper). These helpers provide such views
//! for the centrally-simulated cluster computations of Algorithm 2 — either
//! materialized ([`power_graph`], [`collect_view`]) or, for the engine hot
//! path, *virtual*: [`PowerView`] implements
//! [`GraphView`] for `G^r` without ever building it.
//!
//! # The virtual power graph
//!
//! Materializing `G^r` costs `O(n·(n+m))` time and up to `O(n²)` edges —
//! the dominant cost of sharded Harris–Su–Vu runs whenever a shard's
//! diameter exceeds `2(R+R')`. [`PowerView`] instead answers every
//! adjacency query with a bounded-radius BFS from the queried vertex over
//! an epoch-stamped scratch arena
//! ([`BfsScratch`](forest_graph::traversal::BfsScratch)): no `O(n)` clears
//! between queries, no allocation per query, and a small LRU of recently
//! expanded balls so the repeated neighborhood probes of
//! [`network_decomposition`](crate::network_decomposition) don't redo BFS
//! work. Round-cost accounting is unchanged: simulating `G^r` is charged by
//! the *caller* at the usual `O(r)` simulation overhead — the ledger prices
//! LOCAL rounds, not the central materialization shortcut this view avoids.

use crate::rounds::RoundLedger;
use forest_graph::traversal::{BfsScratch, UNREACHABLE};
use forest_graph::{EdgeId, GraphView, MultiGraph, VertexId};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// The radius-`r` view around a set of center vertices: the vertices within
/// distance `r` and the edges with both endpoints in that ball.
#[derive(Clone, Debug)]
pub struct NeighborhoodView {
    /// The centers the view was grown from.
    pub centers: Vec<VertexId>,
    /// Radius of the view.
    pub radius: usize,
    /// Vertices within distance `radius` of some center.
    pub vertices: Vec<VertexId>,
    /// Distance of each graph vertex from the center set ([`usize::MAX`] if
    /// farther than `radius` — distances beyond the radius are not revealed,
    /// as the LOCAL view would not contain them).
    pub distance: Vec<usize>,
    /// Edges with both endpoints inside the view.
    pub edges: Vec<EdgeId>,
}

impl NeighborhoodView {
    /// Returns `true` if the vertex is inside the view.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.distance[v.index()] != UNREACHABLE
    }

    /// Returns `true` if the edge is inside the view.
    pub fn contains_edge<G: GraphView>(&self, g: &G, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.contains_vertex(u) && self.contains_vertex(v)
    }
}

/// Collects the radius-`r` neighborhood of `centers`, charging `r` rounds to
/// the ledger (gathering a radius-`r` view costs `r` LOCAL rounds).
///
/// The collection is ball-local: the BFS stops at `radius` and the edge set
/// is gathered from the incidence lists of the reached vertices only, so
/// the cost is proportional to the ball, not to `O(n + m)`.
pub fn collect_view<G: GraphView>(
    g: &G,
    centers: &[VertexId],
    radius: usize,
    ledger: &mut RoundLedger,
) -> NeighborhoodView {
    ledger.charge(format!("collect radius-{radius} view"), radius.max(1));
    let mut scratch = BfsScratch::new(g.num_vertices());
    scratch.run_bounded(g, centers, radius, |_| true);
    let mut vertices: Vec<VertexId> = scratch.visited().to_vec();
    vertices.sort_unstable();
    let mut distance = vec![UNREACHABLE; g.num_vertices()];
    for &v in &vertices {
        distance[v.index()] = scratch.distance(v);
    }
    let mut edges: Vec<EdgeId> = Vec::new();
    for &v in &vertices {
        for (w, e) in g.incidences(v) {
            if distance[w.index()] != UNREACHABLE {
                edges.push(e);
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    NeighborhoodView {
        centers: centers.to_vec(),
        radius,
        vertices,
        distance,
        edges,
    }
}

/// Builds the power graph `G^r`: same vertex set, an edge between `u` and `v`
/// whenever their distance in `G` is between 1 and `r`. The result is simple
/// (no parallel edges) regardless of multiplicities in `G`.
///
/// Simulating one round of `G^r` costs `O(r)` rounds of `G`; callers charge
/// that separately when they run algorithms on the power graph.
///
/// **Engine note:** this materializer is kept as the ground-truth oracle
/// for tests and for graphs beyond [`PowerView::MAX_VERTICES`]; the
/// decomposition engines themselves route through [`PowerView`], which
/// answers the same adjacency lazily without the `O(n²)` edge blow-up.
/// Prefer the view in any per-run code path.
pub fn power_graph<G: GraphView>(g: &G, r: usize) -> MultiGraph {
    let n = g.num_vertices();
    let mut pg = MultiGraph::new(n);
    if r == 0 {
        return pg;
    }
    let mut scratch = BfsScratch::new(n);
    let mut reached: Vec<VertexId> = Vec::new();
    for v in g.vertices() {
        scratch.run_bounded(g, &[v], r, |_| true);
        reached.clear();
        reached.extend(scratch.visited().iter().copied().filter(|&u| u > v));
        reached.sort_unstable();
        for &u in &reached {
            pg.add_edge(v, u).expect("power graph edge");
        }
    }
    pg
}

/// Running counters of a [`PowerView`]: how often a ball was answered from
/// the LRU versus expanded by a fresh bounded BFS.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PowerViewStats {
    /// Balls computed by a bounded BFS over the base graph.
    pub ball_expansions: u64,
    /// Balls answered straight from the LRU cache.
    pub cache_hits: u64,
}

/// LRU of recently expanded balls, capped by total cached words. Recency is
/// tracked with lazy generation stamps: every touch pushes a `(vertex,
/// generation)` pair and eviction skips pairs whose generation is stale, so
/// a cache hit costs `O(1)` without any list splicing.
#[derive(Debug)]
struct BallCache {
    entries: HashMap<u32, (Rc<Vec<u32>>, u64)>,
    recency: VecDeque<(u32, u64)>,
    next_generation: u64,
    cached_words: usize,
    budget_words: usize,
}

impl BallCache {
    fn new(budget_words: usize) -> Self {
        BallCache {
            entries: HashMap::new(),
            recency: VecDeque::new(),
            next_generation: 0,
            cached_words: 0,
            budget_words,
        }
    }

    fn touch(&mut self, v: u32) -> u64 {
        let generation = self.next_generation;
        self.next_generation += 1;
        self.recency.push_back((v, generation));
        generation
    }

    fn get(&mut self, v: u32) -> Option<Rc<Vec<u32>>> {
        let generation = self.next_generation;
        let entry = self.entries.get_mut(&v)?;
        entry.1 = generation;
        let ball = entry.0.clone();
        self.touch(v);
        Some(ball)
    }

    fn insert(&mut self, v: u32, ball: Rc<Vec<u32>>) {
        self.cached_words += ball.len().max(1);
        let generation = self.touch(v);
        self.entries.insert(v, (ball, generation));
        while self.cached_words > self.budget_words && self.entries.len() > 1 {
            let Some((candidate, generation)) = self.recency.pop_front() else {
                break;
            };
            let current = self.entries.get(&candidate).map(|entry| entry.1);
            if current != Some(generation) {
                continue; // stale pair from an earlier touch
            }
            if candidate == v {
                // Never evict the ball being inserted; keep its (single)
                // fresh pair queued so it stays evictable later.
                self.recency.push_back((candidate, generation));
                continue;
            }
            let (ball, _) = self.entries.remove(&candidate).expect("present");
            self.cached_words -= ball.len().max(1);
        }
    }
}

/// A lazy [`GraphView`] of the power graph `G^r` — adjacency on demand, no
/// materialization.
///
/// Every query about a vertex `v` is answered from the radius-`r` ball of
/// `v` in the base graph, computed by a bounded BFS over a shared
/// epoch-stamped scratch arena and memoized in a words-budgeted LRU (see
/// the [module docs](self) for the design rationale).
///
/// # Identifier contract
///
/// `PowerView` keeps the dense `0..n` vertex ids of the base graph but
/// *deviates* from the dense edge-id contract of [`GraphView`] (precedent:
/// `forest_graph::DynamicGraph`, whose live edges also occupy a sparse id
/// space). Edge ids are dual-mode:
///
/// * `n ≤ `[`PowerView::PAIR_ENCODED_MAX`]: the edge between `u < w` has
///   the pair-encoded id `u·n + w`, so endpoint recovery is arithmetic
///   ([`endpoints`](GraphView::endpoints) is `(e / n, e % n)`) and
///   [`num_edges`](GraphView::num_edges) returns the *id-space span* `n²`.
///   This is the historical encoding, kept bit-for-bit so edge ids (and
///   anything derived from them) are stable for every graph that fit the
///   old `u16::MAX` cap.
/// * larger graphs (up to [`PowerView::MAX_VERTICES`]): `u·n + w` would
///   overflow the `u32` backing of [`EdgeId`], so ids are *interned
///   lazily* — the first query touching a power edge assigns it the next
///   sequential id, a side table recovers endpoints, and
///   [`num_edges`](GraphView::num_edges) returns the number of ids minted
///   so far (it grows as queries discover new edges).
///
/// In both modes use [`edges`](GraphView::edges) (overridden to enumerate
/// lazily from each smaller endpoint) when the actual edge set is required.
///
/// The view holds interior mutability (scratch arena + cache + interner)
/// behind a [`RefCell`], so it is intentionally neither `Sync` nor `Send`:
/// create one per run, like the scratch buffers it replaces.
#[derive(Debug)]
pub struct PowerView<'a, G: GraphView> {
    base: &'a G,
    radius: usize,
    inner: RefCell<PowerViewInner>,
}

/// Lazily interned edge ids for base graphs too large for pair encoding:
/// the first query touching a power edge mints the next sequential `u32`
/// id, and `pairs` recovers the endpoints of every minted id.
#[derive(Debug, Default)]
struct EdgeInterner {
    ids: HashMap<u64, u32>,
    pairs: Vec<(u32, u32)>,
}

impl EdgeInterner {
    fn intern(&mut self, lo: u32, hi: u32, n: usize) -> EdgeId {
        let key = lo as u64 * n as u64 + hi as u64;
        if let Some(&id) = self.ids.get(&key) {
            return EdgeId::new(id as usize);
        }
        let id = u32::try_from(self.pairs.len())
            .expect("interned more than u32::MAX distinct power edges");
        self.ids.insert(key, id);
        self.pairs.push((lo, hi));
        EdgeId::new(id as usize)
    }
}

#[derive(Debug)]
struct PowerViewInner {
    scratch: BfsScratch,
    cache: BallCache,
    stats: PowerViewStats,
    /// `Some` exactly when the base graph exceeds
    /// [`PowerView::PAIR_ENCODED_MAX`] vertices.
    interner: Option<EdgeInterner>,
}

impl<'a, G: GraphView> PowerView<'a, G> {
    /// Largest supported base-graph vertex count (vertex ids must fit the
    /// `u32` ball-cache index).
    pub const MAX_VERTICES: usize = u32::MAX as usize;

    /// Largest base-graph vertex count the *pair-encoded* edge ids support
    /// (`n² - 1` must fit in a `u32`). Below this threshold edge ids use
    /// the historical `u·n + w` encoding; above it they are interned
    /// lazily (see the identifier contract on [`PowerView`]).
    pub const PAIR_ENCODED_MAX: usize = u16::MAX as usize;

    /// Wraps `base` as the virtual power graph `base^radius`.
    ///
    /// # Panics
    ///
    /// Panics if `base` has more than [`PowerView::MAX_VERTICES`] vertices
    /// (vertex ids would overflow the `u32` cache index); such graphs must
    /// use the materializing [`power_graph`] instead.
    pub fn new(base: &'a G, radius: usize) -> Self {
        let n = base.num_vertices();
        assert!(
            n <= Self::MAX_VERTICES,
            "PowerView supports at most {} vertices (got {n}); use power_graph",
            Self::MAX_VERTICES
        );
        // Budget the ball cache at a few words per base vertex: enough to
        // keep the working set of a carving pass hot, bounded well below
        // materialization cost.
        let budget_words = (8 * n).max(4096);
        PowerView {
            base,
            radius,
            inner: RefCell::new(PowerViewInner {
                scratch: BfsScratch::new(n),
                cache: BallCache::new(budget_words),
                stats: PowerViewStats::default(),
                interner: (n > Self::PAIR_ENCODED_MAX).then(EdgeInterner::default),
            }),
        }
    }

    /// The base graph the view is defined over.
    pub fn base(&self) -> &'a G {
        self.base
    }

    /// The power-graph radius `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Snapshot of the expansion/cache counters.
    pub fn stats(&self) -> PowerViewStats {
        self.inner.borrow().stats
    }

    /// The sorted power-neighborhood of `v` (vertices at base distance
    /// `1..=radius`), shared with the cache.
    fn ball(&self, v: VertexId) -> Rc<Vec<u32>> {
        let key = v.raw();
        let mut inner = self.inner.borrow_mut();
        if let Some(ball) = inner.cache.get(key) {
            inner.stats.cache_hits += 1;
            return ball;
        }
        inner.stats.ball_expansions += 1;
        let PowerViewInner { scratch, cache, .. } = &mut *inner;
        scratch.run_bounded(self.base, &[v], self.radius, |_| true);
        let mut ball: Vec<u32> = scratch
            .visited()
            .iter()
            .filter(|&&w| w != v)
            .map(|w| w.raw())
            .collect();
        ball.sort_unstable();
        let ball = Rc::new(ball);
        cache.insert(key, ball.clone());
        ball
    }

    fn encode_edge(&self, u: u32, w: u32) -> EdgeId {
        let n = self.base.num_vertices();
        let (lo, hi) = if u <= w { (u, w) } else { (w, u) };
        if n <= Self::PAIR_ENCODED_MAX {
            EdgeId::new(lo as usize * n + hi as usize)
        } else {
            let mut inner = self.inner.borrow_mut();
            inner
                .interner
                .as_mut()
                .expect("interner present above the pair-encoded cap")
                .intern(lo, hi, n)
        }
    }
}

/// Iterator over the power-graph incidences of one vertex; holds the cached
/// ball alive via its [`Rc`], so each `next()` only takes a transient
/// interior borrow of the view (to mint interned edge ids) — no borrow
/// guard outlives the call.
#[derive(Debug)]
pub struct PowerIncidences<'v, 'a, G: GraphView> {
    view: &'v PowerView<'a, G>,
    ball: Rc<Vec<u32>>,
    pos: usize,
    center: u32,
}

impl<G: GraphView> Iterator for PowerIncidences<'_, '_, G> {
    type Item = (VertexId, EdgeId);

    fn next(&mut self) -> Option<Self::Item> {
        let &w = self.ball.get(self.pos)?;
        self.pos += 1;
        Some((
            VertexId::new(w as usize),
            self.view.encode_edge(self.center, w),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.ball.len() - self.pos;
        (rest, Some(rest))
    }
}

impl<'a, G: GraphView> GraphView for PowerView<'a, G> {
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// The edge-id *span*, not the count of distinct power edges (see the
    /// type-level identifier contract): `n²` in pair-encoded mode, the
    /// number of interned ids minted so far above the cap.
    fn num_edges(&self) -> usize {
        let n = self.base.num_vertices();
        if n <= Self::PAIR_ENCODED_MAX {
            n * n
        } else {
            self.inner
                .borrow()
                .interner
                .as_ref()
                .expect("interner present above the pair-encoded cap")
                .pairs
                .len()
        }
    }

    fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let n = self.base.num_vertices();
        if n <= Self::PAIR_ENCODED_MAX {
            (VertexId::new(e.index() / n), VertexId::new(e.index() % n))
        } else {
            let inner = self.inner.borrow();
            let (lo, hi) = inner
                .interner
                .as_ref()
                .expect("interner present above the pair-encoded cap")
                .pairs[e.index()];
            (VertexId::new(lo as usize), VertexId::new(hi as usize))
        }
    }

    fn degree(&self, v: VertexId) -> usize {
        self.ball(v).len()
    }

    fn incidences(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        PowerIncidences {
            view: self,
            ball: self.ball(v),
            pos: 0,
            center: v.raw(),
        }
    }

    /// Lazily enumerates each power edge once, from its smaller endpoint in
    /// ascending order.
    fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |v| {
            let ball = self.ball(v);
            let center = v.raw();
            (0..ball.len()).filter_map(move |i| {
                let w = ball[i];
                (w > center).then(|| (self.encode_edge(center, w), v, VertexId::new(w as usize)))
            })
        })
    }

    fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        self.edges().map(|(e, _, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn view_contains_ball_vertices_and_edges() {
        let g = generators::path(8);
        let mut ledger = RoundLedger::new();
        let view = collect_view(&g, &[VertexId::new(3)], 2, &mut ledger);
        assert_eq!(ledger.total_rounds(), 2);
        let mut ids: Vec<usize> = view.vertices.iter().map(|v| v.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        // Edges fully inside the ball: (1,2),(2,3),(3,4),(4,5).
        assert_eq!(view.edges.len(), 4);
        assert!(view.contains_vertex(VertexId::new(5)));
        assert!(!view.contains_vertex(VertexId::new(6)));
        assert!(view.contains_edge(&g, EdgeId::new(2)));
        assert!(!view.contains_edge(&g, EdgeId::new(6)));
    }

    #[test]
    fn view_with_multiple_centers() {
        let g = generators::path(10);
        let mut ledger = RoundLedger::new();
        let view = collect_view(&g, &[VertexId::new(0), VertexId::new(9)], 1, &mut ledger);
        let mut ids: Vec<usize> = view.vertices.iter().map(|v| v.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 8, 9]);
    }

    #[test]
    fn power_graph_of_path() {
        let g = generators::path(5);
        let p2 = power_graph(&g, 2);
        // Edges: distance 1 (4 of them) + distance 2 (3 of them).
        assert_eq!(p2.num_edges(), 7);
        assert!(p2.is_simple());
        let p0 = power_graph(&g, 0);
        assert_eq!(p0.num_edges(), 0);
        // Large radius: complete graph.
        let p10 = power_graph(&g, 10);
        assert_eq!(p10.num_edges(), 5 * 4 / 2);
    }

    #[test]
    fn power_graph_ignores_multiplicity() {
        let g = generators::fat_path(3, 4);
        let p1 = power_graph(&g, 1);
        assert_eq!(p1.num_edges(), 3);
        assert!(p1.is_simple());
    }

    /// Sorted power-neighbor list of `v` according to the materialized oracle.
    fn oracle_neighbors(pg: &MultiGraph, v: VertexId) -> Vec<usize> {
        let mut ns: Vec<usize> = pg.neighbors(v).map(|u| u.index()).collect();
        ns.sort_unstable();
        ns
    }

    fn assert_matches_materialized(g: &MultiGraph, r: usize) {
        let pv = PowerView::new(g, r);
        let oracle = power_graph(g, r);
        for v in g.vertices() {
            let lazy: Vec<usize> = pv.incidences(v).map(|(w, _)| w.index()).collect();
            assert_eq!(lazy, oracle_neighbors(&oracle, v), "radius {r} vertex {v}");
            assert_eq!(pv.degree(v), oracle.degree(v));
            // Edge-id round trip: endpoints(e) recovers the incidence pair.
            for (w, e) in pv.incidences(v) {
                let (a, b) = pv.endpoints(e);
                assert_eq!((a.min(b), a.max(b)), (v.min(w), v.max(w)));
            }
        }
        // The lazy edge enumeration sees each power edge exactly once.
        assert_eq!(pv.edges().count(), oracle.num_edges());
        assert_eq!(pv.edge_ids().count(), oracle.num_edges());
    }

    #[test]
    fn power_view_matches_materialized_on_path_and_grid() {
        let path = generators::path(9);
        for r in [0, 1, 2, 3, 8, 20] {
            assert_matches_materialized(&path, r);
        }
        let grid = generators::grid(4, 3);
        for r in [0, 1, 2, 5, 10] {
            assert_matches_materialized(&grid, r);
        }
    }

    #[test]
    fn power_view_cache_hits_on_repeat_queries() {
        let g = generators::grid(5, 5);
        let pv = PowerView::new(&g, 3);
        let first: Vec<_> = pv.incidences(VertexId::new(12)).collect();
        let again: Vec<_> = pv.incidences(VertexId::new(12)).collect();
        assert_eq!(first, again);
        let stats = pv.stats();
        assert_eq!(stats.ball_expansions, 1);
        assert!(stats.cache_hits >= 1);
    }

    #[test]
    fn power_view_cache_evicts_under_budget_pressure() {
        // A clique power view has balls of size n-1; a tiny budget forces
        // evictions while answers stay correct.
        let g = generators::complete_graph(40);
        let pv = PowerView::new(&g, 2);
        {
            let mut inner = pv.inner.borrow_mut();
            inner.cache.budget_words = 80; // room for ~2 balls
        }
        for round in 0..3 {
            for v in g.vertices() {
                assert_eq!(pv.degree(v), 39, "round {round} vertex {v}");
            }
        }
        let inner = pv.inner.borrow();
        assert!(inner.cache.cached_words <= 80 + 39, "budget enforced");
        drop(inner);
        let stats = pv.stats();
        assert!(stats.ball_expansions >= 40, "evictions force re-expansion");
    }

    #[test]
    fn power_view_handles_graphs_above_the_pair_encoded_cap() {
        // Regression for the old `u16::MAX` cap: above it, edge ids come
        // from the lazy interner instead of the `u·n + w` pair encoding.
        let n = 70_000;
        assert!(n > PowerView::<MultiGraph>::PAIR_ENCODED_MAX);
        let g = generators::path(n);
        let pv = PowerView::new(&g, 2);
        let v = VertexId::new(35_000);
        let ns: Vec<usize> = pv.incidences(v).map(|(w, _)| w.index()).collect();
        assert_eq!(ns, vec![34_998, 34_999, 35_001, 35_002]);
        assert_eq!(pv.degree(VertexId::new(0)), 2);
        // Endpoint round trip through the interner, and id stability: the
        // same power edge queried from either endpoint yields one id.
        let mut seen = HashMap::new();
        for v in [VertexId::new(0), v, VertexId::new(10), VertexId::new(11)] {
            for (w, e) in pv.incidences(v) {
                let (a, b) = pv.endpoints(e);
                assert_eq!((a.min(b), a.max(b)), (v.min(w), v.max(w)));
                if let Some(prev) = seen.insert((v.min(w), v.max(w)), e) {
                    assert_eq!(prev, e, "edge id must be stable across queries");
                }
            }
        }
        // Full lazy enumeration still sees each power edge exactly once:
        // path^2 has (n-1) + (n-2) edges. Afterwards every edge has been
        // interned, so num_edges (the id span) matches.
        assert_eq!(pv.edges().count(), 2 * n - 3);
        assert_eq!(pv.num_edges(), 2 * n - 3);
    }

    /// A topology-free stand-in that only claims a vertex count, so the
    /// constructor guard can be exercised without allocating `O(n)` state.
    struct ClaimedVertexCount(usize);

    impl GraphView for ClaimedVertexCount {
        fn num_vertices(&self) -> usize {
            self.0
        }
        fn num_edges(&self) -> usize {
            0
        }
        fn endpoints(&self, _: EdgeId) -> (VertexId, VertexId) {
            unreachable!("edgeless")
        }
        fn degree(&self, _: VertexId) -> usize {
            0
        }
        fn incidences(&self, _: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
            std::iter::empty()
        }
    }

    #[test]
    #[should_panic(expected = "PowerView supports at most")]
    fn power_view_rejects_oversized_graphs() {
        let g = ClaimedVertexCount(PowerView::<ClaimedVertexCount>::MAX_VERTICES + 1);
        let _ = PowerView::new(&g, 1);
    }
}
