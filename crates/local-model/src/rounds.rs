//! Round accounting for the LOCAL model.
//!
//! The complexity measure of the LOCAL model is the number of synchronous
//! communication rounds. Algorithms in this workspace are executed by a
//! central simulator, so every phase *charges* the number of rounds the
//! distributed execution would have used to a [`RoundLedger`]. The ledger
//! keeps per-phase provenance so the benchmark harness can report where the
//! rounds went (network decomposition, cluster processing, recoloring, ...).

use forest_obs::LazyCounter;
use std::fmt;

/// LOCAL rounds charged process-wide, as a typed `forest-obs` counter.
/// Counted in [`RoundLedger::charge`] only — [`RoundLedger::absorb`] moves
/// charges between ledgers without re-charging, so shard-local rounds are
/// counted exactly once.
static ROUNDS_CHARGED: LazyCounter = LazyCounter::new("local_model.rounds_charged_total");
/// Number of individual [`RoundLedger::charge`] calls process-wide.
static CHARGES: LazyCounter = LazyCounter::new("local_model.charges_total");

/// A single charged phase of a distributed algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundCharge {
    /// Human-readable label of the phase (e.g. `"network decomposition"`).
    pub label: String,
    /// Number of LOCAL rounds charged by the phase.
    pub rounds: usize,
}

/// Accumulates the LOCAL round cost of an algorithm execution, phase by phase.
///
/// ```
/// use local_model::RoundLedger;
/// let mut ledger = RoundLedger::new();
/// ledger.charge("H-partition", 12);
/// ledger.charge("recoloring", 3);
/// assert_eq!(ledger.total_rounds(), 15);
/// assert_eq!(ledger.charges().len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundLedger {
    charges: Vec<RoundCharge>,
}

impl RoundLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Charges `rounds` LOCAL rounds under the given phase label.
    pub fn charge(&mut self, label: impl Into<String>, rounds: usize) {
        ROUNDS_CHARGED.add(rounds as u64);
        CHARGES.inc();
        self.charges.push(RoundCharge {
            label: label.into(),
            rounds,
        });
    }

    /// Total rounds charged so far.
    pub fn total_rounds(&self) -> usize {
        self.charges.iter().map(|c| c.rounds).sum()
    }

    /// The individual charges in the order they were made.
    pub fn charges(&self) -> &[RoundCharge] {
        &self.charges
    }

    /// Sum of rounds charged under labels for which `matches` returns true.
    pub fn rounds_for<F>(&self, mut matches: F) -> usize
    where
        F: FnMut(&str) -> bool,
    {
        self.charges
            .iter()
            .filter(|c| matches(&c.label))
            .map(|c| c.rounds)
            .sum()
    }

    /// Absorbs all charges of `other`, prefixing their labels.
    pub fn absorb(&mut self, prefix: &str, other: RoundLedger) {
        for c in other.charges {
            self.charges.push(RoundCharge {
                label: format!("{prefix}/{}", c.label),
                rounds: c.rounds,
            });
        }
    }

    /// Clears all charges.
    pub fn clear(&mut self) {
        self.charges.clear();
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total LOCAL rounds: {}", self.total_rounds())?;
        for c in &self.charges {
            writeln!(f, "  {:>8} rounds  {}", c.rounds, c.label)?;
        }
        Ok(())
    }
}

/// Standard round-cost formulas shared by the algorithms, so that the charged
/// quantities stay consistent with the paper's statements.
pub mod costs {
    /// Rounds needed to collect the radius-`r` neighborhood of every vertex
    /// (simulating `G^r` costs `O(r)` rounds of `G`).
    pub fn collect_radius(r: usize) -> usize {
        r.max(1)
    }

    /// Rounds charged for an `(O(log n), O(log n))` network decomposition of
    /// the power graph `G^d`: `O(d · log² n)` (Elkin–Neiman style construction
    /// simulated on the power graph).
    pub fn network_decomposition(n: usize, power: usize) -> usize {
        let log_n = log2_ceil(n).max(1);
        power.max(1) * log_n * log_n
    }

    /// Rounds charged for an MPX `(O(log n / β), β)` partial network
    /// decomposition: `O(log n / β)`.
    pub fn partial_network_decomposition(n: usize, beta: f64) -> usize {
        let log_n = log2_ceil(n).max(1) as f64;
        (log_n / beta.max(1e-9)).ceil() as usize
    }

    /// Rounds charged for the distributed Lovász Local Lemma algorithm of
    /// Chung–Pettie–Su: `O(log n)` resampling rounds, each implementable in
    /// `dependency_radius` LOCAL rounds.
    pub fn lll(n: usize, dependency_radius: usize) -> usize {
        log2_ceil(n).max(1) * dependency_radius.max(1)
    }

    /// Ceiling of log2 (0 for n <= 1).
    pub fn log2_ceil(n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        }
    }

    /// Natural-log-based `⌈ln n⌉`, used by the `O(log n / ε)` formulas.
    pub fn ln_ceil(n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            (n as f64).ln().ceil() as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_charges() {
        let mut ledger = RoundLedger::new();
        assert_eq!(ledger.total_rounds(), 0);
        ledger.charge("phase-a", 5);
        ledger.charge("phase-b", 7);
        assert_eq!(ledger.total_rounds(), 12);
        assert_eq!(ledger.charges().len(), 2);
        assert_eq!(ledger.charges()[0].label, "phase-a");
        assert_eq!(ledger.rounds_for(|l| l == "phase-b"), 7);
    }

    #[test]
    fn absorb_prefixes_labels() {
        let mut outer = RoundLedger::new();
        outer.charge("setup", 1);
        let mut inner = RoundLedger::new();
        inner.charge("cut", 3);
        outer.absorb("cluster-0", inner);
        assert_eq!(outer.total_rounds(), 4);
        assert_eq!(outer.charges()[1].label, "cluster-0/cut");
    }

    #[test]
    fn clear_resets_ledger() {
        let mut ledger = RoundLedger::new();
        ledger.charge("x", 2);
        ledger.clear();
        assert_eq!(ledger.total_rounds(), 0);
        assert!(ledger.charges().is_empty());
    }

    #[test]
    fn display_mentions_total() {
        let mut ledger = RoundLedger::new();
        ledger.charge("x", 2);
        let text = ledger.to_string();
        assert!(text.contains("total LOCAL rounds: 2"));
        assert!(text.contains('x'));
    }

    #[test]
    fn log_helpers() {
        assert_eq!(costs::log2_ceil(0), 0);
        assert_eq!(costs::log2_ceil(1), 0);
        assert_eq!(costs::log2_ceil(2), 1);
        assert_eq!(costs::log2_ceil(3), 2);
        assert_eq!(costs::log2_ceil(1024), 10);
        assert_eq!(costs::log2_ceil(1025), 11);
        assert_eq!(costs::ln_ceil(1), 0);
        assert!(costs::ln_ceil(1000) >= 7);
    }

    #[test]
    fn cost_formulas_are_monotone() {
        assert!(costs::network_decomposition(1024, 2) >= costs::network_decomposition(64, 2));
        assert!(costs::network_decomposition(64, 4) >= costs::network_decomposition(64, 2));
        assert!(
            costs::partial_network_decomposition(1024, 0.1)
                >= costs::partial_network_decomposition(1024, 0.5)
        );
        assert!(costs::lll(1 << 20, 3) >= costs::lll(1 << 10, 3));
        assert!(costs::collect_radius(0) >= 1);
    }
}
