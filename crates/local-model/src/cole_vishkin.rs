//! Cole–Vishkin coloring of rooted forests.
//!
//! Theorem 2.1(3) of the paper turns an acyclic `t`-orientation into a
//! `3t`-star-forest decomposition by 3-coloring the vertices of each rooted
//! tree with the Cole–Vishkin procedure in `O(log* n)` rounds. This module
//! implements that procedure faithfully on the per-color rooted forests: the
//! iterated bit-trick reduction to 6 colors, followed by the shift-down and
//! color-elimination phase down to 3 colors.

use crate::rounds::RoundLedger;
use forest_graph::VertexId;

/// A rooted forest given by parent pointers (`None` for roots).
///
/// This is deliberately decoupled from [`forest_graph::MultiGraph`]: the
/// callers (Theorem 2.1(3)) build one rooted forest per out-edge label, whose
/// parent pointers come from the orientation rather than from a subgraph.
#[derive(Clone, Debug)]
pub struct RootedForestView {
    /// Parent of each vertex, `None` for roots.
    pub parent: Vec<Option<VertexId>>,
}

impl RootedForestView {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the view has no vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Validates that the parent pointers are acyclic (a genuine forest).
    pub fn is_acyclic(&self) -> bool {
        let n = self.parent.len();
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; n];
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut chain = Vec::new();
            let mut cur = start;
            loop {
                if state[cur] == 1 {
                    return false;
                }
                if state[cur] == 2 {
                    break;
                }
                state[cur] = 1;
                chain.push(cur);
                match self.parent[cur] {
                    Some(p) => cur = p.index(),
                    None => break,
                }
            }
            for v in chain {
                state[v] = 2;
            }
        }
        true
    }
}

/// Result of the Cole–Vishkin 3-coloring.
#[derive(Clone, Debug)]
pub struct TreeColoring {
    /// Color of each vertex, in `{0, 1, 2}`.
    pub color: Vec<u8>,
    /// Number of LOCAL rounds used (`O(log* n)`).
    pub rounds: usize,
}

/// Index of the lowest bit where `a` and `b` differ (they must differ).
fn lowest_differing_bit(a: u64, b: u64) -> u32 {
    debug_assert_ne!(a, b);
    (a ^ b).trailing_zeros()
}

/// Properly 3-colors the vertices of a rooted forest with the Cole–Vishkin
/// procedure, charging the used rounds to `ledger`.
///
/// # Panics
///
/// Panics if the parent pointers contain a cycle.
pub fn cole_vishkin_three_coloring(
    forest: &RootedForestView,
    ledger: &mut RoundLedger,
) -> TreeColoring {
    assert!(forest.is_acyclic(), "parent pointers must form a forest");
    let n = forest.len();
    if n == 0 {
        return TreeColoring {
            color: Vec::new(),
            rounds: 0,
        };
    }
    // Start from the unique IDs as colors.
    let mut colors: Vec<u64> = (0..n as u64).collect();
    let mut rounds = 0usize;
    // Iterated Cole–Vishkin reduction: new color = 2 * (index of lowest
    // differing bit with the parent) + (own bit at that index). Roots pretend
    // their parent has a different color (flip the lowest bit of their own).
    // Starting from 64-bit identifiers the colors shrink to {0..5} within
    // O(log* n) iterations.
    while colors.iter().any(|&c| c >= 6) {
        let snapshot = colors.clone();
        for v in 0..n {
            let own = snapshot[v];
            let parent_color = match forest.parent[v] {
                Some(p) => snapshot[p.index()],
                // Roots compare against a virtual parent that differs in bit 0.
                None => own ^ 1,
            };
            let idx = lowest_differing_bit(own, parent_color);
            colors[v] = 2 * u64::from(idx) + ((own >> idx) & 1);
        }
        rounds += 1;
        assert!(rounds <= 64, "Cole-Vishkin reduction failed to converge");
    }
    // At this point colors are in {0..5} and adjacent (child, parent) pairs
    // differ. Eliminate colors 5, 4, 3 one at a time using shift-down.
    let mut colors: Vec<u8> = colors
        .iter()
        .map(|&c| u8::try_from(c).expect("Cole-Vishkin colors reduced into 0..6"))
        .collect();
    for eliminate in (3u8..6).rev() {
        // Shift down: every non-root vertex adopts its parent's color; roots
        // pick a color different from their own previous color (and hence
        // different from their children's new color, which is the root's old
        // color). This keeps the coloring proper and makes siblings agree.
        let snapshot = colors.clone();
        for v in 0..n {
            colors[v] = match forest.parent[v] {
                Some(p) => snapshot[p.index()],
                None => (snapshot[v] + 1) % 3,
            };
        }
        rounds += 1;
        // Recolor vertices currently colored `eliminate` with a color in
        // {0,1,2} unused by their parent and children. After shift-down all
        // children share the same color, so parent + children occupy at most 2
        // colors and a free one exists.
        let snapshot = colors.clone();
        let mut child_color: Vec<Option<u8>> = vec![None; n];
        for (v, parent) in forest.parent.iter().enumerate() {
            if let Some(p) = parent {
                child_color[p.index()] = Some(snapshot[v]);
            }
        }
        for v in 0..n {
            if snapshot[v] != eliminate {
                continue;
            }
            let parent_color = forest.parent[v].map(|p| snapshot[p.index()]);
            let free = (0u8..3)
                .find(|&c| Some(c) != parent_color && Some(c) != child_color[v])
                .expect("three colors always leave one free");
            colors[v] = free;
        }
        rounds += 1;
    }
    ledger.charge("Cole-Vishkin 3-coloring", rounds);
    TreeColoring {
        color: colors,
        rounds,
    }
}

/// Checks that a coloring is proper on the rooted forest (every non-root
/// differs from its parent).
pub fn is_proper_coloring(forest: &RootedForestView, color: &[u8]) -> bool {
    forest
        .parent
        .iter()
        .enumerate()
        .all(|(v, p)| p.is_none_or(|p| color[v] != color[p.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn path_forest(n: usize) -> RootedForestView {
        // 0 <- 1 <- 2 <- ... (vertex i's parent is i-1).
        RootedForestView {
            parent: (0..n)
                .map(|i| {
                    if i == 0 {
                        None
                    } else {
                        Some(VertexId::new(i - 1))
                    }
                })
                .collect(),
        }
    }

    fn random_forest(n: usize, seed: u64) -> RootedForestView {
        let mut rng = StdRng::seed_from_u64(seed);
        RootedForestView {
            parent: (0..n)
                .map(|i| {
                    if i == 0 || rng.gen_bool(0.1) {
                        None
                    } else {
                        Some(VertexId::new(rng.gen_range(0..i)))
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn colors_path_properly_with_three_colors() {
        let forest = path_forest(200);
        let mut ledger = RoundLedger::new();
        let coloring = cole_vishkin_three_coloring(&forest, &mut ledger);
        assert!(coloring.color.iter().all(|&c| c < 3));
        assert!(is_proper_coloring(&forest, &coloring.color));
        assert!(ledger.total_rounds() > 0);
        // O(log* n) + O(1): a generous constant bound.
        assert!(coloring.rounds <= 20, "rounds = {}", coloring.rounds);
    }

    #[test]
    fn colors_random_forests_properly() {
        for seed in 0..5u64 {
            let forest = random_forest(300, seed);
            assert!(forest.is_acyclic());
            let mut ledger = RoundLedger::new();
            let coloring = cole_vishkin_three_coloring(&forest, &mut ledger);
            assert!(coloring.color.iter().all(|&c| c < 3));
            assert!(is_proper_coloring(&forest, &coloring.color), "seed {seed}");
        }
    }

    #[test]
    fn star_forest_colors() {
        // A star rooted at 0: all others are children of 0.
        let forest = RootedForestView {
            parent: (0..50)
                .map(|i| if i == 0 { None } else { Some(VertexId::new(0)) })
                .collect(),
        };
        let mut ledger = RoundLedger::new();
        let coloring = cole_vishkin_three_coloring(&forest, &mut ledger);
        assert!(is_proper_coloring(&forest, &coloring.color));
    }

    #[test]
    fn empty_and_singleton_forests() {
        let mut ledger = RoundLedger::new();
        let empty = RootedForestView { parent: Vec::new() };
        assert!(empty.is_empty());
        let coloring = cole_vishkin_three_coloring(&empty, &mut ledger);
        assert!(coloring.color.is_empty());
        let single = RootedForestView { parent: vec![None] };
        let coloring = cole_vishkin_three_coloring(&single, &mut ledger);
        assert_eq!(coloring.color.len(), 1);
        assert!(coloring.color[0] < 3);
    }

    #[test]
    fn cycle_detection_rejects_bad_input() {
        let bad = RootedForestView {
            parent: vec![Some(VertexId::new(1)), Some(VertexId::new(0))],
        };
        assert!(!bad.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "must form a forest")]
    fn coloring_panics_on_cycle() {
        let bad = RootedForestView {
            parent: vec![Some(VertexId::new(1)), Some(VertexId::new(0))],
        };
        let mut ledger = RoundLedger::new();
        cole_vishkin_three_coloring(&bad, &mut ledger);
    }

    #[test]
    fn lowest_differing_bit_examples() {
        assert_eq!(lowest_differing_bit(0b1010, 0b1000), 1);
        assert_eq!(lowest_differing_bit(5, 4), 0);
        assert_eq!(lowest_differing_bit(8, 0), 3);
    }
}
