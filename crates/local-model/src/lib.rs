//! A simulator for the distributed LOCAL model.
//!
//! The algorithms of Harris–Su–Vu (PODC 2021) are stated in the LOCAL model:
//! synchronous rounds, unbounded message sizes, unique `O(log n)`-bit
//! identifiers, and complexity measured in rounds. This crate provides the
//! machinery their implementations in the `forest-decomp` crate rely on:
//!
//! * [`SyncNetwork`] — a faithful synchronous message-passing simulator for
//!   the algorithms that are naturally expressed vertex-by-vertex.
//! * [`RoundLedger`] — round accounting with per-phase provenance for the
//!   parts that are simulated centrally (cluster-local computations), plus
//!   the standard cost formulas in [`rounds::costs`].
//! * [`views`] — radius-`r` neighborhood views and power graphs `G^r`,
//!   including the lazy [`PowerView`] the engines use to run on `G^r`
//!   without ever materializing it.
//! * [`decomposition`] — `(O(log n), O(log n))` network decompositions and
//!   Miller–Peng–Xu partial network decompositions.
//! * [`lll`] — the distributed Lovász Local Lemma via parallel resampling.
//! * [`cole_vishkin`] — `O(log* n)` 3-coloring of rooted forests.
//!
//! # Example: measuring the round cost of collecting a view
//!
//! ```
//! use forest_graph::{generators, VertexId};
//! use local_model::{views, RoundLedger};
//!
//! let g = generators::grid(8, 8);
//! let mut ledger = RoundLedger::new();
//! let view = views::collect_view(&g, &[VertexId::new(0)], 3, &mut ledger);
//! assert_eq!(ledger.total_rounds(), 3);
//! assert!(view.vertices.len() >= 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cole_vishkin;
pub mod decomposition;
pub mod lll;
pub mod network;
pub mod rounds;
pub mod views;

pub use cole_vishkin::{cole_vishkin_three_coloring, RootedForestView, TreeColoring};
pub use decomposition::{
    network_decomposition, network_decomposition_with_probe, partial_network_decomposition,
    NetworkDecomposition, PartialNetworkDecomposition,
};
pub use lll::{solve_lll, BadEvent, LllInstance, LllOutcome};
pub use network::{NodeInfo, SyncNetwork};
pub use rounds::{RoundCharge, RoundLedger};
pub use views::{
    collect_view, power_graph, NeighborhoodView, PowerIncidences, PowerView, PowerViewStats,
};
