//! Algorithm 2: local list-forest decomposition via augmentation
//! (Section 4, Theorems 4.1 and 4.5).
//!
//! The algorithm computes an `(O(log n), O(log n))` network decomposition of
//! the power graph `G^{2(R+R')}` and processes its classes one at a time. For
//! every cluster `C` of the current class it:
//!
//! 1. collects the augmentation region `C' = N^{R'}(C)` and the view
//!    `C'' = N^{R+R'}(C)`,
//! 2. runs [`CUT`](crate::cut) so that no monochromatic path leaves the view
//!    from `C'` (the removed edges become the *leftover graph* `E₁`),
//! 3. colors every still-uncolored edge incident to `C` by finding and
//!    applying an augmenting sequence inside the view.
//!
//! The output is a list-forest decomposition of `E₀ = E \ E₁` plus the
//! leftover edge set `E₁`, whose pseudo-arboricity is kept small by the CUT
//! load balancing; Theorems 4.6 / 4.10 (module [`crate::combine`]) recolor
//! `E₁` with `O(εα)` extra colors.
//!
//! On bench-scale graphs the radii `R, R'` derived from the paper's formulas
//! usually exceed the graph diameter, in which case the network decomposition
//! degenerates to one cluster per connected component and CUT has nothing to
//! do — exactly as the theory predicts (the locality machinery only matters
//! when `log n / ε` is far below the diameter). The configuration lets
//! benchmarks force smaller radii to exercise the full machinery.
//!
//! # Ball-local execution
//!
//! The decomposition of `G^{2(R+R')}` runs on the lazy
//! [`PowerView`](local_model::PowerView) — no `O(n²)`-edge power graph is
//! ever materialized (the engine falls back to
//! [`power_graph`](local_model::power_graph) only above
//! `PowerView::MAX_VERTICES`; the ledger charges are identical either way).
//! Each cluster is then processed inside its own ball: the region BFS stops
//! at radius `R + R'`, and all masks, scope lists and CUT working memory are
//! carried in scratch buffers reset via touched-id lists
//! ([`CutScratch`](crate::cut::CutScratch) and epoch-stamped sets), so a
//! cluster costs time proportional to its ball, not to the whole graph. The
//! output — colors, leftover, RNG consumption, ledger — is byte-identical to
//! the historical whole-graph implementation; [`PipelineStats`] exposes the
//! perf counters.

use crate::augmenting::{AugmentationContext, ColorConnectivity};
use crate::cut::{execute_cut_scoped, CutOutcome, CutScope, CutScratch, CutState, CutStrategy};
use crate::error::{check_epsilon, FdError};
use crate::hpartition::{acyclic_orientation, h_partition};
use forest_graph::decomposition::PartialEdgeColoring;
use forest_graph::kernels::{self, StampSet};
use forest_graph::traversal::{connected_components, BfsScratch};
use forest_graph::{CsrGraph, EdgeId, GraphView, ListAssignment, MultiGraph, VertexId};
use forest_obs::{clock::Stopwatch, LazyCounter, Span};
use local_model::rounds::costs;
use local_model::{
    network_decomposition, network_decomposition_with_probe, PowerView, RoundLedger,
};
use rand::Rng;

/// Typed mirrors of the [`PipelineStats`] counters in the `forest-obs`
/// registry (cumulative across runs).
static BFS_NANOS: LazyCounter = LazyCounter::new("algo2.cluster_bfs_nanos_total");
static BALL_EXPANSIONS: LazyCounter = LazyCounter::new("algo2.ball_expansions_total");
static CACHE_HITS: LazyCounter = LazyCounter::new("algo2.cache_hits_total");
static CLUSTERS: LazyCounter = LazyCounter::new("algo2.clusters_total");
static RUNS: LazyCounter = LazyCounter::new("algo2.runs_total");

/// Which CUT rule Algorithm 2 should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutStrategyKind {
    /// Depth-modulo layer deletion (Theorem 4.2(1)/(2)); the default.
    DepthModulo,
    /// Conditioned sampling against a fixed `3α*`-orientation
    /// (Theorem 4.2(3)/(4)).
    ConditionedSampling,
}

/// Configuration of Algorithm 2.
#[derive(Clone, Debug)]
pub struct Algorithm2Config {
    /// The slack parameter `ε`.
    pub epsilon: f64,
    /// An upper bound on the arboricity `α` (the palettes must have at least
    /// `⌈(1+ε)α⌉` colors).
    pub alpha: usize,
    /// CUT rule.
    pub cut: CutStrategyKind,
    /// Override for the CUT radius `R` (`None` = derive `Θ(log n / ε)`).
    pub cut_radius: Option<usize>,
    /// Override for the augmentation radius `R'` (`None` = derive
    /// `Θ(log n / ε)`).
    pub locality_radius: Option<usize>,
    /// Deterministically complete CUT when the randomized rule leaves an
    /// escaping path (keeps the output exact at bench scale).
    pub force_good_cut: bool,
    /// Cap on the growth iterations of each augmenting-sequence search
    /// (`None` = `4 + 8·⌈log₂ n / ε⌉`).
    pub max_augment_iterations: Option<usize>,
}

impl Algorithm2Config {
    /// A configuration with the paper's default choices.
    pub fn new(epsilon: f64, alpha: usize) -> Self {
        Algorithm2Config {
            epsilon,
            alpha,
            cut: CutStrategyKind::DepthModulo,
            cut_radius: None,
            locality_radius: None,
            force_good_cut: true,
            max_augment_iterations: None,
        }
    }

    /// Switches to the conditioned-sampling CUT rule.
    pub fn with_conditioned_sampling(mut self) -> Self {
        self.cut = CutStrategyKind::ConditionedSampling;
        self
    }

    /// Overrides both radii (useful for benchmarks that want to exercise CUT
    /// on graphs whose diameter is below the formula-derived radii).
    pub fn with_radii(mut self, cut_radius: usize, locality_radius: usize) -> Self {
        self.cut_radius = Some(cut_radius);
        self.locality_radius = Some(locality_radius);
        self
    }
}

/// Performance counters of the ball-local cluster pipeline.
///
/// Pure observability: none of these influence the decomposition, the RNG
/// consumption or the round ledger, and they are not part of any canonical
/// report encoding. The benchmarks surface them to track the virtual
/// power-graph path.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Nanoseconds spent in the per-cluster bounded region BFS.
    pub cluster_bfs_nanos: u64,
    /// Ball expansions performed by the lazy [`PowerView`] (0 when the
    /// trivial or materialized path ran).
    pub power_ball_expansions: u64,
    /// Ball-cache hits inside the lazy [`PowerView`].
    pub power_cache_hits: u64,
    /// Per-class deltas of the [`PowerView`] counters during the network
    /// decomposition (empty when the trivial or materialized path ran).
    /// One ball cache serves every class, so later classes — which revisit
    /// vertices deferred by earlier carving — show hits where the first
    /// class shows expansions.
    pub power_layer_deltas: Vec<PowerLayerDelta>,
    /// Whether the network decomposition ran on the lazy [`PowerView`]
    /// (as opposed to the trivial path or a materialized power graph).
    pub used_power_view: bool,
    /// Long-lived scratch buffers allocated by the cluster pipeline for the
    /// whole run. The pre-virtual pipeline allocated several `O(n)` / `O(m)`
    /// buffers *per cluster*; now the count is a per-run constant.
    pub scratch_allocations: u64,
}

/// [`PowerView`] counter movement attributable to one network-decomposition
/// class (pure observability, like the rest of [`PipelineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PowerLayerDelta {
    /// The network-decomposition class the carving pass belonged to.
    pub class: usize,
    /// Balls expanded by a fresh bounded BFS while carving this class.
    pub ball_expansions: u64,
    /// Balls answered from the cache shared across classes.
    pub cache_hits: u64,
}

/// Output of Algorithm 2.
#[derive(Clone, Debug)]
pub struct Algorithm2Output {
    /// List-forest decomposition of the kept edges `E₀`; leftover edges are
    /// uncolored here.
    pub coloring: PartialEdgeColoring,
    /// The leftover edges `E₁` removed by CUT (or that failed augmentation).
    pub leftover: Vec<EdgeId>,
    /// Whether every CUT invocation was good before deterministic completion.
    pub all_cuts_good: bool,
    /// Number of edges removed by the deterministic CUT completion.
    pub forced_cut_removals: usize,
    /// Edges whose restricted augmentation failed and had to fall back to an
    /// unrestricted search.
    pub fallback_unrestricted: usize,
    /// Edges that could not be colored at all and were moved to the leftover.
    pub fallback_uncolored: usize,
    /// Maximum CUT load charged to any vertex (bounds the leftover
    /// pseudo-arboricity).
    pub max_cut_load: usize,
    /// Number of network-decomposition classes processed.
    pub num_classes: usize,
    /// Number of clusters processed.
    pub num_clusters: usize,
    /// Radii actually used.
    pub radii: (usize, usize),
    /// Round accounting.
    pub ledger: RoundLedger,
    /// Perf counters of the ball-local pipeline (observability only).
    pub pipeline_stats: PipelineStats,
}

fn derived_radius(n: usize, epsilon: f64) -> usize {
    let ln_n = costs::ln_ceil(n).max(1) as f64;
    ((ln_n / epsilon).ceil() as usize).max(2)
}

/// Runs Algorithm 2 on `g` with the given palettes, freezing the topology to
/// CSR once and running every phase (BFS regions, CUT, augmentation) over the
/// flat arrays. Callers that already hold a frozen topology should use
/// [`algorithm2_frozen`].
///
/// Every palette must contain at least `⌈(1+ε)α⌉` colors.
///
/// # Errors
///
/// Returns an error for invalid `ε`, palettes that are too small, or when an
/// augmentation cannot be completed even without locality restriction (which
/// indicates the arboricity bound is wrong).
pub fn algorithm2<R: Rng + ?Sized>(
    g: &MultiGraph,
    lists: &ListAssignment,
    config: &Algorithm2Config,
    rng: &mut R,
) -> Result<Algorithm2Output, FdError> {
    let csr = CsrGraph::from_multigraph(g);
    algorithm2_frozen(&csr, lists, config, rng)
}

/// [`algorithm2`] over a pre-frozen topology: any [`GraphView`] qualifies —
/// an owned CSR, a borrowed shard view, an mmap-backed graph. The facade
/// freezes once per request and threads the view through every engine
/// phase; the thaw-free sharded pipeline feeds `CsrRef` shards straight in.
///
/// # Errors
///
/// Same as [`algorithm2`].
pub fn algorithm2_frozen<C: GraphView, R: Rng + ?Sized>(
    csr: &C,
    lists: &ListAssignment,
    config: &Algorithm2Config,
    rng: &mut R,
) -> Result<Algorithm2Output, FdError> {
    check_epsilon(config.epsilon)?;
    RUNS.inc();
    let n = csr.num_vertices();
    let m = csr.num_edges();
    let mut ledger = RoundLedger::new();
    if m == 0 {
        return Ok(Algorithm2Output {
            coloring: PartialEdgeColoring::new_uncolored(0),
            leftover: Vec::new(),
            all_cuts_good: true,
            forced_cut_removals: 0,
            fallback_unrestricted: 0,
            fallback_uncolored: 0,
            max_cut_load: 0,
            num_classes: 0,
            num_clusters: 0,
            radii: (0, 0),
            ledger,
            pipeline_stats: PipelineStats::default(),
        });
    }
    let needed = ((1.0 + config.epsilon) * config.alpha as f64).ceil() as usize;
    for e in csr.edge_ids() {
        if lists.palette(e).len() < needed {
            return Err(FdError::PaletteTooSmall {
                edge: e,
                needed,
                available: lists.palette(e).len(),
            });
        }
    }
    let locality_radius = config
        .locality_radius
        .unwrap_or_else(|| derived_radius(n, config.epsilon));
    let cut_radius = config
        .cut_radius
        .unwrap_or_else(|| 2 * derived_radius(n, config.epsilon));
    let max_iterations = config
        .max_augment_iterations
        .unwrap_or_else(|| 4 + 8 * derived_radius(n, config.epsilon));

    // Prepare the CUT state. Conditioned sampling needs a fixed orientation J
    // with out-degree O(alpha*).
    let strategy = match config.cut {
        CutStrategyKind::DepthModulo => CutStrategy::DepthModulo {
            levels: (cut_radius / 2).max(1),
        },
        CutStrategyKind::ConditionedSampling => {
            let load_cap = ((config.epsilon * config.alpha as f64).ceil() as usize).max(1);
            let probability = ((config.alpha as f64) * (costs::ln_ceil(n).max(1) as f64)
                / (0.5 * cut_radius as f64))
                .clamp(0.05, 1.0);
            CutStrategy::ConditionedSampling {
                probability,
                load_cap,
            }
        }
    };
    let mut cut_state = match config.cut {
        CutStrategyKind::DepthModulo => CutState::new(n),
        CutStrategyKind::ConditionedSampling => {
            let pseudo = forest_graph::orientation::pseudoarboricity(csr).max(1);
            let hp = h_partition(csr, 0.9, pseudo, &mut ledger)?;
            CutState::with_orientation(n, acyclic_orientation(csr, &hp))
        }
    };

    // Network decomposition of G^{2(R+R')}. When 2(R+R') reaches the graph
    // diameter the power graph is a disjoint union of cliques (one per
    // connected component) and the decomposition is trivial, so we avoid
    // materializing the power graph in that common case.
    let power = 2 * (cut_radius + locality_radius);
    let mut pipeline_stats = PipelineStats::default();
    // The bounded-BFS scratch serves the diameter bound here and the
    // per-cluster region collection below; it is allocated once per run.
    let mut region = BfsScratch::new(n);
    let diameter_upper = {
        // Double-BFS upper bound per connected component. A single pass
        // collects every component's representative (its minimum vertex) —
        // rescanning the vertex list per component would cost
        // O(n · num_components) — and each eccentricity BFS runs on the
        // epoch-stamped scratch, touching only that component (a
        // whole-graph distance array per component would again be
        // O(n · num_components), ruinous on fragmented shards).
        let (comp, num_comp) = connected_components(csr, |_| true);
        let mut repr: Vec<Option<VertexId>> = vec![None; num_comp];
        for v in csr.vertices() {
            let slot = &mut repr[comp[v.index()]];
            if slot.is_none() {
                *slot = Some(v);
            }
        }
        let mut bound = 0usize;
        for slot in &repr {
            let r = slot.expect("non-empty component");
            region.run_bounded(csr, &[r], usize::MAX, |_| true);
            // BFS order has nondecreasing distances, so the last visited
            // vertex realizes the eccentricity of `r`.
            let far = region
                .visited()
                .last()
                .map_or(0, |&far_v| region.distance(far_v));
            bound = bound.max(2 * far);
        }
        bound
    };
    let (classes, num_clusters_total): (Vec<Vec<Vec<VertexId>>>, usize) = if power >= diameter_upper
    {
        // Trivial decomposition: one class, one cluster per connected component.
        ledger.charge(
            "network decomposition of G^{2(R+R')} (trivial: radius exceeds diameter)",
            costs::network_decomposition(n, 1),
        );
        let (comp, num_comp) = connected_components(csr, |_| true);
        let mut clusters: Vec<Vec<VertexId>> = vec![Vec::new(); num_comp];
        for v in csr.vertices() {
            clusters[comp[v.index()]].push(v);
        }
        let count = clusters.len();
        (vec![clusters], count)
    } else {
        // Simulating the decomposition on G^power costs a factor `power`.
        ledger.charge(
            format!("simulate G^{power} for the network decomposition"),
            costs::network_decomposition(n, power),
        );
        // The decomposition runs on the lazy PowerView — adjacency in
        // G^power is answered by bounded-radius BFS balls on demand, so the
        // quadratic power graph is never materialized. Graphs beyond the
        // view's u32 vertex-index capacity fall back to materializing; both
        // paths produce identical clusters and identical ledger charges.
        let nd = if n <= PowerView::<C>::MAX_VERTICES {
            let pv = PowerView::new(csr, power);
            // One ball cache spans all carving classes; snapshot the view's
            // counters at each class boundary to attribute hits/expansions
            // per layer.
            let mut layer_deltas: Vec<PowerLayerDelta> = Vec::new();
            let mut last = local_model::PowerViewStats::default();
            let nd = network_decomposition_with_probe(&pv, &mut ledger, |class| {
                let now = pv.stats();
                layer_deltas.push(PowerLayerDelta {
                    class,
                    ball_expansions: now.ball_expansions - last.ball_expansions,
                    cache_hits: now.cache_hits - last.cache_hits,
                });
                last = now;
            });
            let stats = pv.stats();
            BALL_EXPANSIONS.add(stats.ball_expansions);
            CACHE_HITS.add(stats.cache_hits);
            pipeline_stats.power_ball_expansions = stats.ball_expansions;
            pipeline_stats.power_cache_hits = stats.cache_hits;
            pipeline_stats.power_layer_deltas = layer_deltas;
            pipeline_stats.used_power_view = true;
            nd
        } else {
            let pg = local_model::power_graph(csr, power);
            network_decomposition(&pg, &mut ledger)
        };
        let mut classes: Vec<Vec<Vec<VertexId>>> = vec![Vec::new(); nd.num_classes];
        for (cluster_id, members) in nd.clusters.iter().enumerate() {
            classes[nd.cluster_class[cluster_id]].push(members.clone());
        }
        let count = nd.clusters.len();
        (classes, count)
    };

    let mut coloring = PartialEdgeColoring::new_uncolored(m);
    let mut removed = vec![false; m];
    let mut leftover: Vec<EdgeId> = Vec::new();
    let mut all_cuts_good = true;
    let mut forced_cut_removals = 0usize;
    let mut fallback_unrestricted = 0usize;
    let mut fallback_uncolored = 0usize;
    let num_classes = classes.len();

    // Shared scratch for the whole cluster loop: every per-cluster structure
    // below is reset through the touched-id lists, never by an O(n) or O(m)
    // clear, so cluster cost is proportional to the ball it covers.
    let mut cut_scratch = CutScratch::new();
    let mut core = vec![false; n];
    let mut view = vec![false; n];
    let mut view_edges = vec![false; m];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut core_list: Vec<VertexId> = Vec::new();
    let mut scope_edges: Vec<EdgeId> = Vec::new();
    let mut view_edge_list: Vec<EdgeId> = Vec::new();
    let mut candidate_edges: Vec<EdgeId> = Vec::new();
    let mut edge_seen = StampSet::new(m);
    let mut conn = ColorConnectivity::new(n);
    let unrestricted = AugmentationContext::new(csr, lists);
    pipeline_stats.scratch_allocations = 12;
    CLUSTERS.add(num_clusters_total as u64);

    let _cluster_span = Span::enter("algo2.cluster_loop");
    for (class_index, clusters) in classes.iter().enumerate() {
        // All clusters of a class are processed in parallel in the LOCAL
        // model; the simulation charges the cluster-processing cost once per
        // class.
        ledger.charge(
            format!("process class {class_index} clusters"),
            (cut_radius + locality_radius) * costs::log2_ceil(n).max(1),
        );
        for cluster in clusters {
            // C' = N^{R'}(C), C'' = N^{R+R'}(C): one bounded BFS touches
            // exactly the view ball and nothing else.
            let ball_start = Stopwatch::start();
            region.run_bounded(csr, cluster, locality_radius + cut_radius, |_| true);
            touched.clear();
            touched.extend_from_slice(region.visited());
            touched.sort_unstable();
            core_list.clear();
            for &v in &touched {
                view[v.index()] = true;
                if region.distance(v) <= locality_radius {
                    core[v.index()] = true;
                    core_list.push(v);
                }
            }
            // Every edge with at least one endpoint in the view, ascending —
            // the CUT scope (escapes are half-in, half-out).
            kernels::gather_unique_sorted(
                touched.iter().map(|&v| csr.incident_edges(v)),
                |e: EdgeId| e.index(),
                &mut edge_seen,
                &mut scope_edges,
            );
            pipeline_stats.cluster_bfs_nanos += ball_start.elapsed_nanos();
            // CUT(C', R).
            let scope = CutScope {
                core_vertices: &core_list,
                view_vertices: &touched,
                edges: &scope_edges,
            };
            let outcome: CutOutcome = execute_cut_scoped(
                csr,
                &coloring,
                &scope,
                &core,
                &view,
                &strategy,
                &mut cut_state,
                config.force_good_cut,
                rng,
                &mut cut_scratch,
            );
            all_cuts_good &= outcome.good;
            forced_cut_removals += outcome.forced.len();
            for e in outcome.all_removed() {
                if !removed[e.index()] {
                    removed[e.index()] = true;
                    coloring.clear(e);
                    leftover.push(e);
                }
            }
            // Augment every uncolored, non-removed edge incident to C. The
            // restriction mask covers exactly the view-internal non-removed
            // edges; all of them are scope edges, and everything else stays
            // `false` from the previous cluster's cleanup.
            view_edge_list.clear();
            for &e in &scope_edges {
                let (u, v) = csr.endpoints(e);
                if !removed[e.index()] && view[u.index()] && view[v.index()] {
                    view_edges[e.index()] = true;
                    view_edge_list.push(e);
                }
            }
            let restricted = AugmentationContext::restricted(csr, lists, &view_edges);
            // The connectivity cache is scoped to this cluster: the edge
            // restriction (and the CUT removals above) changed since the
            // previous one.
            conn.invalidate_all();
            // Candidate edges: incident to the cluster, ascending — the same
            // visiting order as a whole-edge-list scan filtered on cluster
            // incidence.
            kernels::gather_unique_sorted(
                cluster.iter().map(|&v| csr.incident_edges(v)),
                |e: EdgeId| e.index(),
                &mut edge_seen,
                &mut candidate_edges,
            );
            for &e in &candidate_edges {
                if coloring.color(e).is_some() || removed[e.index()] {
                    continue;
                }
                if restricted
                    .augment_edge_connected(&mut coloring, &mut conn, e, max_iterations)
                    .is_ok()
                {
                    continue;
                }
                fallback_unrestricted += 1;
                match unrestricted.find_augmenting_sequence(&coloring, e, max_iterations) {
                    Some(seq) => {
                        // The unrestricted sequence may recolor edges the
                        // restricted cache tracks; invalidate what it touched.
                        for &(se, sc) in &seq.steps {
                            if let Some(old) = coloring.color(se) {
                                conn.invalidate(old);
                            }
                            conn.invalidate(sc);
                        }
                        crate::augmenting::apply_augmentation(&mut coloring, &seq);
                    }
                    None => {
                        // Give up on this edge: it joins the leftover set.
                        fallback_uncolored += 1;
                        removed[e.index()] = true;
                        leftover.push(e);
                    }
                }
            }
            // Reset the dense masks through the touched lists (O(ball)).
            for &v in &touched {
                core[v.index()] = false;
                view[v.index()] = false;
            }
            for &e in &view_edge_list {
                view_edges[e.index()] = false;
            }
        }
    }
    BFS_NANOS.add(pipeline_stats.cluster_bfs_nanos);

    Ok(Algorithm2Output {
        coloring,
        leftover,
        all_cuts_good,
        forced_cut_removals,
        fallback_unrestricted,
        fallback_uncolored,
        max_cut_load: cut_state.max_load(),
        num_classes,
        num_clusters: num_clusters_total,
        radii: (cut_radius, locality_radius),
        ledger,
        pipeline_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::decomposition::{
        validate_list_coloring, validate_partial_forest_decomposition,
    };
    use forest_graph::{generators, matroid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn check_output(g: &MultiGraph, lists: &ListAssignment, out: &Algorithm2Output) {
        validate_partial_forest_decomposition(g, &out.coloring).expect("E0 is an LFD");
        validate_list_coloring(g, &out.coloring, lists).expect("palettes respected");
        // Every edge is either colored or in the leftover.
        let leftover: HashSet<EdgeId> = out.leftover.iter().copied().collect();
        for e in g.edge_ids() {
            assert!(
                out.coloring.color(e).is_some() || leftover.contains(&e),
                "edge {e} neither colored nor leftover"
            );
        }
    }

    #[test]
    fn colors_planted_graph_with_small_slack() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::planted_forest_union(48, 3, &mut rng);
        let alpha = matroid::arboricity(&g);
        let lists = ListAssignment::uniform(g.num_edges(), ((1.5) * alpha as f64).ceil() as usize);
        let config = Algorithm2Config::new(0.5, alpha);
        let out = algorithm2(&g, &lists, &config, &mut rng).unwrap();
        check_output(&g, &lists, &out);
        // On a small planted graph the radii exceed the diameter, so there is
        // nothing to cut and everything gets colored.
        assert!(out.leftover.is_empty());
        assert_eq!(out.fallback_uncolored, 0);
        assert!(out.ledger.total_rounds() > 0);
    }

    #[test]
    fn respects_random_list_palettes() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::planted_forest_union(32, 2, &mut rng);
        let alpha = matroid::arboricity(&g);
        let k = ((1.5) * alpha as f64).ceil() as usize + 1;
        let lists = ListAssignment::random(g.num_edges(), 3 * k, k, &mut rng);
        let config = Algorithm2Config::new(0.5, alpha);
        let out = algorithm2(&g, &lists, &config, &mut rng).unwrap();
        check_output(&g, &lists, &out);
    }

    #[test]
    fn small_radii_exercise_cut_and_keep_leftover_small() {
        let mut rng = StdRng::seed_from_u64(9);
        // A long fat path: large diameter, arboricity 2.
        let g = generators::fat_path(120, 2);
        let alpha = 2;
        let lists = ListAssignment::uniform(g.num_edges(), 3);
        let config = Algorithm2Config::new(0.5, alpha).with_radii(8, 4);
        let out = algorithm2(&g, &lists, &config, &mut rng).unwrap();
        check_output(&g, &lists, &out);
        assert_eq!(out.radii, (8, 4));
        // CUT had real work to do (several classes / clusters).
        assert!(out.num_clusters >= 1);
        // The per-vertex CUT load (which bounds the leftover pseudo-arboricity)
        // stays small: at most one removal per color per class touching the
        // vertex. Allow generous slack for the tiny parameters of this test.
        assert!(
            out.max_cut_load <= 20,
            "cut load too large: {}",
            out.max_cut_load
        );
        // The leftover must stay a bounded fraction of the edges.
        assert!(
            out.leftover.len() <= g.num_edges() / 2,
            "leftover too large: {} of {}",
            out.leftover.len(),
            g.num_edges()
        );
    }

    #[test]
    fn pipeline_stats_attribute_power_counters_per_layer() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::fat_path(120, 2);
        let lists = ListAssignment::uniform(g.num_edges(), 3);
        let config = Algorithm2Config::new(0.5, 2).with_radii(8, 4);
        let out = algorithm2(&g, &lists, &config, &mut rng).unwrap();
        let stats = &out.pipeline_stats;
        assert!(stats.used_power_view);
        assert!(stats.power_ball_expansions > 0);
        // One delta per network-decomposition class, classes in order, and
        // the deltas partition the run totals exactly.
        assert_eq!(stats.power_layer_deltas.len(), out.num_classes);
        let (exp, hits) = stats
            .power_layer_deltas
            .iter()
            .fold((0u64, 0u64), |(e, h), d| {
                (e + d.ball_expansions, h + d.cache_hits)
            });
        assert_eq!(exp, stats.power_ball_expansions);
        assert_eq!(hits, stats.power_cache_hits);
        for (i, d) in stats.power_layer_deltas.iter().enumerate() {
            assert_eq!(d.class, i);
        }
    }

    #[test]
    fn conditioned_sampling_strategy_works_end_to_end() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::fat_path(80, 2);
        let lists = ListAssignment::uniform(g.num_edges(), 3);
        let config = Algorithm2Config::new(0.5, 2)
            .with_conditioned_sampling()
            .with_radii(10, 5);
        let out = algorithm2(&g, &lists, &config, &mut rng).unwrap();
        check_output(&g, &lists, &out);
    }

    #[test]
    fn rejects_small_palettes() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::planted_forest_union(20, 3, &mut rng);
        let lists = ListAssignment::uniform(g.num_edges(), 2);
        let config = Algorithm2Config::new(0.5, 3);
        assert!(matches!(
            algorithm2(&g, &lists, &config, &mut rng),
            Err(FdError::PaletteTooSmall { .. })
        ));
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = MultiGraph::new(7);
        let lists = ListAssignment::uniform(0, 1);
        let config = Algorithm2Config::new(0.5, 1);
        let out = algorithm2(&g, &lists, &config, &mut rng).unwrap();
        assert!(out.leftover.is_empty());
        assert_eq!(out.num_clusters, 0);
    }

    #[test]
    fn rejects_invalid_epsilon() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::path(4);
        let lists = ListAssignment::uniform(3, 2);
        let config = Algorithm2Config::new(1.5, 1);
        assert!(matches!(
            algorithm2(&g, &lists, &config, &mut rng),
            Err(FdError::InvalidEpsilon { .. })
        ));
    }
}
