//! Distributed `(1+ε)α` forest, list-forest and star-forest decompositions
//! behind one facade.
//!
//! This crate implements the algorithms of Harris, Su and Vu, *"On the
//! Locality of Nash-Williams Forest Decomposition and Star-Forest
//! Decomposition"* (PODC 2021), on top of the [`forest_graph`] substrate and
//! the [`local_model`] LOCAL-model simulator.
//!
//! # The `Decomposer` facade
//!
//! Every pipeline is reachable through the [`api`] module: build a
//! [`api::DecompositionRequest`] naming a problem kind (`Forest`,
//! `ListForest`, `StarForest`, `ListStarForest`, `Orientation`) and an engine
//! (`HarrisSuVu`, `BarenboimElkin`, `Folklore2Alpha`, `ExactMatroid`), then
//! run it with a [`api::Decomposer`]:
//!
//! ```
//! use forest_decomp::api::{Decomposer, DecompositionRequest, ProblemKind, Validate};
//! use forest_graph::generators;
//!
//! let mut rng = rand::thread_rng();
//! let g = generators::planted_forest_union(64, 3, &mut rng);
//! let request = DecompositionRequest::new(ProblemKind::Forest)
//!     .with_epsilon(0.5)
//!     .with_seed(42);
//! let report = Decomposer::new(request).run(&g)?;
//! report.validate(&g)?;
//! println!(
//!     "alpha = {}, colors used = {}, LOCAL rounds = {}",
//!     report.arboricity,
//!     report.num_colors,
//!     report.ledger.total_rounds()
//! );
//! # Ok::<(), forest_decomp::FdError>(())
//! ```
//!
//! Runs are reproducible (the request seed derives an owned RNG; same seed →
//! byte-identical [`api::DecompositionReport::canonical_bytes`]), batchable
//! ([`api::Decomposer::run_batch`] fans one request across many graphs on all
//! cores) and uniformly validated (the [`api::Validate`] trait wires every
//! artifact to the `forest_graph::decomposition` validators). Graphs that
//! mutate between queries stream through the [`api::DynamicDecomposer`]
//! instead: every [`api::EdgeUpdate`] repairs the live coloring in
//! amortized polylog time (per-color connectivity on the
//! Holm–de Lichtenberg–Thorup subsystem), and its `snapshot()` reproduces
//! the cold pipeline byte-identically on the surviving edges.
//!
//! # Algorithm modules
//!
//! The paper's machinery lives in per-section modules, all reachable through
//! the facade:
//!
//! * [`hpartition`] — the H-partition toolbox of Theorem 2.1: the vertex
//!   peeling itself, acyclic `t`-orientations, `3t`-star-forest and
//!   `t`-list-forest decompositions.
//! * [`lsfd_degeneracy`] — Theorems 2.2 / 2.3: list-star-forest
//!   decompositions from low-degeneracy orientations.
//! * [`diameter_reduction`] — Proposition 2.4 / Corollary 2.5.
//! * [`augmenting`] — Section 3: augmenting sequences for list-forest
//!   decomposition (Algorithm 1, Proposition 3.4, Lemma 3.1).
//! * [`cut`] — the CUT load-balancing rules of Theorem 4.2.
//! * [`algorithm2`] — Algorithm 2 / Theorem 4.5: local forest decomposition
//!   via network decomposition, CUT and augmentation.
//! * [`color_splitting`] — Theorem 4.9 vertex-color-splittings.
//! * [`combine`] — the end-to-end pipelines of Theorem 4.6 (ordinary colors)
//!   and Theorem 4.10 (lists).
//! * [`star_forest`] — Section 5 / Theorem 5.4: star-forest and
//!   list-star-forest decompositions of simple graphs.
//! * [`orientation`] — Corollary 1.1: `(1+ε)α`-orientations.
//! * [`baselines`] — Barenboim–Elkin `(2+ε)α`-FD, the folklore `2α`-SFD and
//!   the exact centralized decomposition.
//!
//! # Frozen topology, on any storage
//!
//! Every end-to-end pipeline runs over a frozen
//! [`CsrGraph`](forest_graph::CsrGraph): [`api::Decomposer::run`] freezes the
//! input once per request and threads the `(MultiGraph, CsrRef)` pair
//! through the engine phases, and [`api::Decomposer::run_batch_shared`]
//! shares one [`api::FrozenGraph`] across a whole seed sweep. The CSR side
//! is storage-generic ([`forest_graph::CsrStorage`]): engines consume a
//! type-erased zero-copy [`CsrRef`](forest_graph::CsrRef), so the same code
//! runs over owned arrays, an mmap-backed on-disk graph
//! ([`api::GraphInput::from_mmap`]) or one shard of a
//! [`CsrPartition`](forest_graph::CsrPartition) —
//! [`api::Decomposer::run_sharded`] decomposes shards in parallel and
//! stitches the boundary through the leftover/augmenting machinery.
//! Phase-level entrypoints ([`algorithm2`], [`augmenting`], [`cut`],
//! [`hpartition`]) are generic over [`forest_graph::GraphView`], so they
//! accept any representation and produce identical output on all of them.
//!
//! # The pre-facade entrypoints
//!
//! The historical free-function entrypoints (`forest_decomposition`,
//! `list_forest_decomposition`, the `*_simple` star-forest functions,
//! `low_outdegree_orientation`) were deprecated when the facade landed and
//! have since been folded into the engine adapters; each maps onto one
//! `(problem, engine)` request:
//!
//! | removed entrypoint | request |
//! |---|---|
//! | `combine::forest_decomposition` | `ProblemKind::Forest` + `Engine::HarrisSuVu` |
//! | `combine::list_forest_decomposition` | `ProblemKind::ListForest` + `Engine::HarrisSuVu` |
//! | `star_forest::star_forest_decomposition_simple` | `ProblemKind::StarForest` + `Engine::HarrisSuVu` |
//! | `star_forest::list_star_forest_decomposition_simple` | `ProblemKind::ListStarForest` + `Engine::HarrisSuVu` |
//! | `orientation::low_outdegree_orientation` | `ProblemKind::Orientation` + `Engine::HarrisSuVu` |
//!
//! The baselines (`baselines::*`) remain available as plain functions for
//! phase-level experiments, and are also reachable through
//! `Engine::BarenboimElkin`, `Engine::Folklore2Alpha` and
//! `Engine::ExactMatroid`. `FdOptions`/`SfdConfig` knobs (`epsilon`,
//! `alpha`, cut strategy, diameter target, radii) have eponymous `with_*`
//! builders on the request, and the `&mut R` RNG argument is replaced by
//! `with_seed`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm2;
pub mod api;
pub mod augmenting;
pub mod baselines;
pub mod color_splitting;
pub mod combine;
pub mod cut;
pub mod diameter_reduction;
pub mod error;
pub mod hpartition;
pub mod lsfd_degeneracy;
pub mod matching;
pub mod orientation;
pub mod star_forest;

pub use api::{
    Decomposer, DecompositionReport, DecompositionRequest, Engine, GraphInput, ProblemKind,
    Validate,
};

pub use algorithm2::{
    algorithm2, Algorithm2Config, Algorithm2Output, CutStrategyKind, PipelineStats, PowerLayerDelta,
};
pub use augmenting::{AugmentationContext, AugmentingSequence, ColorConnectivity};
pub use combine::{FdOptions, FdResult, LfdResult};
pub use diameter_reduction::{reduce_diameter, DiameterTarget};
pub use error::FdError;
pub use hpartition::HPartition;
pub use star_forest::{SfdConfig, StarForestResult};
