//! Distributed `(1+ε)α` forest, list-forest and star-forest decompositions.
//!
//! This crate implements the algorithms of Harris, Su and Vu, *"On the
//! Locality of Nash-Williams Forest Decomposition and Star-Forest
//! Decomposition"* (PODC 2021), on top of the [`forest_graph`] substrate and
//! the [`local_model`] LOCAL-model simulator:
//!
//! * [`hpartition`] — the H-partition toolbox of Theorem 2.1: the vertex
//!   peeling itself, acyclic `t`-orientations, `3t`-star-forest and
//!   `t`-list-forest decompositions.
//! * [`lsfd_degeneracy`] — Theorems 2.2 / 2.3: list-star-forest
//!   decompositions from low-degeneracy orientations.
//! * [`diameter_reduction`] — Proposition 2.4 / Corollary 2.5.
//! * [`augmenting`] — Section 3: augmenting sequences for list-forest
//!   decomposition (Algorithm 1, Proposition 3.4, Lemma 3.1).
//! * [`cut`] — the CUT load-balancing rules of Theorem 4.2.
//! * [`algorithm2`] — Algorithm 2 / Theorem 4.5: local forest decomposition
//!   via network decomposition, CUT and augmentation.
//! * [`color_splitting`] — Theorem 4.9 vertex-color-splittings.
//! * [`combine`] — the end-to-end pipelines of Theorem 4.6 (ordinary colors)
//!   and Theorem 4.10 (lists).
//! * [`star_forest`] — Section 5 / Theorem 5.4: star-forest and
//!   list-star-forest decompositions of simple graphs.
//! * [`orientation`] — Corollary 1.1: `(1+ε)α`-orientations.
//! * [`baselines`] — Barenboim–Elkin `(2+ε)α`-FD, the folklore `2α`-SFD and
//!   the exact centralized decomposition.
//!
//! # Quick example
//!
//! ```
//! use forest_decomp::combine::{forest_decomposition, FdOptions};
//! use forest_graph::generators;
//! use forest_graph::decomposition::validate_forest_decomposition;
//!
//! let mut rng = rand::thread_rng();
//! let g = generators::planted_forest_union(64, 3, &mut rng);
//! let result = forest_decomposition(&g, &FdOptions::new(0.5), &mut rng)?;
//! validate_forest_decomposition(&g, &result.decomposition, Some(result.num_colors))?;
//! println!(
//!     "alpha = {}, colors used = {}, LOCAL rounds = {}",
//!     result.arboricity,
//!     result.num_colors,
//!     result.ledger.total_rounds()
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm2;
pub mod augmenting;
pub mod baselines;
pub mod color_splitting;
pub mod combine;
pub mod cut;
pub mod diameter_reduction;
pub mod error;
pub mod hpartition;
pub mod lsfd_degeneracy;
pub mod matching;
pub mod orientation;
pub mod star_forest;

pub use algorithm2::{algorithm2, Algorithm2Config, Algorithm2Output, CutStrategyKind};
pub use augmenting::{AugmentationContext, AugmentingSequence};
pub use combine::{forest_decomposition, list_forest_decomposition, FdOptions, FdResult, LfdResult};
pub use diameter_reduction::{reduce_diameter, DiameterTarget};
pub use error::FdError;
pub use hpartition::HPartition;
pub use orientation::{low_outdegree_orientation, OrientationResult};
pub use star_forest::{
    list_star_forest_decomposition_simple, star_forest_decomposition_simple, SfdConfig,
    StarForestResult,
};
