//! The request side of the facade: what to decompose, with which engine, and
//! under which knobs.

use crate::algorithm2::CutStrategyKind;
use crate::diameter_reduction::DiameterTarget;
use forest_graph::{ListAssignment, ReorderKind};
use std::fmt;

/// Which decomposition problem a [`DecompositionRequest`] asks for.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Partition the edges into `≈(1+ε)α` forests (Theorem 4.6).
    Forest,
    /// Forest decomposition where every edge must use a color from its own
    /// palette (Theorem 4.10).
    ListForest,
    /// Partition into star forests (Theorem 5.4(1); simple graphs).
    StarForest,
    /// Star forests under per-edge palettes (Theorem 5.4(2); simple graphs).
    ListStarForest,
    /// A `≈(1+ε)α`-out-degree orientation (Corollary 1.1).
    Orientation,
}

impl ProblemKind {
    /// All problem kinds, in declaration order.
    pub const ALL: [ProblemKind; 5] = [
        ProblemKind::Forest,
        ProblemKind::ListForest,
        ProblemKind::StarForest,
        ProblemKind::ListStarForest,
        ProblemKind::Orientation,
    ];

    /// Whether the problem constrains edges to per-edge palettes.
    pub fn is_list(self) -> bool {
        matches!(self, ProblemKind::ListForest | ProblemKind::ListStarForest)
    }
}

impl fmt::Display for ProblemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProblemKind::Forest => "forest",
            ProblemKind::ListForest => "list-forest",
            ProblemKind::StarForest => "star-forest",
            ProblemKind::ListStarForest => "list-star-forest",
            ProblemKind::Orientation => "orientation",
        };
        f.write_str(name)
    }
}

/// Which algorithm family executes the request.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The paper's `(1+ε)α` pipelines (Algorithm 2 + CUT, augmentation,
    /// matching-based star forests). Supports every [`ProblemKind`].
    HarrisSuVu,
    /// The classical `(2+ε)α*` H-partition baseline [BE10]. Supports
    /// [`ProblemKind::Forest`] and [`ProblemKind::Orientation`].
    BarenboimElkin,
    /// The folklore `2α` star-forest construction (exact decomposition plus
    /// depth-parity two-coloring). Supports [`ProblemKind::StarForest`].
    Folklore2Alpha,
    /// The centralized Gabow–Westermann matroid partition (exact `α`).
    /// Supports [`ProblemKind::Forest`] and [`ProblemKind::Orientation`].
    ExactMatroid,
}

impl Engine {
    /// All engines, in declaration order.
    pub const ALL: [Engine; 4] = [
        Engine::HarrisSuVu,
        Engine::BarenboimElkin,
        Engine::Folklore2Alpha,
        Engine::ExactMatroid,
    ];
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Engine::HarrisSuVu => "harris-su-vu",
            Engine::BarenboimElkin => "barenboim-elkin",
            Engine::Folklore2Alpha => "folklore-2alpha",
            Engine::ExactMatroid => "exact-matroid",
        };
        f.write_str(name)
    }
}

/// How the palettes of a list problem are obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PaletteSpec {
    /// Derive a comfortable uniform palette from the resolved arboricity
    /// (`2(α+1)` shared colors for list forests, `3α+6` colors drawn from a
    /// doubled space for list star forests).
    Auto,
    /// Every edge gets the same `colors` first colors.
    Uniform {
        /// Shared palette size.
        colors: usize,
    },
    /// Every edge draws `size` distinct colors from a space of `space`
    /// colors, using the request seed (reproducible).
    Random {
        /// Total number of distinct colors available.
        space: usize,
        /// Palette size per edge.
        size: usize,
    },
    /// Explicit per-edge palettes (must match the graph's edge count).
    Explicit(ListAssignment),
}

/// How the sharded stitch finishes once every boundary edge is colored.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum StitchPolicy {
    /// Keep whatever the greedy residue recoloring produced (the default):
    /// on capacity-tight workloads (`m ≈ α(n−1)`) this settles at `α + 1`
    /// colors, because the greedy pass never undoes a shard's choices.
    #[default]
    Greedy,
    /// After the greedy phases, run bounded augmenting exchanges over the
    /// stitched coloring — per-color connectivity riding on the dynamic
    /// subsystem, so each recoloring is a cheap cut-and-link edit — to move
    /// the overflow colors' edges back inside the `α` budget. Closes the
    /// `α + 1` gap on capacity-tight workloads (the grid stitches to
    /// exactly `α`) at a bounded wall-clock cost; when an exchange bound
    /// trips, the extra color simply survives (never an error).
    ExactAlpha,
}

/// How [`Decomposer::run_sharded`](super::Decomposer::run_sharded) cuts the
/// graph into shards and finishes the stitch.
///
/// The default splits contiguous vertex-id ranges (optimal for banded ids
/// like row-major grids). When vertex ids carry no locality — random
/// labelings, hashed ids — set [`ShardingSpec::reorder`] to
/// [`ReorderKind::Bfs`] or [`ReorderKind::Rcm`] to split along a cheap
/// locality-improving order instead, which shrinks the boundary fraction
/// (the quantity that governs stitch cost and sharded color quality).
/// [`ShardingSpec::stitch`] picks between the greedy finish and the
/// exact-α exchange pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardingSpec {
    /// The locality-improving order to split along
    /// ([`ReorderKind::Identity`] = raw vertex ids, the default).
    pub reorder: ReorderKind,
    /// How the stitch finishes ([`StitchPolicy::Greedy`] by default).
    pub stitch: StitchPolicy,
}

impl ShardingSpec {
    /// A spec splitting along `reorder` (greedy stitch).
    pub fn with_reorder(reorder: ReorderKind) -> Self {
        ShardingSpec {
            reorder,
            ..ShardingSpec::default()
        }
    }

    /// Sets the stitch policy.
    pub fn with_stitch(mut self, stitch: StitchPolicy) -> Self {
        self.stitch = stitch;
        self
    }
}

/// A complete, self-contained description of one decomposition run.
///
/// Requests are plain data: build one with [`DecompositionRequest::new`] plus
/// the `with_*` knobs, hand it to a [`Decomposer`](super::Decomposer), and
/// re-run it any time — the `seed` makes every run reproducible.
#[derive(Clone, Debug)]
pub struct DecompositionRequest {
    /// The problem to solve.
    pub problem: ProblemKind,
    /// The algorithm family to use.
    pub engine: Engine,
    /// Slack parameter `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Arboricity bound override (`None` = compute exactly per graph).
    pub alpha: Option<usize>,
    /// CUT rule for Algorithm 2 (Harris–Su–Vu engine only).
    pub cut: CutStrategyKind,
    /// Optional diameter-reduction pass (ordinary forest problems only).
    pub diameter_target: Option<DiameterTarget>,
    /// Optional override of Algorithm 2's radii `(R, R')`.
    pub radii: Option<(usize, usize)>,
    /// Palette source for list problems (ignored otherwise).
    pub palettes: PaletteSpec,
    /// How `run_sharded` cuts the graph (ignored by unsharded runs).
    pub sharding: ShardingSpec,
    /// Deterministic seed; two runs of the same request on the same graph
    /// produce identical reports (modulo wall-clock).
    pub seed: u64,
    /// Whether the run validates its artifact before returning.
    pub validate: bool,
}

impl DecompositionRequest {
    /// A request for `problem` with the paper's default knobs: the
    /// Harris–Su–Vu engine, `ε = 0.5`, exact arboricity, depth-modulo CUT,
    /// auto palettes, seed 0 and validation on.
    pub fn new(problem: ProblemKind) -> Self {
        DecompositionRequest {
            problem,
            engine: Engine::HarrisSuVu,
            epsilon: 0.5,
            alpha: None,
            cut: CutStrategyKind::DepthModulo,
            diameter_target: None,
            radii: None,
            palettes: PaletteSpec::Auto,
            sharding: ShardingSpec::default(),
            seed: 0,
            validate: true,
        }
    }

    /// Selects the engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the slack parameter `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Fixes the arboricity bound instead of computing it exactly.
    pub fn with_alpha(mut self, alpha: usize) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Selects the CUT rule.
    pub fn with_cut(mut self, cut: CutStrategyKind) -> Self {
        self.cut = cut;
        self
    }

    /// Requests a diameter-reduction pass.
    pub fn with_diameter_target(mut self, target: DiameterTarget) -> Self {
        self.diameter_target = Some(target);
        self
    }

    /// Overrides Algorithm 2's radii `(R, R')`.
    pub fn with_radii(mut self, cut_radius: usize, locality_radius: usize) -> Self {
        self.radii = Some((cut_radius, locality_radius));
        self
    }

    /// Sets the palette source for list problems.
    pub fn with_palettes(mut self, palettes: PaletteSpec) -> Self {
        self.palettes = palettes;
        self
    }

    /// Sets how `run_sharded` cuts the graph into shards.
    pub fn with_sharding(mut self, sharding: ShardingSpec) -> Self {
        self.sharding = sharding;
        self
    }

    /// Shorthand: `run_sharded` splits along the given locality-improving
    /// order ([`ReorderKind::Rcm`] is the right default for graphs whose
    /// vertex ids carry no locality).
    pub fn with_shard_reorder(mut self, reorder: ReorderKind) -> Self {
        self.sharding.reorder = reorder;
        self
    }

    /// Shorthand: sets how the sharded stitch finishes
    /// ([`StitchPolicy::ExactAlpha`] closes the `α + 1` gap on
    /// capacity-tight workloads).
    pub fn with_stitch_policy(mut self, stitch: StitchPolicy) -> Self {
        self.sharding.stitch = stitch;
        self
    }

    /// Sets the deterministic seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the validation pass (the report's status records this).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }
}
