//! The streaming side of the facade: [`DynamicDecomposer`] ingests an edge
//! update stream and keeps a valid forest coloring alive between updates.
//!
//! Every other entrypoint in [`api`](crate::api) decomposes a frozen
//! snapshot. This one maintains: edges arrive and depart
//! ([`EdgeUpdate`]), and after every [`DynamicDecomposer::apply`] the live
//! coloring is a valid partition of the current edges into forests —
//! usually repaired by recoloring only along the augmenting exchange the
//! update touched, with per-color connectivity riding on the
//! Holm–de Lichtenberg–Thorup subsystem
//! ([`DynamicColorConnectivity`](forest_graph::DynamicColorConnectivity))
//! so a recoloring is two `O(log² n)` edits, never a rebuild.
//!
//! The color budget tracks the stream's arboricity **with the paper's
//! `(1+ε)` slack**, from both sides. Upward: a blocked insert first tries a
//! *bounded* exchange; if that gives up, a color is opened as long as the
//! budget sits inside `⌈(1+ε)·lb⌉ + 1` (`lb` = best current arboricity
//! lower bound) — the slack regime in which repairs stay local and
//! per-update cost stays polylog — and only at that cap does the
//! exhaustive, certificate-producing search run before a raise. Downward:
//! deletions drain and retire trailing colors, with a bounded compaction
//! pass pulling stragglers out of the top color when it nearly empties.
//! Each apply reports what it did ([`DeltaReport`]) and
//! [`DynamicDecomposer::stats`] aggregates the fast-path / exchange /
//! rebuild-fallback split the benchmarks track.
//!
//! [`DynamicDecomposer::snapshot`] is the reproducibility contract: it runs
//! the *cold* [`Decomposer`] pipeline over the current live graph
//! (surviving edges compacted in insertion order), so its report is
//! byte-identical to `Decomposer::run` on that same final graph — the live
//! coloring serves queries between snapshots, the snapshot serves anything
//! that must reproduce.
//!
//! ```
//! use forest_decomp::api::{DecompositionRequest, DynamicDecomposer, EdgeUpdate, ProblemKind};
//!
//! let request = DecompositionRequest::new(ProblemKind::Forest).with_seed(7);
//! let mut dyn_dec = DynamicDecomposer::new(request, 4)?;
//! let e0 = dyn_dec.apply(EdgeUpdate::insert(0, 1))?.edge;
//! dyn_dec.apply(EdgeUpdate::insert(1, 2))?;
//! dyn_dec.apply(EdgeUpdate::insert(2, 0))?;
//! dyn_dec.apply(EdgeUpdate::delete(e0))?;
//! assert_eq!(dyn_dec.num_live_edges(), 2);
//! let report = dyn_dec.snapshot()?;   // == cold run on the 2-edge graph
//! assert_eq!(report.num_colors, 1);
//! # Ok::<(), forest_decomp::FdError>(())
//! ```

use super::report::DecompositionReport;
use super::{Decomposer, DecompositionRequest, ProblemKind};
use crate::error::FdError;
use forest_graph::decomposition::{validate_partial_forest_decomposition, PartialEdgeColoring};
use forest_graph::dynamic::{DynamicGraph, EdgeIdRemap};
use forest_graph::matroid::try_augment_traced;
use forest_graph::{
    Color, DynamicColorConnectivity, EdgeId, GraphError, GraphView, MultiGraph, VertexId,
};
use forest_obs::{clock::Stopwatch, LazyCounter, LazyHistogram};
use std::time::Duration;

/// The dynamic update stream's fast/exchange/fallback split as typed
/// `forest-obs` counters (cumulative across decomposer instances).
static UPDATES: LazyCounter = LazyCounter::new("dynamic.updates_total");
static FAST_PATH: LazyCounter = LazyCounter::new("dynamic.fast_path_total");
static EXCHANGES: LazyCounter = LazyCounter::new("dynamic.exchanges_total");
static BUDGET_RAISES: LazyCounter = LazyCounter::new("dynamic.budget_raises_total");
static COMPACTIONS: LazyCounter = LazyCounter::new("dynamic.compactions_total");
static APPLY_NANOS: LazyHistogram = LazyHistogram::new("dynamic.apply_nanos");
static BATCH_NANOS: LazyHistogram = LazyHistogram::new("dynamic.batch_nanos");

fn count_path(path: UpdatePath) {
    match path {
        UpdatePath::FastInsert | UpdatePath::FastDelete => FAST_PATH.inc(),
        UpdatePath::Exchange => EXCHANGES.inc(),
        UpdatePath::BudgetRaise => BUDGET_RAISES.inc(),
        UpdatePath::Compact => COMPACTIONS.inc(),
    }
}

/// Compaction only chases the top color once it holds at most this many
/// edges, so a delete pays for at most this many bounded exchanges.
const COMPACT_MAX_EDGES: usize = 4;
/// BFS pop bound per compaction exchange.
const COMPACT_POP_LIMIT: usize = 512;
/// BFS pop bound for the insert exchange while slack colors are still
/// allowed: a long exchange wander costs more than the slack color it
/// avoids, so the search gives up early and the insert opens a color
/// inside the `(1+ε)` allowance instead. At the slack cap the bound comes
/// off (the exact search is what certifies an arboricity raise).
const INSERT_POP_LIMIT: usize = 64;

/// One edge mutation in the update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Add an edge between two vertices; the apply assigns its permanent
    /// [`EdgeId`] (ids are never reused).
    Insert {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Remove the live edge with this id.
    Delete {
        /// The edge to remove (an id a previous insert assigned).
        edge: EdgeId,
    },
}

impl EdgeUpdate {
    /// Insert an edge between `u` and `v`.
    pub fn insert(u: impl Into<VertexId>, v: impl Into<VertexId>) -> Self {
        EdgeUpdate::Insert {
            u: u.into(),
            v: v.into(),
        }
    }

    /// Delete the edge with id `edge`.
    pub fn delete(edge: EdgeId) -> Self {
        EdgeUpdate::Delete { edge }
    }
}

/// How an [`DynamicDecomposer::apply`] repaired the coloring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdatePath {
    /// Insert placed by one free-color query (the overwhelmingly common
    /// case): no existing edge recolored.
    FastInsert,
    /// Insert placed by an augmenting exchange that recolored existing
    /// edges along the way.
    Exchange,
    /// The exchange could not place the insert, so a fresh color was
    /// opened — inside the `(1+ε)` slack allowance when one is free
    /// (bounded search gave up early), or, at the slack cap, after an
    /// exhaustive search *certified* that the arboricity grew. The scoped
    /// rebuild-fallback of the insert path.
    BudgetRaise,
    /// Delete needed only the cut (plus retiring empty trailing colors; a
    /// drain attempt that recolored edges without managing to retire the
    /// color also lands here, with the moves in
    /// [`DeltaReport::recolored_edges`]).
    FastDelete,
    /// Delete shrank the palette through the bounded compaction pass: the
    /// nearly-empty top color was drained into the rest of the palette and
    /// retired.
    Compact,
}

/// What one [`DynamicDecomposer::apply`] did.
#[derive(Clone, Debug)]
pub struct DeltaReport {
    /// The update this report describes.
    pub update: EdgeUpdate,
    /// The edge the update touched: the id assigned (inserts) or retired
    /// (deletes).
    pub edge: EdgeId,
    /// How the coloring was repaired.
    pub path: UpdatePath,
    /// Previously-colored edges whose color changed (0 on both fast paths;
    /// the inserted edge itself is not counted).
    pub recolored_edges: usize,
    /// Color budget after the update (colors `0..budget` are live).
    pub color_budget: usize,
    /// Live edges after the update.
    pub live_edges: usize,
    /// Wall-clock of this apply.
    pub wall_clock: Duration,
}

/// What one [`DynamicDecomposer::apply_batch`] did: the aggregate of the
/// per-update [`DeltaReport`]s the same updates would have produced one by
/// one, without materializing them.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Updates applied (= deletes + inserts).
    pub applied: usize,
    /// Deletes in the batch (applied first).
    pub deletes: usize,
    /// Inserts in the batch (applied after every delete).
    pub inserts: usize,
    /// The id assigned to each insert, in the batch's insert order — what
    /// a caller needs to address these edges in later updates.
    pub inserted_edges: Vec<EdgeId>,
    /// Previously-colored edges whose color changed across the whole batch
    /// (inserted edges themselves not counted).
    pub recolored_edges: usize,
    /// Updates that stayed on a fast path
    /// ([`UpdatePath::FastInsert`] / [`UpdatePath::FastDelete`]).
    pub fast_path: usize,
    /// Inserts placed by an augmenting exchange.
    pub exchanges: usize,
    /// Inserts that opened a fresh color.
    pub budget_raises: usize,
    /// Deletes that retired a color through the compaction drain.
    pub compactions: usize,
    /// Color budget after the batch.
    pub color_budget: usize,
    /// Live edges after the batch.
    pub live_edges: usize,
    /// Wall-clock of the whole batch.
    pub wall_clock: Duration,
}

/// Cumulative counters over every [`DynamicDecomposer::apply`] — the
/// fast-path / exchange / fallback split the benchmarks report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynamicStats {
    /// Total updates applied.
    pub updates: usize,
    /// Inserts placed by the free-color fast path.
    pub fast_inserts: usize,
    /// Inserts placed by an augmenting exchange.
    pub exchanges: usize,
    /// Edges recolored across all exchanges (excluding the inserted edges).
    pub exchange_recolorings: usize,
    /// Inserts that opened a fresh color — inside the `(1+ε)` slack
    /// allowance (no certificate: a deeper exchange may have existed) or,
    /// at the cap, certified by an exhaustive search (see
    /// [`UpdatePath::BudgetRaise`]).
    pub budget_raises: usize,
    /// Deletes that needed only the cut.
    pub fast_deletes: usize,
    /// Deletes that drained and retired the top color.
    pub compactions: usize,
    /// Edges recolored by compaction drains (stragglers moved plus the
    /// edges their exchanges touched), whether or not the drain managed to
    /// retire the color.
    pub compaction_recolorings: usize,
}

impl DynamicStats {
    /// Updates that fell off the fast path (exchange, budget raise or
    /// compaction) as a fraction of all updates — the "rebuild fallback
    /// rate" tracked by `BENCH_pr5.json`.
    pub fn fallback_rate(&self) -> f64 {
        if self.updates == 0 {
            return 0.0;
        }
        (self.exchanges + self.budget_raises + self.compactions) as f64 / self.updates as f64
    }
}

/// Streaming forest decomposition: a valid coloring maintained under edge
/// inserts and deletes (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct DynamicDecomposer {
    request: DecompositionRequest,
    graph: DynamicGraph,
    /// Indexed by the graph's stable edge ids (dead slots stay `None`).
    coloring: PartialEdgeColoring,
    conn: DynamicColorConnectivity,
    /// Live edges per color; `len()` is the color budget.
    counts: Vec<usize>,
    /// Largest arboricity an exhaustive exchange failure certified. Decayed
    /// to the live budget on deletion (the certificate speaks about edges
    /// that may no longer exist); self-corrects as classes drain.
    alpha_cert: usize,
    stats: DynamicStats,
}

impl DynamicDecomposer {
    /// A decomposer over `num_vertices` vertices and an initially empty
    /// edge set, maintaining `request.problem` under updates and snapshotting
    /// with `request`'s engine and seed.
    ///
    /// # Errors
    ///
    /// [`FdError::DynamicUnsupported`] for problems other than
    /// [`ProblemKind::Forest`] (star shapes and palette constraints do not
    /// survive edge-local recoloring), and
    /// [`FdError::UnsupportedCombination`] when the request's engine cannot
    /// solve forests (the snapshot would always fail).
    pub fn new(request: DecompositionRequest, num_vertices: usize) -> Result<Self, FdError> {
        if request.problem != ProblemKind::Forest {
            return Err(FdError::DynamicUnsupported {
                problem: request.problem,
            });
        }
        if !super::engines::engine_for(request.engine).supports(request.problem) {
            return Err(FdError::UnsupportedCombination {
                problem: request.problem,
                engine: request.engine,
            });
        }
        Ok(DynamicDecomposer {
            request,
            graph: DynamicGraph::new(num_vertices),
            coloring: PartialEdgeColoring::new_uncolored(0),
            conn: DynamicColorConnectivity::new(num_vertices),
            counts: Vec::new(),
            alpha_cert: 0,
            stats: DynamicStats::default(),
        })
    }

    /// Seeds a decomposer with an existing graph: every edge is applied as
    /// an insert (same code path as the stream), so the resulting state is
    /// exactly what replaying the edges would produce.
    pub fn from_graph(request: DecompositionRequest, g: &MultiGraph) -> Result<Self, FdError> {
        Self::from_view(request, g)
    }

    /// [`from_graph`](DynamicDecomposer::from_graph) over any
    /// [`GraphView`] — an mmap-backed
    /// [`CsrGraph`](forest_graph::CsrGraph) registers without first
    /// copying into a [`MultiGraph`].
    pub fn from_view<G: GraphView>(request: DecompositionRequest, g: &G) -> Result<Self, FdError> {
        let mut dyn_dec = DynamicDecomposer::new(request, g.num_vertices())?;
        for (_, u, v) in g.edges() {
            dyn_dec.apply(EdgeUpdate::Insert { u, v })?;
        }
        Ok(dyn_dec)
    }

    /// The request this decomposer maintains and snapshots with.
    pub fn request(&self) -> &DecompositionRequest {
        &self.request
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of live edges.
    pub fn num_live_edges(&self) -> usize {
        self.graph.num_live_edges()
    }

    /// Current color budget: live colors are `0..color_budget()`.
    pub fn color_budget(&self) -> usize {
        self.counts.len()
    }

    /// The live graph (stable edge ids; see
    /// [`DynamicGraph`](forest_graph::DynamicGraph)).
    pub fn live_graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The live coloring, indexed by stable edge ids (dead ids answer
    /// `None`). Valid after every apply.
    pub fn live_coloring(&self) -> &PartialEdgeColoring {
        &self.coloring
    }

    /// Cumulative apply counters.
    pub fn stats(&self) -> DynamicStats {
        self.stats
    }

    /// Applies one update, repairing the live coloring, and reports what
    /// happened.
    ///
    /// # Errors
    ///
    /// [`FdError::Graph`] for structurally invalid inserts (endpoint out of
    /// range, self-loop) and [`FdError::UnknownEdge`] for deletes of ids
    /// that are not live. The live state is untouched on error.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<DeltaReport, FdError> {
        let start = Stopwatch::start();
        let (edge, path, recolored) = match update {
            EdgeUpdate::Insert { u, v } => self.apply_insert(u, v)?,
            EdgeUpdate::Delete { edge } => self.apply_delete(edge)?,
        };
        self.stats.updates += 1;
        UPDATES.inc();
        count_path(path);
        APPLY_NANOS.observe(start.elapsed_nanos());
        Ok(DeltaReport {
            update,
            edge,
            path,
            recolored_edges: recolored,
            color_budget: self.counts.len(),
            live_edges: self.graph.num_live_edges(),
            wall_clock: start.elapsed(),
        })
    }

    /// Applies a whole frame of updates — **deletes first, then inserts**,
    /// each group in frame order — and aggregates what the per-update
    /// [`DeltaReport`]s would have said. Semantics are identical to N×
    /// [`apply`](DynamicDecomposer::apply) in that same reordered sequence
    /// (regression-tested); what the batch entry saves is the per-update
    /// clock reads and report allocations, which dominate at the ~µs/update
    /// scale the stream runs at. Deletes run first so a frame that churns
    /// (delete + insert at like rates) never transits through a wider
    /// budget than it ends at.
    ///
    /// # Errors
    ///
    /// The first failing update's error, exactly as
    /// [`apply`](DynamicDecomposer::apply) would report it. Updates before
    /// the failure remain applied (same as the sequential equivalent); the
    /// live coloring is valid either way.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> Result<BatchReport, FdError> {
        let start = Stopwatch::start();
        let mut report = BatchReport::default();
        let passes = [
            |u: &EdgeUpdate| matches!(u, EdgeUpdate::Delete { .. }),
            |u: &EdgeUpdate| matches!(u, EdgeUpdate::Insert { .. }),
        ];
        for pass in passes {
            for update in updates.iter().filter(|u| pass(u)) {
                let (edge, path, recolored) = match *update {
                    EdgeUpdate::Insert { u, v } => self.apply_insert(u, v)?,
                    EdgeUpdate::Delete { edge } => self.apply_delete(edge)?,
                };
                self.stats.updates += 1;
                UPDATES.inc();
                count_path(path);
                report.applied += 1;
                report.recolored_edges += recolored;
                match path {
                    UpdatePath::FastInsert => report.fast_path += 1,
                    UpdatePath::Exchange => report.exchanges += 1,
                    UpdatePath::BudgetRaise => report.budget_raises += 1,
                    UpdatePath::FastDelete => report.fast_path += 1,
                    UpdatePath::Compact => report.compactions += 1,
                }
                match update {
                    EdgeUpdate::Insert { .. } => {
                        report.inserts += 1;
                        report.inserted_edges.push(edge);
                    }
                    EdgeUpdate::Delete { .. } => report.deletes += 1,
                }
            }
        }
        report.color_budget = self.counts.len();
        report.live_edges = self.graph.num_live_edges();
        report.wall_clock = start.elapsed();
        BATCH_NANOS.observe(start.elapsed_nanos());
        Ok(report)
    }

    /// Compacts the edge-id space (see
    /// [`DynamicGraph::compact_ids`](forest_graph::DynamicGraph::compact_ids))
    /// and rebuilds the per-color structures — the coloring array and the
    /// per-color dynamic connectivity — under the new dense ids. The
    /// coloring itself is untouched (every surviving edge keeps its color,
    /// so the budget and per-color counts carry over), and because the
    /// renumbering preserves insertion order,
    /// [`snapshot`](DynamicDecomposer::snapshot) bytes are unchanged.
    ///
    /// Callers holding pre-compaction [`EdgeId`]s must translate them
    /// through the returned remap before the next delete.
    pub fn compact_ids(&mut self) -> EdgeIdRemap {
        let remap = self.graph.compact_ids();
        let mut colors = vec![None; self.graph.edge_id_span()];
        for (new, old) in remap.iter() {
            colors[new.index()] = self.coloring.color(old);
        }
        self.coloring = PartialEdgeColoring::from_colors(colors);
        self.conn = DynamicColorConnectivity::from_coloring(&self.graph, &self.coloring, None);
        remap
    }

    /// The stream's best current arboricity lower bound — the "watermark"
    /// a serving layer reports live: the larger of the
    /// exhaustive-exchange-certified value and the whole-graph
    /// Nash-Williams bound `⌈m / (n−1)⌉` over the live edges.
    pub fn arboricity_lower_bound(&self) -> usize {
        let n = self.graph.num_vertices();
        let nash_williams = if n >= 2 {
            self.graph.num_live_edges().div_ceil(n - 1)
        } else {
            0
        };
        self.alpha_cert.max(nash_williams)
    }

    /// The most colors the maintained coloring may use without an
    /// exhaustive-exchange certificate: `⌈(1+ε)·lb⌉ + 1`, where `lb` is the
    /// best current arboricity lower bound (the largest certified value and
    /// the live Nash-Williams whole-graph bound). This is the paper's slack
    /// regime — with `(1+ε)α` colors available, repairs stay local — turned
    /// into a budget policy: inside the cap a blocked insert just opens a
    /// color, and only at the cap does the exact (certificate-producing)
    /// search run.
    fn slack_cap(&self) -> usize {
        let lb = self.arboricity_lower_bound().max(1);
        ((lb as f64) * (1.0 + self.request.epsilon)).ceil() as usize + 1
    }

    fn apply_insert(
        &mut self,
        u: VertexId,
        v: VertexId,
    ) -> Result<(EdgeId, UpdatePath, usize), FdError> {
        let e = self.graph.insert_edge(u, v).map_err(FdError::Graph)?;
        self.coloring.grow_to(self.graph.edge_id_span());
        let k = self.counts.len();
        // Fast path: some existing forest keeps the endpoints apart.
        if let Some(c) = self.conn.first_free_color(k, u, v) {
            self.coloring.set(e, c);
            self.conn.insert(e, c, u, v);
            self.counts[c.index()] += 1;
            self.stats.fast_inserts += 1;
            return Ok((e, UpdatePath::FastInsert, 0));
        }
        // Exchange: recolor along an augmenting path in the exchange graph.
        // Bounded while slack is available (a long wander is worse than
        // opening a slack color); exact once the cap is reached, so a raise
        // beyond the cap always carries a matroid certificate.
        let pop_limit = if k < self.slack_cap() {
            INSERT_POP_LIMIT
        } else {
            usize::MAX
        };
        if let Some(steps) = try_augment_traced(&self.graph, &mut self.coloring, e, k, pop_limit) {
            let recolored = steps.len() - 1;
            self.replay_exchange(steps);
            self.stats.exchanges += 1;
            self.stats.exchange_recolorings += recolored;
            return Ok((e, UpdatePath::Exchange, recolored));
        }
        if pop_limit == usize::MAX {
            // Exhausted, not bounded: certified — the colored edges plus
            // `e` genuinely need k + 1 forests.
            self.alpha_cert = k + 1;
        }
        let fresh = Color::new(k);
        self.coloring.set(e, fresh);
        self.conn.insert(e, fresh, u, v);
        self.counts.push(1);
        self.stats.budget_raises += 1;
        Ok((e, UpdatePath::BudgetRaise, 0))
    }

    fn apply_delete(&mut self, e: EdgeId) -> Result<(EdgeId, UpdatePath, usize), FdError> {
        self.graph.delete_edge(e).map_err(|err| match err {
            GraphError::EdgeOutOfRange { .. } => FdError::UnknownEdge { edge: e },
            other => FdError::Graph(other),
        })?;
        let c = self
            .coloring
            .color(e)
            .expect("every live edge carries a color");
        self.coloring.clear(e);
        self.conn.remove(e);
        self.counts[c.index()] -= 1;
        let budget_before = self.counts.len();
        self.retire_trailing_colors();
        self.alpha_cert = self.alpha_cert.min(self.counts.len());
        let recolored = self.try_compact();
        // `Compact` means the delete actually shrank the palette (trailing
        // retirement or a successful drain); a drain attempt that moved a
        // few edges but could not retire the color is still a fast delete
        // with its recolorings reported.
        if recolored > 0 && self.counts.len() < budget_before {
            self.stats.compactions += 1;
            Ok((e, UpdatePath::Compact, recolored))
        } else {
            self.stats.fast_deletes += 1;
            Ok((e, UpdatePath::FastDelete, recolored))
        }
    }

    /// Mirrors an applied exchange into the dynamic connectivity and the
    /// per-color counts — the one place the three structures are kept in
    /// lockstep (used by the insert path and the compaction drain alike).
    fn replay_exchange(&mut self, steps: Vec<forest_graph::matroid::ExchangeStep>) {
        for (f, old, new) in steps {
            let (fu, fv) = self.graph.endpoints(f);
            self.conn.recolor(f, new, fu, fv);
            if let Some(old) = old {
                self.counts[old.index()] -= 1;
            }
            self.counts[new.index()] += 1;
        }
    }

    fn retire_trailing_colors(&mut self) {
        while matches!(self.counts.last(), Some(0)) {
            self.counts.pop();
        }
    }

    /// Bounded downward budget tracking: when the top color is nearly
    /// empty (≤ [`COMPACT_MAX_EDGES`] stragglers), try to exchange each of
    /// them into the lower colors and retire it. Runs only when the budget
    /// exceeds the slack cap — compacting a color the very next insert
    /// would re-open is thrash, not progress — or when some lower color is
    /// already empty, in which case draining is a free placement and the
    /// retirement costs nothing (this is how a hole left mid-palette by
    /// deletions gets closed). A blocked drain is retried on later deletes
    /// (any delete can free the room that was missing, so there is no
    /// state cheap enough to memoize against); each attempt is bounded by
    /// the straggler cap times the exchange pop limit. Returns the number
    /// of edges whose color changed — stragglers moved plus every edge an
    /// exchange recolored along the way (also accumulated into
    /// [`DynamicStats::compaction_recolorings`]).
    fn try_compact(&mut self) -> usize {
        let k = self.counts.len();
        if k < 2 {
            return 0;
        }
        let lower_hole = self.counts[..k - 1].contains(&0);
        if !lower_hole && k <= self.slack_cap() {
            return 0;
        }
        let top = self.counts[k - 1];
        if top == 0 || top > COMPACT_MAX_EDGES {
            return 0;
        }
        let top_color = Color::new(k - 1);
        let stragglers: Vec<EdgeId> = self
            .graph
            .live_edges()
            .filter(|&(f, _, _)| self.coloring.color(f) == Some(top_color))
            .map(|(f, _, _)| f)
            .collect();
        debug_assert_eq!(stragglers.len(), top);
        let mut recolored = 0usize;
        for f in stragglers {
            let (u, v) = self.graph.endpoints(f);
            self.coloring.clear(f);
            self.conn.remove(f);
            self.counts[k - 1] -= 1;
            if let Some(c) = self.conn.first_free_color(k - 1, u, v) {
                self.coloring.set(f, c);
                self.conn.insert(f, c, u, v);
                self.counts[c.index()] += 1;
                recolored += 1;
                continue;
            }
            if let Some(steps) =
                try_augment_traced(&self.graph, &mut self.coloring, f, k - 1, COMPACT_POP_LIMIT)
            {
                recolored += steps.len();
                self.replay_exchange(steps);
                continue;
            }
            // Blocked (or bound tripped): put the straggler back and stop —
            // the coloring stays valid, the budget stays k, and a later
            // delete retries.
            self.coloring.set(f, top_color);
            self.conn.insert(f, top_color, u, v);
            self.counts[k - 1] += 1;
            self.stats.compaction_recolorings += recolored;
            return recolored;
        }
        self.retire_trailing_colors();
        self.stats.compaction_recolorings += recolored;
        recolored
    }

    /// The current live edges compacted into a [`MultiGraph`] (ascending
    /// id order) plus the map from compact ids back to the stream's stable
    /// ids — the canonical "final graph" the snapshot contract is defined
    /// against.
    pub fn snapshot_graph(&self) -> (MultiGraph, Vec<EdgeId>) {
        self.graph.to_multigraph()
    }

    /// Runs the cold [`Decomposer`] pipeline over the current live graph
    /// and returns its report: **byte-identical**
    /// ([`DecompositionReport::canonical_bytes`]) to `Decomposer::run` on
    /// the same final graph, because it *is* that run — the live coloring
    /// answers queries between snapshots, this report is the reproducible
    /// artifact.
    ///
    /// # Errors
    ///
    /// Whatever the cold run returns.
    pub fn snapshot(&self) -> Result<DecompositionReport, FdError> {
        let (g, _) = self.snapshot_graph();
        Decomposer::new(self.request.clone()).run(g)
    }

    /// Validates the live coloring against the live graph (every color
    /// class a forest, every live edge colored inside the budget).
    ///
    /// # Errors
    ///
    /// [`FdError::InvalidDecomposition`] naming the violation.
    pub fn validate_live(&self) -> Result<(), FdError> {
        validate_partial_forest_decomposition(&self.graph, &self.coloring)?;
        for (f, _, _) in self.graph.live_edges() {
            match self.coloring.color(f) {
                Some(c) if c.index() < self.counts.len() => {}
                _ => {
                    return Err(FdError::NotConverged {
                        phase: format!("live edge {f} uncolored or outside the budget"),
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Engine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn request() -> DecompositionRequest {
        DecompositionRequest::new(ProblemKind::Forest)
            .with_engine(Engine::ExactMatroid)
            .with_seed(11)
    }

    #[test]
    fn rejects_unsupported_problems_and_engines() {
        assert!(matches!(
            DynamicDecomposer::new(DecompositionRequest::new(ProblemKind::StarForest), 4),
            Err(FdError::DynamicUnsupported {
                problem: ProblemKind::StarForest
            })
        ));
        assert!(matches!(
            DynamicDecomposer::new(
                DecompositionRequest::new(ProblemKind::Forest).with_engine(Engine::Folklore2Alpha),
                4
            ),
            Err(FdError::UnsupportedCombination { .. })
        ));
    }

    #[test]
    fn typed_errors_on_bad_updates() {
        let mut dyn_dec = DynamicDecomposer::new(request(), 3).unwrap();
        assert!(matches!(
            dyn_dec.apply(EdgeUpdate::insert(0, 9)),
            Err(FdError::Graph(GraphError::VertexOutOfRange { .. }))
        ));
        assert!(matches!(
            dyn_dec.apply(EdgeUpdate::insert(1, 1)),
            Err(FdError::Graph(GraphError::SelfLoop { .. }))
        ));
        assert!(matches!(
            dyn_dec.apply(EdgeUpdate::delete(EdgeId::new(0))),
            Err(FdError::UnknownEdge { .. })
        ));
        let e = dyn_dec.apply(EdgeUpdate::insert(0, 1)).unwrap().edge;
        dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
        assert!(matches!(
            dyn_dec.apply(EdgeUpdate::delete(e)),
            Err(FdError::UnknownEdge { .. })
        ));
    }

    #[test]
    fn budget_tracks_arboricity_both_ways() {
        // Three parallel edges force three forests; deleting two shrinks
        // the budget back down.
        let mut dyn_dec = DynamicDecomposer::new(request(), 2).unwrap();
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(dyn_dec.apply(EdgeUpdate::insert(0, 1)).unwrap().edge);
        }
        assert_eq!(dyn_dec.color_budget(), 3);
        // Every raise counts, including the very first insert's 0 → 1.
        assert_eq!(dyn_dec.stats().budget_raises, 3);
        dyn_dec.validate_live().unwrap();
        dyn_dec.apply(EdgeUpdate::delete(ids[1])).unwrap();
        dyn_dec.apply(EdgeUpdate::delete(ids[0])).unwrap();
        assert_eq!(dyn_dec.color_budget(), 1);
        dyn_dec.validate_live().unwrap();
    }

    #[test]
    fn cycle_plus_chord_stays_at_two_colors() {
        // A 4-cycle plus a chord: arboricity 2, and the maintained budget
        // lands exactly there — the slack allowance is never consumed by
        // inserts the palette can absorb.
        let mut dyn_dec = DynamicDecomposer::new(request(), 4).unwrap();
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap();
        }
        assert_eq!(dyn_dec.color_budget(), 2);
        dyn_dec.validate_live().unwrap();
    }

    #[test]
    fn blocked_exchanges_use_slack_then_certify_at_the_cap() {
        // Parallel edges between one pair force a raise per insert; with
        // ε = 0.5 the first raises ride the slack allowance and the later
        // ones (at the cap) must come from the exhaustive certificate —
        // either way the budget equals the true arboricity here, because
        // every class holds exactly one of the parallel edges.
        let mut dyn_dec = DynamicDecomposer::new(
            DecompositionRequest::new(ProblemKind::Forest)
                .with_engine(Engine::ExactMatroid)
                .with_epsilon(0.5)
                .with_seed(2),
            2,
        )
        .unwrap();
        for i in 1..=6usize {
            dyn_dec.apply(EdgeUpdate::insert(0, 1)).unwrap();
            assert_eq!(dyn_dec.color_budget(), i);
        }
        assert_eq!(dyn_dec.stats().budget_raises, 6);
        dyn_dec.validate_live().unwrap();
    }

    #[test]
    fn random_churn_keeps_a_valid_coloring() {
        let n = 24;
        let mut rng = StdRng::seed_from_u64(3);
        let mut dyn_dec = DynamicDecomposer::new(request(), n).unwrap();
        let mut live: Vec<EdgeId> = Vec::new();
        let mut applied = 0usize;
        for _ in 0..600 {
            let delete = !live.is_empty() && rng.gen_bool(0.45);
            if delete {
                let k = rng.gen_range(0..live.len());
                let e = live.swap_remove(k);
                dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
            } else {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                live.push(dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap().edge);
            }
            applied += 1;
            dyn_dec.validate_live().unwrap();
        }
        let stats = dyn_dec.stats();
        assert_eq!(stats.updates, applied);
        assert_eq!(dyn_dec.num_live_edges(), live.len());
        assert!(stats.fast_inserts > 0);
    }

    #[test]
    fn snapshot_matches_cold_run() {
        let mut rng = StdRng::seed_from_u64(19);
        let n = 20;
        let mut dyn_dec = DynamicDecomposer::new(request(), n).unwrap();
        let mut live: Vec<(EdgeId, usize, usize)> = Vec::new();
        for _ in 0..300 {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let k = rng.gen_range(0..live.len());
                let (e, _, _) = live.swap_remove(k);
                dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
            } else {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
                let e = dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap().edge;
                live.push((e, u, v));
            }
        }
        // The independently-reconstructed final graph: surviving edges in
        // insertion (= id) order.
        live.sort_by_key(|&(e, _, _)| e);
        let mut expected = MultiGraph::new(n);
        for &(_, u, v) in &live {
            expected
                .add_edge(VertexId::new(u), VertexId::new(v))
                .unwrap();
        }
        let cold = Decomposer::new(request()).run(&expected).unwrap();
        let snap = dyn_dec.snapshot().unwrap();
        assert_eq!(cold.canonical_bytes(), snap.canonical_bytes());
    }

    /// A mixed churn prefix so batch/compaction tests start from a
    /// non-trivial state: returns the decomposer plus its live edge ids.
    fn churned(seed: u64, n: usize, steps: usize) -> (DynamicDecomposer, Vec<EdgeId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dyn_dec = DynamicDecomposer::new(request(), n).unwrap();
        let mut live = Vec::new();
        for _ in 0..steps {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let k = rng.gen_range(0..live.len());
                let e = live.swap_remove(k);
                dyn_dec.apply(EdgeUpdate::delete(e)).unwrap();
            } else {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if u == v {
                    continue;
                }
                live.push(dyn_dec.apply(EdgeUpdate::insert(u, v)).unwrap().edge);
            }
        }
        (dyn_dec, live)
    }

    #[test]
    fn apply_batch_matches_sequential_applies() {
        let (mut batched, live) = churned(29, 16, 200);
        let mut sequential = batched.clone();
        // A frame mixing deletes and inserts in arbitrary order.
        let mut updates = Vec::new();
        for (i, &e) in live.iter().enumerate().take(8) {
            updates.push(EdgeUpdate::insert(i, i + 1));
            updates.push(EdgeUpdate::delete(e));
        }
        let report = batched.apply_batch(&updates).unwrap();
        // The documented equivalent: same updates, deletes first.
        let mut recolored = 0;
        let mut inserted = Vec::new();
        for delete_pass in [true, false] {
            for u in &updates {
                if matches!(u, EdgeUpdate::Delete { .. }) == delete_pass {
                    let d = sequential.apply(*u).unwrap();
                    recolored += d.recolored_edges;
                    if matches!(u, EdgeUpdate::Insert { .. }) {
                        inserted.push(d.edge);
                    }
                }
            }
        }
        assert_eq!(report.applied, updates.len());
        assert_eq!(report.deletes, 8);
        assert_eq!(report.inserts, 8);
        assert_eq!(report.inserted_edges, inserted);
        assert_eq!(report.recolored_edges, recolored);
        assert_eq!(
            report.fast_path + report.exchanges + report.budget_raises + report.compactions,
            report.applied
        );
        assert_eq!(report.color_budget, sequential.color_budget());
        assert_eq!(report.live_edges, sequential.num_live_edges());
        assert_eq!(batched.stats(), sequential.stats());
        batched.validate_live().unwrap();
        // Bit-for-bit the same state: identical snapshot bytes.
        assert_eq!(
            batched.snapshot().unwrap().canonical_bytes(),
            sequential.snapshot().unwrap().canonical_bytes()
        );
    }

    #[test]
    fn apply_batch_error_keeps_prefix_applied() {
        let mut dyn_dec = DynamicDecomposer::new(request(), 4).unwrap();
        let err = dyn_dec
            .apply_batch(&[
                EdgeUpdate::insert(0, 1),
                EdgeUpdate::insert(1, 1), // self-loop: fails
                EdgeUpdate::insert(2, 3),
            ])
            .unwrap_err();
        assert!(matches!(err, FdError::Graph(GraphError::SelfLoop { .. })));
        assert_eq!(dyn_dec.num_live_edges(), 1, "prefix stays applied");
        dyn_dec.validate_live().unwrap();
    }

    #[test]
    fn compact_ids_preserves_coloring_and_snapshot_bytes() {
        let (mut dyn_dec, live) = churned(31, 20, 300);
        let before_budget = dyn_dec.color_budget();
        let before_bytes = dyn_dec.snapshot().unwrap().canonical_bytes();
        let span_before = dyn_dec.live_graph().edge_id_span();
        let colors_before: Vec<_> = live
            .iter()
            .map(|&e| dyn_dec.live_coloring().color(e).unwrap())
            .collect();
        let remap = dyn_dec.compact_ids();
        assert_eq!(remap.old_span(), span_before);
        assert_eq!(remap.new_span(), dyn_dec.num_live_edges());
        assert_eq!(
            dyn_dec.live_graph().edge_id_span(),
            dyn_dec.num_live_edges()
        );
        assert_eq!(dyn_dec.color_budget(), before_budget);
        dyn_dec.validate_live().unwrap();
        // Every surviving edge kept its color under its new id.
        for (&old, &c) in live.iter().zip(&colors_before) {
            let new = remap.new_id(old).unwrap();
            assert_eq!(dyn_dec.live_coloring().color(new), Some(c));
        }
        assert_eq!(dyn_dec.snapshot().unwrap().canonical_bytes(), before_bytes);
        // The stream keeps running after compaction: remapped deletes and
        // fresh inserts land on the rebuilt structures.
        let new0 = remap.new_id(live[0]).unwrap();
        dyn_dec.apply(EdgeUpdate::delete(new0)).unwrap();
        dyn_dec.apply(EdgeUpdate::insert(0, 1)).unwrap();
        dyn_dec.validate_live().unwrap();
    }

    #[test]
    fn from_graph_replays_inserts() {
        let g = forest_graph::generators::grid(5, 5);
        let dyn_dec = DynamicDecomposer::from_graph(request(), &g).unwrap();
        assert_eq!(dyn_dec.num_live_edges(), g.num_edges());
        dyn_dec.validate_live().unwrap();
        assert!(dyn_dec.color_budget() >= 2);
    }
}
