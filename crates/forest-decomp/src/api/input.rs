//! The [`GraphInput`] conversion layer: every representation a
//! [`Decomposer`](super::Decomposer) accepts, funneled into one type.
//!
//! The facade used to take `&MultiGraph` only; `GraphInput` generalizes the
//! entrypoints without breaking them — `run(&graph)` still compiles via
//! `From<&MultiGraph>` — while opening three new front doors:
//!
//! * [`GraphInput::from_mmap`] — an on-disk CSR file
//!   ([`MmapCsr`](forest_graph::MmapCsr)): engines run straight over the
//!   mapped arrays through a zero-copy
//!   [`CsrRef`](forest_graph::CsrRef), and the run's
//!   [`canonical_bytes`](super::DecompositionReport::canonical_bytes) are
//!   byte-identical to the owned-storage run of the same request.
//! * [`GraphInput::from_shard`] — one shard of a
//!   [`CsrPartition`](forest_graph::CsrPartition), for driving a single
//!   shard manually (the facade's
//!   [`run_sharded`](super::Decomposer::run_sharded) does the whole
//!   partition-decompose-stitch dance itself).
//! * `From<FrozenGraph>` / `From<&FrozenGraph>` — pre-frozen graphs, owned
//!   or borrowed.
//!
//! Mmap and shard inputs are **CSR-only**: no adjacency-list twin is ever
//! materialized — forest and orientation pipelines are CSR-generic end to
//! end, and the few simple-graph pipelines thaw on demand inside the run.

use super::engines::FrozenInput;
use super::FrozenGraph;
use crate::error::FdError;
use forest_graph::{CsrGraph, CsrPartition, GraphView, MmapCsr, MultiGraph, OwnedCsr};
use std::path::Path;

/// Any graph a [`Decomposer`](super::Decomposer) can run on.
///
/// Construct one with the `From` conversions (`&MultiGraph`, `MultiGraph`,
/// `&FrozenGraph`, `FrozenGraph`) or the named constructors
/// ([`from_mmap`](GraphInput::from_mmap),
/// [`from_shard`](GraphInput::from_shard)); the `run*` entrypoints take
/// `impl Into<GraphInput>`, so call sites usually never name this type.
#[derive(Debug)]
pub enum GraphInput<'a> {
    /// A borrowed multigraph, frozen once per run.
    Borrowed(&'a MultiGraph),
    /// An owned multigraph, frozen once per run.
    Owned(Box<MultiGraph>),
    /// A borrowed pre-frozen graph (no conversion at run time).
    Frozen(&'a FrozenGraph),
    /// An owned pre-frozen graph (no conversion at run time).
    OwnedFrozen(Box<FrozenGraph>),
    /// An mmap-backed CSR: engines consume the mapped arrays directly
    /// (zero-copy view); nothing is thawed.
    Mmap(Box<MmapCsr>),
    /// A bare owned CSR with no adjacency twin (shard extractions).
    Csr(Box<OwnedCsr>),
}

impl<'a> GraphInput<'a> {
    /// Loads the on-disk CSR file at `path` (see
    /// [`MmapCsr::load_mmap`](forest_graph::MmapCsr::load_mmap) for the
    /// format).
    ///
    /// # Errors
    ///
    /// Returns [`FdError::Io`] for I/O failures or a malformed file.
    pub fn from_mmap<P: AsRef<Path>>(path: P) -> Result<GraphInput<'static>, FdError> {
        let path = path.as_ref();
        let csr = MmapCsr::load_mmap(path).map_err(|err| FdError::Io {
            context: format!("loading CSR file {}: {err}", path.display()),
        })?;
        Ok(GraphInput::Mmap(Box::new(csr)))
    }

    /// Materializes shard `shard` of `partition` as a standalone input
    /// (local vertex/edge ids — map results back through
    /// [`CsrPartition::global_edge`](forest_graph::CsrPartition::global_edge)).
    ///
    /// # Errors
    ///
    /// Returns [`FdError::ShardOutOfRange`] if `shard >= num_shards`.
    pub fn from_shard(
        partition: &CsrPartition,
        shard: usize,
    ) -> Result<GraphInput<'static>, FdError> {
        if shard >= partition.num_shards() {
            return Err(FdError::ShardOutOfRange {
                shard,
                num_shards: partition.num_shards(),
            });
        }
        let view = partition.shard(shard);
        // The partition already holds this shard's CSR: detach the arrays
        // (memcpy) and run CSR-only — no thaw, no re-freeze.
        Ok(GraphInput::Csr(Box::new(view.to_owned_storage())))
    }

    /// The adjacency-list form of the input, when one exists (`None` for the
    /// CSR-only mmap/shard variants, which never thaw).
    pub fn multigraph(&self) -> Option<&MultiGraph> {
        match self {
            GraphInput::Borrowed(g) => Some(g),
            GraphInput::Owned(g) => Some(g),
            GraphInput::Frozen(f) => Some(f.graph()),
            GraphInput::OwnedFrozen(f) => Some(f.graph()),
            GraphInput::Mmap(_) | GraphInput::Csr(_) => None,
        }
    }

    /// Number of edges of the input.
    pub fn num_edges(&self) -> usize {
        match self {
            GraphInput::Borrowed(g) => g.num_edges(),
            GraphInput::Owned(g) => g.num_edges(),
            GraphInput::Frozen(f) => f.csr().num_edges(),
            GraphInput::OwnedFrozen(f) => f.csr().num_edges(),
            GraphInput::Mmap(m) => m.num_edges(),
            GraphInput::Csr(c) => c.num_edges(),
        }
    }

    /// Resolves the input to the `(graph, csr)` pair engines consume,
    /// freezing into `scratch` when the input arrived unfrozen. Zero-copy
    /// for every already-frozen variant.
    pub(super) fn resolve<'s>(&'s self, scratch: &'s mut Option<OwnedCsr>) -> FrozenInput<'s> {
        match self {
            GraphInput::Borrowed(g) => {
                let csr = scratch.insert(CsrGraph::from_multigraph(g));
                FrozenInput::new(g, csr.view())
            }
            GraphInput::Owned(g) => {
                let csr = scratch.insert(CsrGraph::from_multigraph(g));
                FrozenInput::new(g, csr.view())
            }
            GraphInput::Frozen(f) => f.input(),
            GraphInput::OwnedFrozen(f) => f.input(),
            GraphInput::Mmap(m) => FrozenInput::from_csr(m.view()),
            GraphInput::Csr(c) => FrozenInput::from_csr(c.view()),
        }
    }
}

impl<'a> From<&'a MultiGraph> for GraphInput<'a> {
    fn from(g: &'a MultiGraph) -> Self {
        GraphInput::Borrowed(g)
    }
}

impl From<MultiGraph> for GraphInput<'static> {
    fn from(g: MultiGraph) -> Self {
        GraphInput::Owned(Box::new(g))
    }
}

impl<'a> From<&'a FrozenGraph> for GraphInput<'a> {
    fn from(f: &'a FrozenGraph) -> Self {
        GraphInput::Frozen(f)
    }
}

impl From<FrozenGraph> for GraphInput<'static> {
    fn from(f: FrozenGraph) -> Self {
        GraphInput::OwnedFrozen(Box::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn conversions_agree_on_the_graph() {
        let g = generators::grid(4, 4);
        let frozen = FrozenGraph::freeze(g.clone());
        let borrowed: GraphInput<'_> = (&g).into();
        let owned: GraphInput<'_> = g.clone().into();
        let fref: GraphInput<'_> = (&frozen).into();
        let fown: GraphInput<'_> = frozen.clone().into();
        for input in [&borrowed, &owned, &fref, &fown] {
            assert_eq!(input.multigraph(), Some(&g));
            assert_eq!(input.num_edges(), g.num_edges());
            let mut scratch = None;
            let resolved = input.resolve(&mut scratch);
            assert_eq!(resolved.multigraph(), Some(&g));
            assert_eq!(resolved.csr, frozen.csr().view());
        }
    }

    #[test]
    fn from_shard_checks_the_range() {
        let g = generators::path(8);
        let csr = CsrGraph::from_multigraph(&g);
        let partition = CsrPartition::split(&csr, 2);
        assert!(GraphInput::from_shard(&partition, 0).is_ok());
        assert!(matches!(
            GraphInput::from_shard(&partition, 5),
            Err(FdError::ShardOutOfRange {
                shard: 5,
                num_shards: 2
            })
        ));
    }

    #[test]
    fn from_mmap_propagates_bad_files() {
        let err = GraphInput::from_mmap("/definitely/not/a/file.csr").unwrap_err();
        assert!(matches!(err, FdError::Io { .. }));
        assert!(err.to_string().contains("not/a/file.csr"));
    }
}
