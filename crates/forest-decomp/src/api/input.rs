//! The [`GraphInput`] conversion layer: every representation a
//! [`Decomposer`](super::Decomposer) accepts, funneled into one type.
//!
//! The facade used to take `&MultiGraph` only; `GraphInput` generalizes the
//! entrypoints without breaking them — `run(&graph)` still compiles via
//! `From<&MultiGraph>` — while opening three new front doors:
//!
//! * [`GraphInput::from_mmap`] — an on-disk CSR file
//!   ([`MmapCsr`](forest_graph::MmapCsr)): engines run straight over the
//!   mapped arrays through a zero-copy
//!   [`CsrRef`](forest_graph::CsrRef), and the run's
//!   [`canonical_bytes`](super::DecompositionReport::canonical_bytes) are
//!   byte-identical to the owned-storage run of the same request.
//! * [`GraphInput::from_shard`] — one shard of a
//!   [`CsrPartition`](forest_graph::CsrPartition), for driving a single
//!   shard manually (the facade's
//!   [`run_sharded`](super::Decomposer::run_sharded) does the whole
//!   partition-decompose-stitch dance itself).
//! * `From<FrozenGraph>` / `From<&FrozenGraph>` — pre-frozen graphs, owned
//!   or borrowed.

use super::engines::FrozenInput;
use super::FrozenGraph;
use crate::error::FdError;
use forest_graph::{CsrGraph, CsrPartition, MmapCsr, MultiGraph, OwnedCsr};
use std::path::Path;

/// Any graph a [`Decomposer`](super::Decomposer) can run on.
///
/// Construct one with the `From` conversions (`&MultiGraph`, `MultiGraph`,
/// `&FrozenGraph`, `FrozenGraph`) or the named constructors
/// ([`from_mmap`](GraphInput::from_mmap),
/// [`from_shard`](GraphInput::from_shard)); the `run*` entrypoints take
/// `impl Into<GraphInput>`, so call sites usually never name this type.
#[derive(Debug)]
pub enum GraphInput<'a> {
    /// A borrowed multigraph, frozen once per run.
    Borrowed(&'a MultiGraph),
    /// An owned multigraph, frozen once per run.
    Owned(Box<MultiGraph>),
    /// A borrowed pre-frozen graph (no conversion at run time).
    Frozen(&'a FrozenGraph),
    /// An owned pre-frozen graph (no conversion at run time).
    OwnedFrozen(Box<FrozenGraph>),
    /// An mmap-backed CSR plus its thawed multigraph: engines consume the
    /// mapped arrays directly (zero-copy view), while centralized baselines
    /// use the thawed adjacency lists.
    Mmap(Box<MmapInput>),
}

/// The mmap variant's payload: the mapped topology and its thawed
/// adjacency-list twin (the exact `to_multigraph` round-trip, so outputs are
/// identical to an owned-storage run).
#[derive(Debug)]
pub struct MmapInput {
    graph: MultiGraph,
    csr: MmapCsr,
}

impl<'a> GraphInput<'a> {
    /// Loads the on-disk CSR file at `path` (see
    /// [`MmapCsr::load_mmap`](forest_graph::MmapCsr::load_mmap) for the
    /// format).
    ///
    /// # Errors
    ///
    /// Returns [`FdError::Io`] for I/O failures or a malformed file.
    pub fn from_mmap<P: AsRef<Path>>(path: P) -> Result<GraphInput<'static>, FdError> {
        let path = path.as_ref();
        let csr = MmapCsr::load_mmap(path).map_err(|err| FdError::Io {
            context: format!("loading CSR file {}: {err}", path.display()),
        })?;
        let graph = csr.to_multigraph();
        Ok(GraphInput::Mmap(Box::new(MmapInput { graph, csr })))
    }

    /// Materializes shard `shard` of `partition` as a standalone input
    /// (local vertex/edge ids — map results back through
    /// [`CsrPartition::global_edge`](forest_graph::CsrPartition::global_edge)).
    ///
    /// # Errors
    ///
    /// Returns [`FdError::ShardOutOfRange`] if `shard >= num_shards`.
    pub fn from_shard(
        partition: &CsrPartition,
        shard: usize,
    ) -> Result<GraphInput<'static>, FdError> {
        if shard >= partition.num_shards() {
            return Err(FdError::ShardOutOfRange {
                shard,
                num_shards: partition.num_shards(),
            });
        }
        let view = partition.shard(shard);
        // The partition already holds this shard's CSR: thaw the adjacency
        // form and detach the arrays (memcpy), instead of re-freezing.
        let frozen = FrozenGraph::from_parts(view.to_multigraph(), view.to_owned_storage());
        Ok(GraphInput::OwnedFrozen(Box::new(frozen)))
    }

    /// The adjacency-list form of the input (thawed already for mmap inputs).
    pub fn graph(&self) -> &MultiGraph {
        match self {
            GraphInput::Borrowed(g) => g,
            GraphInput::Owned(g) => g,
            GraphInput::Frozen(f) => f.graph(),
            GraphInput::OwnedFrozen(f) => f.graph(),
            GraphInput::Mmap(m) => &m.graph,
        }
    }

    /// Number of edges of the input.
    pub fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    /// Resolves the input to the `(graph, csr)` pair engines consume,
    /// freezing into `scratch` when the input arrived unfrozen. Zero-copy
    /// for every already-frozen variant.
    pub(super) fn resolve<'s>(&'s self, scratch: &'s mut Option<OwnedCsr>) -> FrozenInput<'s> {
        match self {
            GraphInput::Borrowed(g) => {
                let csr = scratch.insert(CsrGraph::from_multigraph(g));
                FrozenInput {
                    graph: g,
                    csr: csr.view(),
                }
            }
            GraphInput::Owned(g) => {
                let csr = scratch.insert(CsrGraph::from_multigraph(g));
                FrozenInput {
                    graph: g,
                    csr: csr.view(),
                }
            }
            GraphInput::Frozen(f) => f.input(),
            GraphInput::OwnedFrozen(f) => f.input(),
            GraphInput::Mmap(m) => FrozenInput {
                graph: &m.graph,
                csr: m.csr.view(),
            },
        }
    }
}

impl<'a> From<&'a MultiGraph> for GraphInput<'a> {
    fn from(g: &'a MultiGraph) -> Self {
        GraphInput::Borrowed(g)
    }
}

impl From<MultiGraph> for GraphInput<'static> {
    fn from(g: MultiGraph) -> Self {
        GraphInput::Owned(Box::new(g))
    }
}

impl<'a> From<&'a FrozenGraph> for GraphInput<'a> {
    fn from(f: &'a FrozenGraph) -> Self {
        GraphInput::Frozen(f)
    }
}

impl From<FrozenGraph> for GraphInput<'static> {
    fn from(f: FrozenGraph) -> Self {
        GraphInput::OwnedFrozen(Box::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest_graph::generators;

    #[test]
    fn conversions_agree_on_the_graph() {
        let g = generators::grid(4, 4);
        let frozen = FrozenGraph::freeze(g.clone());
        let borrowed: GraphInput<'_> = (&g).into();
        let owned: GraphInput<'_> = g.clone().into();
        let fref: GraphInput<'_> = (&frozen).into();
        let fown: GraphInput<'_> = frozen.clone().into();
        for input in [&borrowed, &owned, &fref, &fown] {
            assert_eq!(input.graph(), &g);
            assert_eq!(input.num_edges(), g.num_edges());
            let mut scratch = None;
            let resolved = input.resolve(&mut scratch);
            assert_eq!(resolved.graph, &g);
            assert_eq!(resolved.csr, frozen.csr().view());
        }
    }

    #[test]
    fn from_shard_checks_the_range() {
        let g = generators::path(8);
        let csr = CsrGraph::from_multigraph(&g);
        let partition = CsrPartition::split(&csr, 2);
        assert!(GraphInput::from_shard(&partition, 0).is_ok());
        assert!(matches!(
            GraphInput::from_shard(&partition, 5),
            Err(FdError::ShardOutOfRange {
                shard: 5,
                num_shards: 2
            })
        ));
    }

    #[test]
    fn from_mmap_propagates_bad_files() {
        let err = GraphInput::from_mmap("/definitely/not/a/file.csr").unwrap_err();
        assert!(matches!(err, FdError::Io { .. }));
        assert!(err.to_string().contains("not/a/file.csr"));
    }
}
